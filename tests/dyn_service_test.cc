// Service-layer integration of the dynamic-graph subsystem: GraphStore's
// versioned datasets (DynGraph/ApplyMutations) and the scheduler's
// "crr-inc" incremental re-shedding sessions (DESIGN.md §15).

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dyn/versioned_graph.h"
#include "graph/mutation_io.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "service/metrics_registry.h"
#include "testing/test_graphs.h"

namespace edgeshed::service {
namespace {

using testing::Clique;
using testing::MustBuild;
using testing::Path;

void RegisterGraph(GraphStore& store, const std::string& name,
                   graph::Graph g) {
  ASSERT_TRUE(store
                  .Register(name,
                            [g = std::move(g)]() -> StatusOr<graph::Graph> {
                              return g;
                            })
                  .ok());
}

graph::MutationBatch Batch(std::vector<graph::Edge> inserts,
                           std::vector<graph::Edge> deletes) {
  graph::MutationBatch batch;
  batch.inserts = std::move(inserts);
  batch.deletes = std::move(deletes);
  return batch;
}

/// Cycle spine + deterministic random chords, same shape the dyn unit tests
/// shed: connected, non-trivial betweenness structure.
graph::Graph RandomGraph(graph::NodeId n, int extra_edges, uint64_t seed) {
  std::set<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (graph::NodeId u = 0; u < n; ++u) {
    edges.emplace(std::min(u, static_cast<graph::NodeId>((u + 1) % n)),
                  std::max(u, static_cast<graph::NodeId>((u + 1) % n)));
  }
  Rng rng(seed);
  while (static_cast<int>(edges.size()) < static_cast<int>(n) + extra_edges) {
    const auto u = static_cast<graph::NodeId>(rng.UniformIndex(n));
    const auto v = static_cast<graph::NodeId>(rng.UniformIndex(n));
    if (u == v) continue;
    edges.emplace(std::min(u, v), std::max(u, v));
  }
  std::vector<graph::Edge> list;
  list.reserve(edges.size());
  for (const auto& [u, v] : edges) list.push_back({u, v});
  return MustBuild(n, std::move(list));
}

// ---------------------------------------------------------------------------
// GraphStore: versioned datasets

TEST(GraphStoreDynTest, DynGraphIsSharedAndUnknownNameIsNotFound) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Path(6));

  auto first = store.DynGraph("g");
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = store.DynGraph("g");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // one history per dataset
  EXPECT_EQ((*first)->CurrentVersion(), 0u);

  EXPECT_EQ(store.DynGraph("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.ApplyMutations("nope", Batch({{0, 1}}, {})).status().code(),
            StatusCode::kNotFound);
}

TEST(GraphStoreDynTest, ApplyMutationsBumpsGenerationAndServesMutatedGraph) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Path(6));  // edges {0,1}..{4,5}

  uint64_t generation_before = 0;
  ASSERT_TRUE(store.Get("g", &generation_before).ok());

  auto version = store.ApplyMutations("g", Batch({{0, 5}}, {{1, 2}}));
  ASSERT_TRUE(version.ok()) << version.status();
  EXPECT_EQ(*version, 1u);

  uint64_t generation_after = 0;
  auto mutated = store.Get("g", &generation_after);
  ASSERT_TRUE(mutated.ok());
  EXPECT_GT(generation_after, generation_before);
  EXPECT_EQ((*mutated)->NumEdges(), 5u);
  EXPECT_TRUE((*mutated)->HasEdge(0, 5));
  EXPECT_FALSE((*mutated)->HasEdge(1, 2));

  // Versions accumulate on the same history.
  auto next = store.ApplyMutations("g", Batch({{1, 2}}, {}));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 2u);
}

TEST(GraphStoreDynTest, InvalidBatchLeavesStoreUntouched) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Path(6));

  uint64_t generation_before = 0;
  ASSERT_TRUE(store.Get("g", &generation_before).ok());

  // Delete of a non-live edge rejects the whole batch...
  auto bad = store.ApplyMutations("g", Batch({{0, 5}}, {{0, 3}}));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("{0, 3}"), std::string::npos)
      << bad.status();

  // ...so the graph, the version, and the generation are all unchanged.
  auto dyn = store.DynGraph("g");
  ASSERT_TRUE(dyn.ok());
  EXPECT_EQ((*dyn)->CurrentVersion(), 0u);
  uint64_t generation_after = 0;
  auto graph = store.Get("g", &generation_after);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(generation_after, generation_before);
  EXPECT_FALSE((*graph)->HasEdge(0, 5));
}

TEST(GraphStoreDynTest, ReplaceStartsFreshDynamicHistory) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Path(6));

  auto old_dyn = store.DynGraph("g");
  ASSERT_TRUE(old_dyn.ok());
  ASSERT_TRUE(store.ApplyMutations("g", Batch({{0, 5}}, {})).ok());

  ASSERT_TRUE(store
                  .Replace("g",
                           []() -> StatusOr<graph::Graph> {
                             return Clique(4);
                           })
                  .ok());

  // The store's history handle is fresh: version 0 over the new base, the
  // old mutations gone. The old handle stays valid for readers pinned to it.
  auto new_dyn = store.DynGraph("g");
  ASSERT_TRUE(new_dyn.ok());
  EXPECT_NE(old_dyn->get(), new_dyn->get());
  EXPECT_EQ((*new_dyn)->CurrentVersion(), 0u);
  EXPECT_EQ((*new_dyn)->Snapshot()->NumEdges(), 6u);  // Clique(4)
  EXPECT_EQ((*old_dyn)->CurrentVersion(), 1u);
}

// ---------------------------------------------------------------------------
// JobScheduler: "crr-inc" sessions

TEST(JobSchedulerDynTest, CrrIncColdMatchesCrrBitIdentically) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", RandomGraph(80, 160, 9));
  JobScheduler scheduler(&store, &metrics, {.workers = 2});

  auto inc = scheduler.Submit({"g", "crr-inc", 0.5, 42});
  ASSERT_TRUE(inc.ok()) << inc.status();
  auto inc_result = scheduler.Wait(*inc);
  ASSERT_TRUE(inc_result.ok()) << inc_result.status();

  auto full = scheduler.Submit({"g", "crr", 0.5, 42});
  ASSERT_TRUE(full.ok());
  auto full_result = scheduler.Wait(*full);
  ASSERT_TRUE(full_result.ok());

  // A cold session is engineered to answer exactly what a from-scratch CRR
  // job would: same kept EdgeIds, same delta.
  EXPECT_EQ((*inc_result)->kept_edges, (*full_result)->kept_edges);
  EXPECT_DOUBLE_EQ((*inc_result)->total_delta, (*full_result)->total_delta);
}

TEST(JobSchedulerDynTest, CrrIncReshedsIncrementallyAfterMutations) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  const graph::Graph base = RandomGraph(80, 160, 9);
  RegisterGraph(store, "g", base);
  JobScheduler scheduler(&store, &metrics, {.workers = 2});

  auto cold = scheduler.Submit({"g", "crr-inc", 0.5, 42});
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(scheduler.Wait(*cold).ok());

  ASSERT_TRUE(store.ApplyMutations("g", Batch({{0, 40}}, {{0, 1}})).ok());

  auto warm = scheduler.Submit({"g", "crr-inc", 0.5, 42});
  ASSERT_TRUE(warm.ok());
  auto warm_result = scheduler.Wait(*warm);
  ASSERT_TRUE(warm_result.ok()) << warm_result.status();

  // The session survived the mutation: this run was incremental, against
  // the new version, with the exact round(p·E) budget, and its EdgeIds are
  // valid on the mutated graph the store now serves.
  const auto& stats = (*warm_result)->stats;
  auto stat = [&stats](const std::string& name) -> double {
    for (const auto& [key, value] : stats) {
      if (key == name) return value;
    }
    return -1.0;
  };
  EXPECT_EQ(stat("version"), 1.0);
  EXPECT_EQ(stat("full_rank"), 0.0);

  auto mutated = store.Get("g");
  ASSERT_TRUE(mutated.ok());
  const uint64_t live = (*mutated)->NumEdges();
  EXPECT_EQ((*warm_result)->kept_edges.size(),
            static_cast<size_t>(std::llround(0.5 * live)));
  for (const graph::EdgeId id : (*warm_result)->kept_edges) {
    ASSERT_LT(id, live);
  }
}

TEST(JobSchedulerDynTest, MutationInvalidatesResultCache) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", RandomGraph(60, 120, 3));
  JobScheduler scheduler(&store, &metrics, {.workers = 2});

  const JobSpec spec{"g", "crr", 0.5, 42};
  auto first = scheduler.Submit(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(scheduler.Wait(*first).ok());

  // The mutation bumps the dataset generation, so the identical spec is a
  // different cache key: it must run against the mutated graph, not be
  // served the stale kept set.
  ASSERT_TRUE(store.ApplyMutations("g", Batch({}, {{0, 1}})).ok());
  auto second = scheduler.Submit(spec);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(scheduler.Wait(*second).ok());
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 0u);
  auto status = scheduler.GetStatus(*second);
  ASSERT_TRUE(status.ok());
  EXPECT_FALSE(status->deduplicated);
}

TEST(JobSchedulerDynTest, CrrIncIsNotAKnownStaticShedder) {
  // crr-inc dispatches through the scheduler's session path; it must be
  // accepted by Submit but stay off the static-shedder degradation ladder.
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Path(6));
  JobScheduler scheduler(&store, &metrics, {.workers = 1});
  auto id = scheduler.Submit({"g", "crr-inc", 0.5, 42});
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_TRUE(scheduler.Wait(*id).ok());
  auto bad = scheduler.Submit({"g", "crr-inc-nope", 0.5, 42});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace edgeshed::service
