#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "analytics/betweenness.h"
#include "analytics/bfs.h"
#include "common/random.h"
#include "core/discrepancy.h"
#include "dyn/versioned_graph.h"
#include "graph/mutation_io.h"
#include "testing/test_graphs.h"

namespace edgeshed::dyn {
namespace {

using graph::Edge;
using graph::MutationBatch;
using graph::NodeId;

/// Reference model: the live edge set as a sorted std::set, mutated in
/// lockstep with the VersionedGraph under test.
class ReferenceEdges {
 public:
  explicit ReferenceEdges(const graph::Graph& g)
      : num_nodes_(static_cast<NodeId>(g.NumNodes())),
        edges_(g.edges().begin(), g.edges().end()) {}

  void Apply(const MutationBatch& batch) {
    for (const Edge& e : batch.deletes) ASSERT_EQ(edges_.erase(e), 1u);
    for (const Edge& e : batch.inserts) {
      ASSERT_TRUE(edges_.insert(e).second);
    }
  }

  graph::Graph Rebuild() const {
    return testing::MustBuild(
        num_nodes_, std::vector<Edge>(edges_.begin(), edges_.end()));
  }

 private:
  NodeId num_nodes_;
  std::set<Edge> edges_;
};

/// Draws a random valid batch against the current live edge set: deletes of
/// live edges and inserts of currently absent pairs, no duplicates.
MutationBatch RandomBatch(const DeltaGraph& snap, Rng* rng, size_t deletes,
                          size_t inserts) {
  MutationBatch batch;
  const std::vector<Edge> live = snap.LiveEdges();
  std::set<uint64_t> used;
  while (batch.deletes.size() < deletes && batch.deletes.size() < live.size()) {
    const Edge& e = live[rng->UniformIndex(live.size())];
    if (used.insert(graph::EdgeKey(e)).second) batch.deletes.push_back(e);
  }
  const NodeId n = static_cast<NodeId>(snap.NumNodes());
  size_t attempts = 0;
  while (batch.inserts.size() < inserts && attempts++ < 1000) {
    const NodeId u = static_cast<NodeId>(rng->UniformIndex(n));
    const NodeId v = static_cast<NodeId>(rng->UniformIndex(n));
    if (u == v) continue;
    if (snap.HasEdge(u, v)) continue;
    const Edge e{std::min(u, v), std::max(u, v)};
    if (used.insert(graph::EdgeKey(e)).second) batch.inserts.push_back(e);
  }
  return batch;
}

void ExpectViewMatchesRebuild(const DeltaGraph& snap,
                              const graph::Graph& rebuilt, int threads) {
  ASSERT_EQ(snap.NumNodes(), rebuilt.NumNodes());
  ASSERT_EQ(snap.NumEdges(), rebuilt.NumEdges());

  // Accessor surface: degrees, neighbor order, membership, live edge list.
  EXPECT_TRUE(std::span<const Edge>(snap.LiveEdges()) == rebuilt.edges());
  for (NodeId u = 0; u < rebuilt.NumNodes(); ++u) {
    EXPECT_EQ(snap.Degree(u), rebuilt.Degree(u)) << "vertex " << u;
    std::vector<NodeId> view_nbrs;
    snap.ForEachNeighbor(u, [&](NodeId n) { view_nbrs.push_back(n); });
    const auto rebuilt_nbrs = rebuilt.Neighbors(u);
    ASSERT_EQ(view_nbrs.size(), rebuilt_nbrs.size()) << "vertex " << u;
    EXPECT_TRUE(std::equal(view_nbrs.begin(), view_nbrs.end(),
                           rebuilt_nbrs.begin()))
        << "vertex " << u;
  }

  // Materialized CSR: bit-identical arrays.
  auto materialized = snap.Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  EXPECT_TRUE(materialized->edges() == rebuilt.edges());
  ASSERT_EQ(materialized->RawOffsets().size(), rebuilt.RawOffsets().size());
  EXPECT_TRUE(std::equal(materialized->RawOffsets().begin(),
                         materialized->RawOffsets().end(),
                         rebuilt.RawOffsets().begin()));
  EXPECT_TRUE(std::equal(materialized->RawAdjacency().begin(),
                         materialized->RawAdjacency().end(),
                         rebuilt.RawAdjacency().begin()));
  EXPECT_TRUE(std::equal(materialized->RawIncident().begin(),
                         materialized->RawIncident().end(),
                         rebuilt.RawIncident().begin()));

  // Kernels on the materialized view vs the from-scratch build, at the
  // requested thread count: BFS, hybrid betweenness (bit-identical
  // doubles), degree discrepancy.
  if (rebuilt.NumNodes() > 0) {
    EXPECT_EQ(analytics::BfsDistances(*materialized, 0),
              analytics::BfsDistances(rebuilt, 0));
  }
  analytics::BetweennessOptions betweenness;
  betweenness.kernel = analytics::BetweennessOptions::Kernel::kHybrid;
  betweenness.threads = threads;
  const auto view_scores = analytics::Betweenness(*materialized, betweenness);
  const auto rebuilt_scores = analytics::Betweenness(rebuilt, betweenness);
  EXPECT_EQ(view_scores.node, rebuilt_scores.node);
  EXPECT_EQ(view_scores.edge, rebuilt_scores.edge);

  core::DegreeDiscrepancy view_disc(*materialized, 0.5);
  core::DegreeDiscrepancy rebuilt_disc(rebuilt, 0.5);
  EXPECT_EQ(view_disc.TotalDelta(), rebuilt_disc.TotalDelta());
}

class DynEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DynEquivalence, RandomizedSequenceMatchesFromScratch) {
  const int threads = GetParam();
  // Random connected-ish seed graph: a cycle plus chords.
  graph::Graph seed = testing::Cycle(60);
  {
    Rng rng(7);
    std::vector<Edge> edges(seed.edges().begin(), seed.edges().end());
    std::set<Edge> have(edges.begin(), edges.end());
    while (edges.size() < 150) {
      const NodeId u = static_cast<NodeId>(rng.UniformIndex(60));
      const NodeId v = static_cast<NodeId>(rng.UniformIndex(60));
      if (u == v) continue;
      const Edge e{std::min(u, v), std::max(u, v)};
      if (have.insert(e).second) edges.push_back(e);
    }
    seed = testing::MustBuild(60, std::move(edges));
  }

  ReferenceEdges reference(seed);
  VersionedGraphOptions options;
  options.auto_compact = false;  // compaction exercised explicitly below
  VersionedGraph vg(seed, options);
  Rng rng(99 + static_cast<uint64_t>(threads));
  constexpr int kBatches = 12;
  for (int b = 0; b < kBatches; ++b) {
    const MutationBatch batch =
        RandomBatch(*vg.Snapshot(), &rng, /*deletes=*/4, /*inserts=*/4);
    reference.Apply(batch);
    auto version = vg.ApplyBatch(batch);
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    ExpectViewMatchesRebuild(*vg.Snapshot(), reference.Rebuild(), threads);
    if (b == kBatches / 2) {
      // Mid-sequence compaction must be invisible to every reader.
      ASSERT_TRUE(vg.Compact().ok());
      EXPECT_EQ(vg.Snapshot()->OverlaySize(), 0u);
      ExpectViewMatchesRebuild(*vg.Snapshot(), reference.Rebuild(), threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, DynEquivalence,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace edgeshed::dyn
