// Tests for src/net/wire.h: frame encode/decode, message codecs, the status
// envelope, and — the part that earns its keep — a corpus of malformed
// frames (truncations at every prefix length, wrong magic/version/type,
// oversized declared payloads, checksum flips, trailing bytes) that must all
// decode to clean errors, never crashes. Runs under ASan in CI.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "net/wire.h"

namespace edgeshed::net {
namespace {

// ---------------------------------------------------------------------------
// Frame round trips

TEST(WireFrameTest, EncodeDecodeRoundTrip) {
  const std::string payload = "hello frames";
  std::string bytes = EncodeFrame(MessageType::kShedRequest, payload);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + payload.size());

  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.event, DecodeEvent::kFrame);
  EXPECT_EQ(result.consumed, bytes.size());
  EXPECT_EQ(result.frame.type, MessageType::kShedRequest);
  EXPECT_EQ(result.frame.payload, payload);
}

TEST(WireFrameTest, EmptyPayloadRoundTrip) {
  std::string bytes = EncodeFrame(MessageType::kListDatasetsRequest, "");
  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.event, DecodeEvent::kFrame);
  EXPECT_EQ(result.consumed, kFrameHeaderBytes);
  EXPECT_TRUE(result.frame.payload.empty());
}

TEST(WireFrameTest, EveryMessageTypeRoundTrips) {
  const MessageType types[] = {
      MessageType::kShedRequest,         MessageType::kGetStatusRequest,
      MessageType::kWaitRequest,         MessageType::kCancelRequest,
      MessageType::kListDatasetsRequest, MessageType::kPingRequest,
      MessageType::kShedResponse,        MessageType::kGetStatusResponse,
      MessageType::kWaitResponse,        MessageType::kCancelResponse,
      MessageType::kListDatasetsResponse, MessageType::kPingResponse,
      MessageType::kApplyMutationsRequest,
      MessageType::kApplyMutationsResponse,
      MessageType::kErrorResponse,
  };
  for (MessageType type : types) {
    SCOPED_TRACE(MessageTypeToString(type));
    DecodeResult result = DecodeFrame(EncodeFrame(type, "x"));
    ASSERT_EQ(result.event, DecodeEvent::kFrame);
    EXPECT_EQ(result.frame.type, type);
    EXPECT_TRUE(IsKnownMessageType(static_cast<uint8_t>(type)));
  }
  EXPECT_TRUE(IsRequestType(MessageType::kShedRequest));
  EXPECT_FALSE(IsRequestType(MessageType::kShedResponse));
  EXPECT_EQ(ResponseTypeFor(MessageType::kPingRequest),
            MessageType::kPingResponse);
  EXPECT_EQ(ResponseTypeFor(MessageType::kWaitRequest),
            MessageType::kWaitResponse);
  EXPECT_TRUE(IsRequestType(MessageType::kApplyMutationsRequest));
  EXPECT_EQ(ResponseTypeFor(MessageType::kApplyMutationsRequest),
            MessageType::kApplyMutationsResponse);
}

TEST(WireFrameTest, TwoFramesBackToBackDecodeOneAtATime) {
  std::string bytes = EncodeFrame(MessageType::kPingRequest, "a");
  const size_t first = bytes.size();
  bytes += EncodeFrame(MessageType::kCancelRequest, "bb");

  DecodeResult r1 = DecodeFrame(bytes);
  ASSERT_EQ(r1.event, DecodeEvent::kFrame);
  EXPECT_EQ(r1.consumed, first);
  EXPECT_EQ(r1.frame.payload, "a");

  DecodeResult r2 = DecodeFrame(std::string_view(bytes).substr(r1.consumed));
  ASSERT_EQ(r2.event, DecodeEvent::kFrame);
  EXPECT_EQ(r2.frame.type, MessageType::kCancelRequest);
  EXPECT_EQ(r2.frame.payload, "bb");
}

// ---------------------------------------------------------------------------
// Malformed-frame corpus

TEST(WireRobustnessTest, TruncationAtEveryPrefixNeedsMoreData) {
  // A valid frame cut at *every* possible length must be either an honest
  // "need more" or (never) an error/crash — truncation is not malformation.
  const std::string bytes =
      EncodeFrame(MessageType::kShedRequest, "payload bytes here");
  for (size_t len = 0; len < bytes.size(); ++len) {
    SCOPED_TRACE(len);
    DecodeResult result = DecodeFrame(std::string_view(bytes).substr(0, len));
    EXPECT_EQ(result.event, DecodeEvent::kNeedMoreData);
    EXPECT_EQ(result.consumed, 0u);
  }
}

TEST(WireRobustnessTest, WrongMagicFailsFast) {
  std::string bytes = EncodeFrame(MessageType::kPingRequest, "p");
  bytes[0] = 'X';
  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.event, DecodeEvent::kError);
  EXPECT_EQ(result.error.code(), StatusCode::kInvalidArgument);

  // Garbage should be rejected as soon as the magic bytes exist — a 4-byte
  // HTTP-looking prefix must not stall waiting for a bogus length field.
  DecodeResult early = DecodeFrame("GET /");
  EXPECT_EQ(early.event, DecodeEvent::kError);
}

TEST(WireRobustnessTest, WrongVersionIsError) {
  std::string bytes = EncodeFrame(MessageType::kPingRequest, "p");
  bytes[4] = static_cast<char>(kWireVersion + 1);
  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.event, DecodeEvent::kError);
  EXPECT_EQ(result.error.code(), StatusCode::kInvalidArgument);
}

TEST(WireRobustnessTest, UnknownMessageTypeIsError) {
  std::string bytes = EncodeFrame(MessageType::kPingRequest, "p");
  bytes[5] = 0x42;  // not a MessageType
  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.event, DecodeEvent::kError);
  EXPECT_EQ(result.error.code(), StatusCode::kInvalidArgument);
}

TEST(WireRobustnessTest, OversizedDeclaredLengthRejectedBeforeBuffering) {
  std::string bytes = EncodeFrame(MessageType::kPingRequest, "p");
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(&bytes[8], &huge, sizeof(huge));  // little-endian host in CI
  DecodeResult result =
      DecodeFrame(std::string_view(bytes).substr(0, kFrameHeaderBytes));
  ASSERT_EQ(result.event, DecodeEvent::kError);
  EXPECT_EQ(result.error.code(), StatusCode::kInvalidArgument);
}

TEST(WireRobustnessTest, FlippedPayloadByteIsDataLoss) {
  std::string bytes =
      EncodeFrame(MessageType::kShedRequest, "checksummed payload");
  for (size_t i = kFrameHeaderBytes; i < bytes.size(); ++i) {
    SCOPED_TRACE(i);
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    DecodeResult result = DecodeFrame(corrupt);
    ASSERT_EQ(result.event, DecodeEvent::kError);
    EXPECT_EQ(result.error.code(), StatusCode::kDataLoss);
  }
}

TEST(WireRobustnessTest, FlippedChecksumByteIsDataLoss) {
  std::string bytes = EncodeFrame(MessageType::kShedRequest, "abc");
  bytes[12] = static_cast<char>(bytes[12] ^ 0xFF);
  DecodeResult result = DecodeFrame(bytes);
  ASSERT_EQ(result.event, DecodeEvent::kError);
  EXPECT_EQ(result.error.code(), StatusCode::kDataLoss);
}

TEST(WireRobustnessTest, RandomBytesNeverCrash) {
  // Seeded fuzz: random buffers of random lengths through the decoder. The
  // only contract is "no crash, no huge allocation" — any DecodeEvent is
  // acceptable. ASan in CI turns latent memory bugs here into failures.
  Rng rng(20260807);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = rng.UniformU64(64);
    std::string buffer(len, '\0');
    for (char& c : buffer) c = static_cast<char>(rng.Next() & 0xFF);
    DecodeResult result = DecodeFrame(buffer);
    if (result.event == DecodeEvent::kFrame) {
      EXPECT_LE(result.consumed, buffer.size());
    }
  }
}

TEST(WireRobustnessTest, MutatedValidFramesNeverCrash) {
  // Second corpus: start from a valid frame and flip random bytes, which
  // exercises deeper decode paths than pure noise does.
  Rng rng(424242);
  const std::string base =
      EncodeFrame(MessageType::kShedRequest,
                  EncodeShedRequest(ShedRequest{"grqc", "crr", 0.5, 42, 0,
                                                true}));
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = base;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next() & 0xFF);
    }
    DecodeResult result = DecodeFrame(mutated);
    if (result.event == DecodeEvent::kFrame) {
      // Whatever decoded must also survive the message-level decoder.
      ShedRequest request;
      Status status = DecodeShedRequest(result.frame.payload, &request);
      (void)status;
    }
  }
}

// ---------------------------------------------------------------------------
// Status <-> wire code

TEST(WireStatusTest, EveryStatusCodeRoundTripsLosslessly) {
  const StatusCode codes[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,
      StatusCode::kUnimplemented,
      StatusCode::kInternal,
      StatusCode::kIOError,
      StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
      StatusCode::kDataLoss,
  };
  for (StatusCode code : codes) {
    SCOPED_TRACE(StatusCodeToString(code));
    auto back = StatusCodeFromWireCode(WireCodeFromStatus(code));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, code);
  }
}

TEST(WireStatusTest, UnknownWireCodeIsInvalidArgument) {
  auto decoded = StatusCodeFromWireCode(0xEE);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Response envelope

TEST(WireEnvelopeTest, OkEnvelopeCarriesBody) {
  std::string payload = EncodeResponsePayload(Status::OK(), "body bytes");
  std::string_view body;
  Status status = DecodeResponsePayload(payload, &body);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(body, "body bytes");
}

TEST(WireEnvelopeTest, ErrorEnvelopeRoundTripsStatusLosslessly) {
  const Status original =
      Status::ResourceExhausted("server overloaded: 9 in flight");
  std::string payload = EncodeResponsePayload(original);
  std::string_view body;
  Status status = DecodeResponsePayload(payload, &body);
  EXPECT_EQ(status.code(), original.code());
  EXPECT_EQ(status.message(), original.message());
  EXPECT_TRUE(body.empty());
}

TEST(WireEnvelopeTest, DataLossSurvivesTheWire) {
  std::string payload =
      EncodeResponsePayload(Status::DataLoss("checksum mismatch"));
  std::string_view body;
  Status status = DecodeResponsePayload(payload, &body);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(status.message(), "checksum mismatch");
}

TEST(WireEnvelopeTest, TruncatedErrorEnvelopeFailsDecoding) {
  // An error envelope is code + message with no body, so every strict
  // prefix is undecodable (the message's length prefix outruns the bytes).
  // OK envelopes are different: bytes after the envelope are the body, whose
  // length this layer cannot know — truncated bodies are the typed
  // decoders' problem.
  std::string payload =
      EncodeResponsePayload(Status::NotFound("unknown job id 7"));
  for (size_t len = 0; len < payload.size(); ++len) {
    SCOPED_TRACE(len);
    std::string_view body;
    Status status = DecodeResponsePayload(
        std::string_view(payload).substr(0, len), &body);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.code(), StatusCode::kNotFound);  // failed, not decoded
  }
}

// ---------------------------------------------------------------------------
// Message codecs

TEST(WireMessageTest, ShedRequestRoundTrip) {
  ShedRequest request;
  request.dataset = "livejournal";
  request.method = "bm2";
  request.p = 0.37;
  request.seed = 991;
  request.deadline_ms = 1500;
  request.wait = false;
  request.output = "fleet.shard3.kept";

  ShedRequest decoded;
  ASSERT_TRUE(DecodeShedRequest(EncodeShedRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.dataset, request.dataset);
  EXPECT_EQ(decoded.method, request.method);
  EXPECT_DOUBLE_EQ(decoded.p, request.p);
  EXPECT_EQ(decoded.seed, request.seed);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.wait, request.wait);
  EXPECT_EQ(decoded.output, request.output);
}

TEST(WireMessageTest, ShedRequestEmptyOutputRoundTripsEmpty) {
  ShedRequest decoded;
  decoded.output = "stale";
  ASSERT_TRUE(
      DecodeShedRequest(EncodeShedRequest(ShedRequest{}), &decoded).ok());
  EXPECT_TRUE(decoded.output.empty());
}

TEST(WireMessageTest, ShedRequestRejectsTrailingBytes) {
  std::string payload = EncodeShedRequest(ShedRequest{"g", "crr", 0.5, 1, 0,
                                                      true});
  payload += '\0';
  ShedRequest decoded;
  Status status = DecodeShedRequest(payload, &decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WireMessageTest, JobIdAndPingRoundTrip) {
  JobIdRequest job;
  ASSERT_TRUE(
      DecodeJobIdRequest(EncodeJobIdRequest(JobIdRequest{77}), &job).ok());
  EXPECT_EQ(job.job_id, 77u);

  PingMessage pong;
  ASSERT_TRUE(DecodePing(EncodePing(PingMessage{0xDEADBEEF}), &pong).ok());
  EXPECT_EQ(pong.token, 0xDEADBEEFu);
}

TEST(WireMessageTest, ResultSummaryRoundTripWithStats) {
  ResultSummary summary;
  summary.job_id = 5;
  summary.kept_edges = 7860;
  summary.total_delta = 1853.0;
  summary.average_delta = 0.3535;
  summary.reduction_seconds = 1.25;
  summary.deduplicated = true;
  summary.stats = {{"swaps", 120.0}, {"phase1_seconds", 0.8}};

  ResultSummary decoded;
  ASSERT_TRUE(
      DecodeResultSummaryBody(EncodeResultSummaryBody(summary), &decoded)
          .ok());
  EXPECT_EQ(decoded.job_id, summary.job_id);
  EXPECT_EQ(decoded.kept_edges, summary.kept_edges);
  EXPECT_DOUBLE_EQ(decoded.total_delta, summary.total_delta);
  EXPECT_TRUE(decoded.deduplicated);
  ASSERT_EQ(decoded.stats.size(), 2u);
  EXPECT_EQ(decoded.stats[0].first, "swaps");
  EXPECT_DOUBLE_EQ(decoded.stats[1].second, 0.8);
}

TEST(WireMessageTest, ShedResponseWithAndWithoutResult) {
  ShedResponse submitted;
  submitted.job_id = 9;
  ShedResponse decoded;
  ASSERT_TRUE(
      DecodeShedResponseBody(EncodeShedResponseBody(submitted), &decoded)
          .ok());
  EXPECT_EQ(decoded.job_id, 9u);
  EXPECT_FALSE(decoded.has_result);

  ShedResponse finished;
  finished.job_id = 10;
  finished.has_result = true;
  finished.result.kept_edges = 42;
  ASSERT_TRUE(
      DecodeShedResponseBody(EncodeShedResponseBody(finished), &decoded)
          .ok());
  EXPECT_TRUE(decoded.has_result);
  EXPECT_EQ(decoded.result.kept_edges, 42u);
}

TEST(WireMessageTest, GetStatusAndListDatasetsRoundTrip) {
  GetStatusResponse status_response;
  status_response.state = 2;
  status_response.code = WireCodeFromStatus(StatusCode::kCancelled);
  status_response.message = "deadline";
  status_response.deduplicated = true;
  status_response.queue_seconds = 0.5;
  status_response.run_seconds = 1.5;
  GetStatusResponse status_decoded;
  ASSERT_TRUE(DecodeGetStatusResponseBody(
                  EncodeGetStatusResponseBody(status_response),
                  &status_decoded)
                  .ok());
  EXPECT_EQ(status_decoded.state, status_response.state);
  EXPECT_EQ(status_decoded.code, status_response.code);
  EXPECT_EQ(status_decoded.message, "deadline");
  EXPECT_DOUBLE_EQ(status_decoded.run_seconds, 1.5);

  ListDatasetsResponse list;
  list.names = {"enron", "grqc", "hepph"};
  ListDatasetsResponse list_decoded;
  ASSERT_TRUE(DecodeListDatasetsResponseBody(
                  EncodeListDatasetsResponseBody(list), &list_decoded)
                  .ok());
  EXPECT_EQ(list_decoded.names, list.names);
}

TEST(WireMessageTest, ApplyMutationsRoundTrip) {
  ApplyMutationsRequest request;
  request.dataset = "grqc";
  request.inserts = {{1, 9}, {0, 1047}};
  request.deletes = {{0, 1}};
  ApplyMutationsRequest request_decoded;
  ASSERT_TRUE(DecodeApplyMutationsRequest(EncodeApplyMutationsRequest(request),
                                          &request_decoded)
                  .ok());
  EXPECT_EQ(request_decoded.dataset, "grqc");
  EXPECT_EQ(request_decoded.inserts, request.inserts);
  EXPECT_EQ(request_decoded.deletes, request.deletes);

  ApplyMutationsResponse response;
  response.version = 7;
  response.live_edges = 3138;
  response.overlay_inserted = 2;
  response.overlay_deleted = 1;
  response.compacting = 1;
  ApplyMutationsResponse response_decoded;
  ASSERT_TRUE(DecodeApplyMutationsResponseBody(
                  EncodeApplyMutationsResponseBody(response),
                  &response_decoded)
                  .ok());
  EXPECT_EQ(response_decoded.version, 7u);
  EXPECT_EQ(response_decoded.live_edges, 3138u);
  EXPECT_EQ(response_decoded.overlay_inserted, 2u);
  EXPECT_EQ(response_decoded.overlay_deleted, 1u);
  EXPECT_EQ(response_decoded.compacting, 1u);
}

TEST(WireMessageTest, ApplyMutationsEmptyListsRoundTrip) {
  ApplyMutationsRequest request;
  request.dataset = "d";
  ApplyMutationsRequest decoded;
  ASSERT_TRUE(DecodeApplyMutationsRequest(EncodeApplyMutationsRequest(request),
                                          &decoded)
                  .ok());
  EXPECT_TRUE(decoded.inserts.empty());
  EXPECT_TRUE(decoded.deletes.empty());
}

TEST(WireMessageTest, ApplyMutationsHostileCountFailsWithoutAllocating) {
  // A hostile peer can declare any edge count in 4 bytes; the decoder must
  // bound its reserve by the bytes actually present and fail cleanly
  // instead of attempting a multi-GB allocation.
  WireWriter w;
  w.PutString("grqc");
  w.PutU32(0xFFFFFFFFu);  // insert count with no edge bytes behind it
  ApplyMutationsRequest decoded;
  EXPECT_FALSE(DecodeApplyMutationsRequest(w.Take(), &decoded).ok());

  WireWriter w2;
  w2.PutString("grqc");
  w2.PutU32(3);  // declares 3 inserts, supplies 1
  w2.PutU32(0);
  w2.PutU32(1);
  ApplyMutationsRequest decoded2;
  EXPECT_FALSE(DecodeApplyMutationsRequest(w2.Take(), &decoded2).ok());

  WireWriter w3;
  w3.PutString("grqc");
  w3.PutU32(0);  // inserts
  w3.PutU32(0);  // deletes
  w3.PutU32(7);  // trailing garbage must be rejected
  ApplyMutationsRequest decoded3;
  EXPECT_FALSE(DecodeApplyMutationsRequest(w3.Take(), &decoded3).ok());
}

// ---------------------------------------------------------------------------
// v1 <-> v2 compatibility (QoS tails)

TEST(WireCompatTest, OlderFrameVersionsWithinRangeAreAccepted) {
  std::string bytes = EncodeFrame(MessageType::kPingRequest,
                                  EncodePing(PingMessage{1}));
  ASSERT_EQ(static_cast<uint8_t>(bytes[4]), kWireVersion);
  // A v1 peer's frame (the CRC covers only the payload, so patching the
  // version byte keeps the frame valid).
  bytes[4] = static_cast<char>(kWireMinVersion);
  DecodeResult v1 = DecodeFrame(bytes);
  EXPECT_EQ(v1.event, DecodeEvent::kFrame);

  bytes[4] = static_cast<char>(kWireMinVersion - 1);
  EXPECT_EQ(DecodeFrame(bytes).event, DecodeEvent::kError);
  bytes[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(DecodeFrame(bytes).event, DecodeEvent::kError);
}

TEST(WireCompatTest, V1ShedRequestBodyDecodesWithDefaultTail) {
  // A v1 encoder stops after `output`; the decoder must supply neutral QoS
  // defaults (default tenant, normal lane) rather than failing.
  WireWriter w;
  w.PutString("clique");
  w.PutString("crr");
  w.PutDouble(0.4);
  w.PutU64(11);
  w.PutU64(2500);
  w.PutU8(1);          // wait
  w.PutString("out");  // output

  ShedRequest decoded;
  decoded.tenant = "stale";
  decoded.priority = 9;
  ASSERT_TRUE(DecodeShedRequest(w.bytes(), &decoded).ok());
  EXPECT_EQ(decoded.dataset, "clique");
  EXPECT_EQ(decoded.deadline_ms, 2500u);
  EXPECT_TRUE(decoded.tenant.empty());
  EXPECT_EQ(decoded.priority, 0);
}

TEST(WireCompatTest, ShedRequestRoundTripsTenantAndPriority) {
  ShedRequest request;
  request.dataset = "g";
  request.tenant = "gold";
  request.priority = 1;
  ShedRequest decoded;
  ASSERT_TRUE(DecodeShedRequest(EncodeShedRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.tenant, "gold");
  EXPECT_EQ(decoded.priority, 1);
}

TEST(WireCompatTest, V1ResultSummaryBodyDecodesWithDefaultTail) {
  WireWriter w;
  w.PutU64(3);       // job_id
  w.PutU64(120);     // kept_edges
  w.PutDouble(1.0);  // total_delta
  w.PutDouble(0.5);  // average_delta
  w.PutDouble(0.2);  // reduction_seconds
  w.PutU8(0);        // deduplicated
  w.PutU32(1);       // one stat
  w.PutString("swaps");
  w.PutDouble(12.0);

  ResultSummary decoded;
  decoded.applied_method = "stale";
  decoded.applied_p = 0.9;
  decoded.degrade_kind = 2;
  ASSERT_TRUE(DecodeResultSummaryBody(w.bytes(), &decoded).ok());
  EXPECT_EQ(decoded.kept_edges, 120u);
  ASSERT_EQ(decoded.stats.size(), 1u);
  EXPECT_TRUE(decoded.applied_method.empty());
  EXPECT_DOUBLE_EQ(decoded.applied_p, 0.0);
  EXPECT_EQ(decoded.degrade_kind, 0);
}

TEST(WireCompatTest, AppliedTierRoundTripsOnSummaryAndStatus) {
  ResultSummary summary;
  summary.job_id = 8;
  summary.applied_method = "bm2";
  summary.applied_p = 0.25;
  summary.degrade_kind = static_cast<uint8_t>(DegradeKind::kCheaperTier);
  ResultSummary summary_decoded;
  ASSERT_TRUE(DecodeResultSummaryBody(EncodeResultSummaryBody(summary),
                                      &summary_decoded)
                  .ok());
  EXPECT_EQ(summary_decoded.applied_method, "bm2");
  EXPECT_DOUBLE_EQ(summary_decoded.applied_p, 0.25);
  EXPECT_EQ(summary_decoded.degrade_kind,
            static_cast<uint8_t>(DegradeKind::kCheaperTier));

  // The summary also survives embedded in a ShedResponse — it is that
  // message's last field, which is what makes the optional tail safe.
  ShedResponse response;
  response.job_id = 8;
  response.has_result = true;
  response.result = summary;
  ShedResponse response_decoded;
  ASSERT_TRUE(DecodeShedResponseBody(EncodeShedResponseBody(response),
                                     &response_decoded)
                  .ok());
  EXPECT_EQ(response_decoded.result.applied_method, "bm2");
  EXPECT_EQ(response_decoded.result.degrade_kind,
            static_cast<uint8_t>(DegradeKind::kCheaperTier));

  GetStatusResponse status;
  status.state = 2;
  status.applied_method = "local-degree";
  status.applied_p = 0.5;
  status.degrade_kind = static_cast<uint8_t>(DegradeKind::kCachedCoarserP);
  GetStatusResponse status_decoded;
  ASSERT_TRUE(DecodeGetStatusResponseBody(
                  EncodeGetStatusResponseBody(status), &status_decoded)
                  .ok());
  EXPECT_EQ(status_decoded.applied_method, "local-degree");
  EXPECT_EQ(status_decoded.degrade_kind,
            static_cast<uint8_t>(DegradeKind::kCachedCoarserP));
}

TEST(WireMessageTest, WireReaderTrapsOverreadWithStickyFailure) {
  WireWriter writer;
  writer.PutU32(7);
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.GetU32(), 7u);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.GetU64(), 0u);  // over-read
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.Finish("test").ok());
}

}  // namespace
}  // namespace edgeshed::net
