#include "service/rank_cache.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/betweenness.h"
#include "common/random.h"
#include "core/crr.h"
#include "graph/generators/generators.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "service/metrics_registry.h"
#include "testing/test_graphs.h"

namespace edgeshed::service {
namespace {

using ::edgeshed::testing::Clique;

graph::Graph SmallScaleFree(uint64_t seed = 7) {
  Rng rng(seed);
  return graph::BarabasiAlbert(400, 3, rng);
}

double StatValue(const core::SheddingResult& result, const std::string& key) {
  for (const auto& [k, v] : result.stats) {
    if (k == key) return v;
  }
  return -1.0;
}

// ---- RankCache unit tests ----

TEST(RankCacheTest, MissComputesThenHitsShareWithoutRecompute) {
  MetricsRegistry metrics;
  RankCache cache({}, &metrics);
  graph::Graph g = SmallScaleFree();
  analytics::BetweennessOptions options;

  auto first = cache.GetOrCompute("ds", 1, g, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->computed);
  EXPECT_GT(first->seconds, 0.0);
  EXPECT_EQ(first->ids, analytics::EdgesByBetweennessDescending(g, options));

  auto second = cache.GetOrCompute("ds", 1, g, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->computed);
  EXPECT_EQ(second->seconds, 0.0);  // exactly: hits report zero ranking time
  EXPECT_EQ(second->ids, first->ids);

  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_miss"), 1u);
  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_hit"), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), g.NumEdges() * sizeof(graph::EdgeId) - 1);
}

TEST(RankCacheTest, KeySeparatesDatasetGenerationAndOptions) {
  analytics::BetweennessOptions a;
  analytics::BetweennessOptions b = a;
  EXPECT_EQ(RankCache::Key("ds", 1, a), RankCache::Key("ds", 1, b));
  EXPECT_NE(RankCache::Key("ds", 1, a), RankCache::Key("ds", 2, a));
  EXPECT_NE(RankCache::Key("ds", 1, a), RankCache::Key("other", 1, a));
  b.sample_sources = a.sample_sources + 1;
  EXPECT_NE(RankCache::Key("ds", 1, a), RankCache::Key("ds", 1, b));
  b = a;
  b.kernel = analytics::BetweennessOptions::Kernel::kClassic;
  EXPECT_NE(RankCache::Key("ds", 1, a), RankCache::Key("ds", 1, b));
  b = a;
  b.wave_size = 16;
  EXPECT_NE(RankCache::Key("ds", 1, a), RankCache::Key("ds", 1, b));
  // Threads and the cancellation token never change scores, so they must
  // not fragment the cache.
  b = a;
  b.threads = 8;
  CancellationToken token;
  b.cancel = &token;
  EXPECT_EQ(RankCache::Key("ds", 1, a), RankCache::Key("ds", 1, b));
}

TEST(RankCacheTest, GenerationBumpForcesRecompute) {
  RankCache cache;
  graph::Graph g = SmallScaleFree();
  analytics::BetweennessOptions options;
  ASSERT_TRUE(cache.GetOrCompute("ds", 1, g, options).ok());
  auto after_replace = cache.GetOrCompute("ds", 2, g, options);
  ASSERT_TRUE(after_replace.ok());
  EXPECT_TRUE(after_replace->computed);
}

TEST(RankCacheTest, EvictsLeastRecentlyUsedPastByteBudget) {
  MetricsRegistry metrics;
  graph::Graph g = SmallScaleFree();
  RankCacheOptions options;
  // Room for one ranking (|E| ids) but not two.
  options.byte_budget = g.NumEdges() * sizeof(graph::EdgeId) * 3 / 2;
  RankCache cache(options, &metrics);
  analytics::BetweennessOptions betweenness;

  ASSERT_TRUE(cache.GetOrCompute("a", 1, g, betweenness).ok());
  ASSERT_TRUE(cache.GetOrCompute("b", 1, g, betweenness).ok());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_evicted"), 1u);
  EXPECT_LE(cache.bytes(), options.byte_budget);

  // "a" was evicted to make room for "b": a hit on "b", a recompute on "a".
  auto b_again = cache.GetOrCompute("b", 1, g, betweenness);
  ASSERT_TRUE(b_again.ok());
  EXPECT_FALSE(b_again->computed);
  auto a_again = cache.GetOrCompute("a", 1, g, betweenness);
  ASSERT_TRUE(a_again.ok());
  EXPECT_TRUE(a_again->computed);
}

TEST(RankCacheTest, OversizedSingleRankingIsStillServed) {
  RankCacheOptions options;
  options.byte_budget = 1;  // nothing fits
  RankCache cache(options);
  graph::Graph g = Clique(12);
  auto ranking = cache.GetOrCompute("ds", 1, g, {});
  ASSERT_TRUE(ranking.ok());
  EXPECT_EQ(ranking->ids.size(), g.NumEdges());
  EXPECT_EQ(cache.entries(), 1u);  // never evicts the just-inserted entry
}

TEST(RankCacheTest, InvalidateDatasetDropsAllItsGenerations) {
  MetricsRegistry metrics;
  RankCache cache({}, &metrics);
  graph::Graph g = SmallScaleFree();
  analytics::BetweennessOptions options;
  ASSERT_TRUE(cache.GetOrCompute("a", 1, g, options).ok());
  ASSERT_TRUE(cache.GetOrCompute("a", 2, g, options).ok());
  ASSERT_TRUE(cache.GetOrCompute("b", 1, g, options).ok());
  cache.InvalidateDataset("a");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_invalidated"), 2u);
  auto b_hit = cache.GetOrCompute("b", 1, g, options);
  ASSERT_TRUE(b_hit.ok());
  EXPECT_FALSE(b_hit->computed);
}

TEST(RankCacheTest, CancelledComputeIsNeitherCachedNorShared) {
  MetricsRegistry metrics;
  RankCache cache({}, &metrics);
  graph::Graph g = SmallScaleFree();
  CancellationToken token;
  token.Cancel();
  analytics::BetweennessOptions cancelled;
  cancelled.cancel = &token;
  auto failed = cache.GetOrCompute("ds", 1, g, cancelled);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_compute_failed"), 1u);

  // An independent caller is unaffected and computes fresh.
  auto ok = cache.GetOrCompute("ds", 1, g, {});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->computed);
}

// ---- GraphStore generation / Replace ----

TEST(GraphStoreReplaceTest, ReplaceBumpsGenerationAndDropsResident) {
  GraphStore store;
  ASSERT_TRUE(
      store.Register("ds", []() -> StatusOr<graph::Graph> { return Clique(5); })
          .ok());
  EXPECT_EQ(store.Generation("ds"), 1u);
  uint64_t generation = 0;
  auto first = store.Get("ds", &generation);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ((*first)->NumNodes(), 5u);

  ASSERT_TRUE(
      store
          .Replace("ds", []() -> StatusOr<graph::Graph> { return Clique(7); })
          .ok());
  EXPECT_EQ(store.Generation("ds"), 2u);
  EXPECT_FALSE(store.IsResident("ds"));
  auto second = store.Get("ds", &generation);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(generation, 2u);
  EXPECT_EQ((*second)->NumNodes(), 7u);
  // The old lease stays valid after replacement.
  EXPECT_EQ((*first)->NumNodes(), 5u);
}

TEST(GraphStoreReplaceTest, ReplaceRegistersUnknownNames) {
  GraphStore store;
  ASSERT_TRUE(
      store
          .Replace("fresh", []() -> StatusOr<graph::Graph> { return Clique(4); })
          .ok());
  EXPECT_EQ(store.Generation("fresh"), 1u);
  auto got = store.Get("fresh");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->NumNodes(), 4u);
}

TEST(GraphStoreReplaceTest, GenerationIsZeroForUnknownNames) {
  GraphStore store;
  EXPECT_EQ(store.Generation("nope"), 0u);
}

// ---- Scheduler integration: jobs share one ranking phase ----

TEST(RankCacheSchedulerTest, CrrJobsAtDifferentPShareOneRanking) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  ASSERT_TRUE(store
                  .Register("ds",
                            []() -> StatusOr<graph::Graph> {
                              return SmallScaleFree();
                            })
                  .ok());
  JobSchedulerOptions options;
  options.workers = 2;
  JobScheduler scheduler(&store, &metrics, options);

  JobSpec spec;
  spec.dataset = "ds";
  spec.method = "crr";
  spec.p = 0.3;
  auto first = scheduler.Submit(spec);
  ASSERT_TRUE(first.ok());
  spec.p = 0.6;  // different p: distinct job, identical ranking inputs
  auto second = scheduler.Submit(spec);
  ASSERT_TRUE(second.ok());

  auto first_result = scheduler.Wait(*first);
  auto second_result = scheduler.Wait(*second);
  ASSERT_TRUE(first_result.ok()) << first_result.status().ToString();
  ASSERT_TRUE(second_result.ok()) << second_result.status().ToString();

  // Exactly one job paid for the betweenness pass; the other reused it
  // (and reports exactly zero ranking seconds).
  const double first_seconds =
      StatValue(**first_result, "betweenness_seconds");
  const double second_seconds =
      StatValue(**second_result, "betweenness_seconds");
  EXPECT_GT(std::max(first_seconds, second_seconds), 0.0);
  EXPECT_EQ(std::min(first_seconds, second_seconds), 0.0);
  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_miss"), 1u);
  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_hit") +
                metrics.CounterValue("scheduler.rank_cache_wait_hit"),
            1u);

  // Sharing the ranking must not change results: each job matches a direct
  // in-process reduction.
  for (auto [id, p] : {std::pair{*first, 0.3}, std::pair{*second, 0.6}}) {
    auto expected = core::Crr(core::CrrOptions{.seed = spec.seed})
                        .Reduce(SmallScaleFree(), p);
    ASSERT_TRUE(expected.ok());
    auto got = scheduler.Wait(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)->kept_edges, expected->kept_edges) << "p=" << p;
  }
}

TEST(RankCacheSchedulerTest, DatasetReplaceInvalidatesRankingAndResults) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  ASSERT_TRUE(store
                  .Register("ds",
                            []() -> StatusOr<graph::Graph> {
                              return SmallScaleFree(7);
                            })
                  .ok());
  JobSchedulerOptions options;
  options.workers = 1;
  JobScheduler scheduler(&store, &metrics, options);

  JobSpec spec;
  spec.dataset = "ds";
  spec.method = "crr";
  spec.p = 0.5;
  auto before = scheduler.Submit(spec);
  ASSERT_TRUE(before.ok());
  auto before_result = scheduler.Wait(*before);
  ASSERT_TRUE(before_result.ok());
  EXPECT_GT(StatValue(**before_result, "betweenness_seconds"), 0.0);

  // Replace the dataset: an identical spec must neither hit the result
  // cache nor reuse the old ranking — it recomputes against the new graph.
  ASSERT_TRUE(store
                  .Replace("ds",
                           []() -> StatusOr<graph::Graph> {
                             return SmallScaleFree(8);
                           })
                  .ok());
  auto after = scheduler.Submit(spec);
  ASSERT_TRUE(after.ok());
  auto after_result = scheduler.Wait(*after);
  ASSERT_TRUE(after_result.ok()) << after_result.status().ToString();
  auto after_status = scheduler.GetStatus(*after);
  ASSERT_TRUE(after_status.ok());
  EXPECT_FALSE(after_status->deduplicated);
  EXPECT_GT(StatValue(**after_result, "betweenness_seconds"), 0.0);
  EXPECT_EQ(metrics.CounterValue("scheduler.rank_cache_miss"), 2u);
  EXPECT_NE((*before_result)->kept_edges, (*after_result)->kept_edges);
}

TEST(RankCacheSchedulerTest, DisabledRankCacheStillRanksInline) {
  GraphStore store;
  ASSERT_TRUE(store
                  .Register("ds",
                            []() -> StatusOr<graph::Graph> {
                              return SmallScaleFree();
                            })
                  .ok());
  JobSchedulerOptions options;
  options.workers = 1;
  options.enable_rank_cache = false;
  JobScheduler scheduler(&store, nullptr, options);
  EXPECT_EQ(scheduler.rank_cache(), nullptr);

  JobSpec spec;
  spec.dataset = "ds";
  spec.method = "crr";
  auto id = scheduler.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(StatValue(**result, "betweenness_seconds"), 0.0);
}

}  // namespace
}  // namespace edgeshed::service
