#include "analytics/shortest_paths.h"

#include <gtest/gtest.h>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;

TEST(DistanceProfileTest, PathGraphExactCounts) {
  // Path of 4: ordered reachable pairs per distance: d1: 6, d2: 4, d3: 2.
  auto profile = DistanceProfile(Path(4));
  EXPECT_EQ(profile.CountFor(1), 6u);
  EXPECT_EQ(profile.CountFor(2), 4u);
  EXPECT_EQ(profile.CountFor(3), 2u);
  EXPECT_EQ(profile.total(), 12u);
}

TEST(DistanceProfileTest, CliqueAllDistanceOne) {
  auto profile = DistanceProfile(Clique(6));
  EXPECT_EQ(profile.CountFor(1), 30u);  // 6*5 ordered pairs
  EXPECT_EQ(profile.CountFor(2), 0u);
}

TEST(DistanceProfileTest, CycleDistances) {
  auto profile = DistanceProfile(Cycle(6));
  // Each vertex: two at distance 1, two at 2, one at 3.
  EXPECT_EQ(profile.CountFor(1), 12u);
  EXPECT_EQ(profile.CountFor(2), 12u);
  EXPECT_EQ(profile.CountFor(3), 6u);
}

TEST(DistanceProfileTest, DisconnectedPairsExcluded) {
  auto g = MustBuild(4, {{0, 1}, {2, 3}});
  auto profile = DistanceProfile(g);
  EXPECT_EQ(profile.total(), 4u);  // only the two intra-component pairs x2
}

TEST(DistanceProfileTest, EmptyGraph) {
  graph::Graph g;
  auto profile = DistanceProfile(g);
  EXPECT_TRUE(profile.empty());
}

TEST(DistanceProfileTest, EdgelessGraphHasNoPairs) {
  auto profile = DistanceProfile(MustBuild(5, {}));
  EXPECT_TRUE(profile.empty());
}

TEST(DistanceProfileTest, SampledApproximatesExactShape) {
  Rng rng(21);
  graph::Graph g = graph::BarabasiAlbert(3000, 3, rng);
  DistanceProfileOptions exact_options;
  exact_options.exact_node_threshold = 1 << 20;
  auto exact = DistanceProfile(g, exact_options);

  DistanceProfileOptions sampled_options;
  sampled_options.exact_node_threshold = 1;  // force sampling
  sampled_options.sample_sources = 512;
  auto sampled = DistanceProfile(g, sampled_options);

  // The normalized distributions should be close in L1.
  EXPECT_LT(Histogram::L1Distance(exact, sampled), 0.1);
}

TEST(DistanceProfileTest, SampleSourcesAboveNodeCountRunsExact) {
  auto g = Path(10);
  DistanceProfileOptions options;
  options.exact_node_threshold = 1;
  options.sample_sources = 100;  // > n: falls back to exact
  auto profile = DistanceProfile(g, options);
  EXPECT_EQ(profile.CountFor(1), 18u);
}

TEST(HopPlotTest, CumulativeOfProfile) {
  auto profile = DistanceProfile(Path(4));
  EXPECT_DOUBLE_EQ(HopPlotFraction(profile, 0), 0.0);
  EXPECT_DOUBLE_EQ(HopPlotFraction(profile, 1), 0.5);
  EXPECT_DOUBLE_EQ(HopPlotFraction(profile, 2), 10.0 / 12.0);
  EXPECT_DOUBLE_EQ(HopPlotFraction(profile, 3), 1.0);
  EXPECT_DOUBLE_EQ(HopPlotFraction(profile, 10), 1.0);
}

TEST(HopPlotTest, MonotoneNonDecreasing) {
  Rng rng(22);
  graph::Graph g = graph::ErdosRenyi(300, 600, rng);
  auto profile = DistanceProfile(g);
  double previous = 0.0;
  for (int64_t h = 0; h <= 10; ++h) {
    double fraction = HopPlotFraction(profile, h);
    EXPECT_GE(fraction, previous);
    previous = fraction;
  }
}

}  // namespace
}  // namespace edgeshed::analytics
