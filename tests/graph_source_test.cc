#include "graph/source.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "graph/binary_io.h"
#include "graph/edge_list_io.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::graph {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class GraphSourceTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(GraphSourceTest, SniffClassifiesMagics) {
  EXPECT_EQ(SniffGraphFormat("EDGSHED1........"), GraphFormat::kSnapshot);
  EXPECT_EQ(SniffGraphFormat("EDGSHED2........"), GraphFormat::kSnapshot);
  EXPECT_EQ(SniffGraphFormat("EDGSHED3........"), GraphFormat::kSnapshot);
  EXPECT_EQ(SniffGraphFormat("EDGSHEDL........"), GraphFormat::kBinaryEdges);
  EXPECT_EQ(SniffGraphFormat("# comment\n0 1\n"), GraphFormat::kText);
  EXPECT_EQ(SniffGraphFormat("0 1\n"), GraphFormat::kText);
  EXPECT_EQ(SniffGraphFormat(""), GraphFormat::kText);
  EXPECT_EQ(SniffGraphFormat("EDGSHED"), GraphFormat::kText);  // too short
  EXPECT_EQ(SniffGraphFormat("EDGSHEDX"), GraphFormat::kText);
}

TEST_F(GraphSourceTest, FormatNamesRoundTrip) {
  for (const GraphFormat f :
       {GraphFormat::kAuto, GraphFormat::kText, GraphFormat::kBinaryEdges,
        GraphFormat::kSnapshot}) {
    auto parsed = ParseGraphFormat(GraphFormatName(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(ParseGraphFormat("csv").ok());
  EXPECT_EQ(ParseGraphFormat("csv").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GraphSourceTest, DetectReadsTheFile) {
  const std::string text = TempPath("detect.txt");
  WriteFile(text, "0 1\n");
  auto detected = DetectGraphFormat(text);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(*detected, GraphFormat::kText);

  const std::string snap = TempPath("detect.esg");
  ASSERT_TRUE(SaveBinaryGraph(PaperExampleGraph(), snap).ok());
  detected = DetectGraphFormat(snap);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(*detected, GraphFormat::kSnapshot);

  EXPECT_EQ(DetectGraphFormat(TempPath("missing.txt")).status().code(),
            StatusCode::kIOError);
}

TEST_F(GraphSourceTest, AutoLoadsEveryFormat) {
  // Text is the source of truth: reloading it fixes the dense numbering
  // every other format must reproduce.
  const std::string text = TempPath("auto.txt");
  ASSERT_TRUE(SaveEdgeList(PaperExampleGraph(), text).ok());
  auto ref = LoadGraph(text);
  ASSERT_TRUE(ref.ok());

  const std::string binary = TempPath("auto.ebl");
  ASSERT_TRUE(
      SaveBinaryEdgeList(ref->graph, ref->original_ids, binary).ok());
  const std::string snapshot = TempPath("auto.es3");
  SnapshotOptions snapshot_options;
  snapshot_options.original_ids = ref->original_ids;
  ASSERT_TRUE(SaveBinaryGraph(ref->graph, snapshot, snapshot_options).ok());

  for (const std::string& path : {text, binary, snapshot}) {
    auto loaded = LoadGraph(path);  // implicit GraphSource, kAuto
    ASSERT_TRUE(loaded.ok()) << path << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->graph.edges(), ref->graph.edges()) << path;
  }
}

TEST_F(GraphSourceTest, ExplicitFormatMismatchFails) {
  const std::string snapshot = TempPath("mismatch.es3");
  ASSERT_TRUE(
      SaveBinaryGraph(PaperExampleGraph(), snapshot, SnapshotOptions{}).ok());
  auto loaded = LoadGraph({snapshot, GraphFormat::kText});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("EDGSHED3"), std::string::npos);

  loaded = LoadGraph({snapshot, GraphFormat::kBinaryEdges});
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphSourceTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadGraph(TempPath("nope.txt")).status().code(),
            StatusCode::kIOError);
}

TEST_F(GraphSourceTest, TextLoadPreservesOriginalIds) {
  const std::string path = TempPath("remap.txt");
  WriteFile(path, "# remapped\n1000 7\n7 42\n42 1000\n");
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumNodes(), 3u);
  EXPECT_EQ(loaded->graph.NumEdges(), 3u);
  const std::vector<uint64_t> want = {1000, 7, 42};  // first-seen order
  EXPECT_EQ(loaded->original_ids, want);
}

TEST_F(GraphSourceTest, BinaryEdgeListRoundTripsLoadedGraphExactly) {
  const std::string text = TempPath("rt.txt");
  WriteFile(text, "500 9\n9 8\n8 500\n500 77\n9 8\n");  // dup collapses
  auto from_text = LoadGraph(text);
  ASSERT_TRUE(from_text.ok());

  const std::string binary = TempPath("rt.ebl");
  ASSERT_TRUE(SaveBinaryEdgeList(from_text->graph, from_text->original_ids,
                                 binary)
                  .ok());
  auto from_binary = LoadGraph(binary);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  EXPECT_EQ(from_binary->graph.edges(), from_text->graph.edges());
  EXPECT_EQ(from_binary->original_ids, from_text->original_ids);
}

TEST_F(GraphSourceTest, BinaryEdgeListIdentityIdsWrittenWhenNoRemap) {
  const Graph g = PaperExampleGraph();
  const std::string path = TempPath("identity.ebl");
  ASSERT_TRUE(SaveBinaryEdgeList(g, {}, path).ok());
  auto loaded = LoadBinaryEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->original_ids.size(), g.NumNodes());
  for (uint64_t i = 0; i < g.NumNodes(); ++i) {
    EXPECT_EQ(loaded->original_ids[i], i);
  }
}

TEST_F(GraphSourceTest, BinaryEdgeListKeepsIsolatedVertices) {
  const Graph g = edgeshed::testing::MustBuild(10, {{0, 1}});
  const std::string path = TempPath("isolated.ebl");
  ASSERT_TRUE(SaveBinaryEdgeList(g, {}, path).ok());
  auto loaded = LoadBinaryEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumNodes(), 10u);
}

TEST_F(GraphSourceTest, BinaryEdgeListFlippedByteIsDataLoss) {
  const Graph g = PaperExampleGraph();
  const std::string path = TempPath("corrupt.ebl");
  ASSERT_TRUE(SaveBinaryEdgeList(g, {}, path).ok());
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 6] ^= 0x10;  // payload byte, not the footer
  const std::string bad = TempPath("corrupt_bad.ebl");
  WriteFile(bad, bytes);
  auto loaded = LoadBinaryEdgeList(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(GraphSourceTest, BinaryEdgeListTruncationIsInvalidArgument) {
  const Graph g = PaperExampleGraph();
  const std::string path = TempPath("short.ebl");
  ASSERT_TRUE(SaveBinaryEdgeList(g, {}, path).ok());
  const std::string bytes = ReadFile(path);
  const std::string bad = TempPath("short_bad.ebl");
  WriteFile(bad, bytes.substr(0, bytes.size() - 9));
  auto loaded = LoadBinaryEdgeList(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphSourceTest, ThreadCountDoesNotChangeTextLoad) {
  Rng rng(13);
  const Graph g = ErdosRenyi(400, 1600, rng);
  const std::string path = TempPath("threads.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  IngestOptions serial;
  serial.threads = 1;
  IngestOptions wide;
  wide.threads = 8;
  auto a = LoadGraph(path, serial);
  auto b = LoadGraph(path, wide);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.edges(), b->graph.edges());
  EXPECT_EQ(a->original_ids, b->original_ids);
}

TEST_F(GraphSourceTest, CancelledTextLoadReturnsCancelled) {
  const std::string path = TempPath("cancel.txt");
  WriteFile(path, "0 1\n1 2\n");
  CancellationToken token;
  token.Cancel();
  IngestOptions options;
  options.cancel = &token;
  auto loaded = LoadGraph(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace edgeshed::graph
