#include "common/check.h"

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace edgeshed {
namespace {

TEST(CheckTest, PassingConditionIsSilent) {
  EDGESHED_CHECK(true);
  EDGESHED_CHECK(1 + 1 == 2) << "never evaluated";
  EDGESHED_CHECK_EQ(3, 3);
  EDGESHED_CHECK_NE(3, 4);
  EDGESHED_CHECK_LT(1, 2);
  EDGESHED_CHECK_LE(2, 2);
  EDGESHED_CHECK_GT(2, 1);
  EDGESHED_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailureAbortsWithCondition) {
  EXPECT_DEATH({ EDGESHED_CHECK(false); }, "CHECK failed: false");
}

TEST(CheckDeathTest, FailureIncludesStreamedMessage) {
  EXPECT_DEATH({ EDGESHED_CHECK(false) << "custom context 42"; },
               "custom context 42");
}

TEST(CheckDeathTest, ComparisonMacrosAbort) {
  EXPECT_DEATH({ EDGESHED_CHECK_EQ(1, 2); }, "CHECK failed");
  EXPECT_DEATH({ EDGESHED_CHECK_LT(5, 3); }, "CHECK failed");
}

TEST(CheckTest, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  auto bump = [&calls]() { return ++calls; };
  EDGESHED_CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, DcheckPassesInAnyBuildMode) {
  EDGESHED_DCHECK(true);
  EDGESHED_DCHECK_EQ(1, 1);
  EDGESHED_DCHECK_LE(1, 2);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Burn a little CPU deterministically.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<uint64_t>(i);
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 1e3 * 0.5);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<uint64_t>(i);
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before + 1e-3);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch watch;
  double previous = 0.0;
  for (int i = 0; i < 100; ++i) {
    double now = watch.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

}  // namespace
}  // namespace edgeshed
