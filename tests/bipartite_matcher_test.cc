#include "core/bipartite_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/b_matching.h"
#include "core/bm2.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

TEST(BipartiteGainTest, MatchesLemmaOneFormula) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  // Set up: u7 (id 6) has 1 edge -> dis = -1.8 (group A);
  // u1 (id 0) has 0 edges -> dis = -0.4 (group B).
  d.AddEdge(6, 8);
  const double dis_a = d.Dis(6);
  const double dis_b = d.Dis(0);
  const double expected = std::abs(dis_a) + 2 * std::abs(dis_b) -
                          std::abs(dis_a + 1) - 1;
  EXPECT_NEAR(BipartiteGain(d, 6, 0), expected, 1e-12);
  EXPECT_NEAR(BipartiteGain(d, 6, 0), 1.8 + 0.8 - 0.8 - 1, 1e-12);
}

TEST(BipartiteGainTest, GainEqualsNegativeAdditionDelta) {
  // For a in A (dis <= -0.5 so dis+1 <= 0.5 cases vary) and b in B, the
  // Lemma-1 gain is exactly -(change in Δ) of adding the edge.
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  d.AddEdge(6, 8);
  EXPECT_NEAR(BipartiteGain(d, 6, 0), -d.AdditionDelta(6, 0), 1e-12);
}

/// Reproduces the Phase-2 state of the paper's Example 2, up to the choice
/// of maximal b-matching (our greedy takes (u7,u9),(u8,u9); the figure shows
/// (u7,u9),(u8,u10) — both are maximal with 2 edges).
class PaperExamplePhase2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = PaperExampleGraph();
    discrepancy_ = std::make_unique<DegreeDiscrepancy>(g_, 0.4);
    auto capacities = Bm2::Capacities(g_, 0.4);
    matching_ = GreedyMaximalBMatching(g_, capacities);
    for (graph::EdgeId e : matching_) {
      discrepancy_->AddEdge(g_.edge(e).u, g_.edge(e).v);
    }
  }

  graph::Graph g_;
  std::unique_ptr<DegreeDiscrepancy> discrepancy_;
  std::vector<graph::EdgeId> matching_;
};

TEST_F(PaperExamplePhase2Test, GreedyMatchingState) {
  ASSERT_EQ(matching_.size(), 2u);
  // u7 matched once: dis = 1 - 2.8 = -1.8 (group A).
  EXPECT_NEAR(discrepancy_->Dis(6), -1.8, 1e-12);
  // Leaves unmatched: dis = -0.4 (group B).
  EXPECT_NEAR(discrepancy_->Dis(0), -0.4, 1e-12);
}

TEST_F(PaperExamplePhase2Test, MatcherSelectsTwoHubEdges) {
  // Candidates: the six u7-leaf edges (u7 in A, leaves in B).
  std::vector<BipartiteCandidate> candidates;
  for (graph::NodeId leaf = 0; leaf < 6; ++leaf) {
    graph::EdgeId e = g_.FindEdge(leaf, 6);
    ASSERT_NE(e, graph::kInvalidEdge);
    candidates.push_back({e, 6, leaf});
  }
  auto added = MaxGainBipartiteMatching(candidates, discrepancy_.get());
  // Exactly as Example 2: two leaf edges are added, then u7 leaves group A
  // (dis reaches +0.2 >= -0.5) and everything else dies.
  ASSERT_EQ(added.size(), 2u);
  EXPECT_EQ(added[0], g_.FindEdge(0, 6));
  EXPECT_EQ(added[1], g_.FindEdge(1, 6));
  EXPECT_NEAR(discrepancy_->Dis(6), 0.2, 1e-12);
}

TEST_F(PaperExamplePhase2Test, GainRecomputedAfterFirstPick) {
  std::vector<BipartiteCandidate> candidates;
  for (graph::NodeId leaf = 0; leaf < 6; ++leaf) {
    candidates.push_back({g_.FindEdge(leaf, 6), 6, leaf});
  }
  // Initial gain 0.8 for every candidate; after the first pick dis(u7)
  // becomes -0.8 in (-1, -0.5), so gains refresh to 0.4 (still > 0) and a
  // second pick happens; after that dis(u7) = +0.2 kills the rest.
  const double g0 = BipartiteGain(*discrepancy_, 6, 0);
  EXPECT_NEAR(g0, 0.8, 1e-12);
  auto added = MaxGainBipartiteMatching(candidates, discrepancy_.get());
  EXPECT_EQ(added.size(), 2u);
}

TEST(BipartiteMatcherTest, EmptyCandidates) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  auto added = MaxGainBipartiteMatching({}, &d);
  EXPECT_TRUE(added.empty());
}

TEST(BipartiteMatcherTest, NegativeGainCandidatesAreDropped) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  // No edges added: u7 dis = -2.8 (A), leaf dis = -0.4 (B):
  // gain = 2.8 + 0.8 - 1.8 - 1 = 0.8 > 0. To force a negative gain, use a
  // B-side with tiny |dis|: u8 has expected 0.8; give it one edge so
  // dis(u8) = +0.2 — that is group C, not B, so instead craft via leaf with
  // dis close to 0: impossible here, so verify the >= 0 filter with
  // include_zero_gain = false on a zero-gain candidate.
  // dis(u9) = -1.6; add one edge: dis(u9) = -0.6 in A.
  d.AddEdge(8, 6);
  // gain(u9, leaf u11): |-0.6| + 2*0.4 - |0.4| - 1 = 0.6+0.8-0.4-1 = 0.
  EXPECT_NEAR(BipartiteGain(d, 8, 10), 0.0, 1e-12);
  BipartiteMatcherOptions skip_zero;
  skip_zero.include_zero_gain = false;
  auto e = g.FindEdge(8, 10);
  auto added = MaxGainBipartiteMatching({{e, 8, 10}}, &d, skip_zero);
  EXPECT_TRUE(added.empty());
  // With the default (paper Algorithm 2: gain >= 0) it is taken.
  DegreeDiscrepancy d2(g, 0.4);
  d2.AddEdge(8, 6);
  auto added2 = MaxGainBipartiteMatching({{e, 8, 10}}, &d2);
  EXPECT_EQ(added2.size(), 1u);
}

TEST(BipartiteMatcherTest, BSideUsedAtMostOnce) {
  // Star: center 0 with 9 leaves; p such that center needs many edges.
  auto g = edgeshed::testing::Star(10);
  DegreeDiscrepancy d(g, 0.4);  // center expected 3.6 (A); leaves 0.4 (B)
  std::vector<BipartiteCandidate> candidates;
  for (graph::NodeId leaf = 1; leaf < 10; ++leaf) {
    candidates.push_back({g.FindEdge(0, leaf), 0, leaf});
  }
  auto added = MaxGainBipartiteMatching(candidates, &d);
  // dis(0): -3.6 -> -2.6 -> -1.6 (Lemma-2 region, no updates) -> -0.6;
  // at -0.6 the recomputed gains are exactly 0 (not > 0, Algorithm 3 line
  // 11), so the remaining candidates are dropped after 3 picks.
  EXPECT_EQ(added.size(), 3u);
  EXPECT_NEAR(d.Dis(0), -0.6, 1e-12);
}

TEST(BipartiteMatcherTest, LemmaTwoRegionSkipsGainUpdates) {
  // a-side with dis <= -2 after a pick: gains must remain 2|dis(b)|.
  auto g = edgeshed::testing::Star(12);
  DegreeDiscrepancy d(g, 0.5);  // center expected 5.5; leaves 0.5... leaves
  // dis(leaf) = -0.5 is group A boundary, not B. Use p = 0.4:
  DegreeDiscrepancy d2(g, 0.4);  // center -4.4 (A), leaves -0.4 (B)
  std::vector<BipartiteCandidate> candidates;
  for (graph::NodeId leaf = 1; leaf < 12; ++leaf) {
    candidates.push_back({g.FindEdge(0, leaf), 0, leaf});
  }
  auto added = MaxGainBipartiteMatching(candidates, &d2);
  // Center absorbs edges until dis >= -0.5: from -4.4, five adds = +0.6?
  // -4.4 + 4 = -0.4 >= -0.5 after 4 adds; the 4th pick moves it from -1.4
  // to -0.4, so the matcher stops at 4.
  EXPECT_EQ(added.size(), 4u);
}

TEST(BipartiteMatcherTest, DeterministicTieBreaking) {
  auto g = PaperExampleGraph();
  std::vector<graph::EdgeId> first_result;
  for (int run = 0; run < 3; ++run) {
    DegreeDiscrepancy d(g, 0.4);
    d.AddEdge(6, 8);
    std::vector<BipartiteCandidate> candidates;
    for (graph::NodeId leaf = 0; leaf < 6; ++leaf) {
      candidates.push_back({g.FindEdge(leaf, 6), 6, leaf});
    }
    auto added = MaxGainBipartiteMatching(candidates, &d);
    if (run == 0) {
      first_result = added;
    } else {
      EXPECT_EQ(added, first_result);
    }
  }
}

}  // namespace
}  // namespace edgeshed::core
