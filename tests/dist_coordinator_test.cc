// End-to-end tests for src/dist/coordinator.h against real RpcServers on
// ephemeral loopback ports sharing one shard directory: the load-bearing
// equivalence claims (a K=1 fleet is bit-identical to a single-node shed,
// remote and local execution of the same shard produce the same kept edges),
// the exact global-budget guarantee of the merge, and graceful degradation —
// a dead worker mid-fleet falls back to a local shed instead of failing the
// run.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.h"
#include "common/check.h"
#include "core/shedder_factory.h"
#include "core/shedding.h"
#include "dist/coordinator.h"
#include "dist/partitioner.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/dataset_registry.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "testing/test_graphs.h"

namespace edgeshed::dist {
namespace {

using edgeshed::testing::Clique;
using std::chrono::milliseconds;

/// One fleet worker: store + scheduler + RPC server wired to a shared shard
/// directory, exactly as `edgeshed serve --shard_dir=DIR` wires them.
struct Worker {
  explicit Worker(const std::string& shard_dir) {
    store = std::make_unique<service::GraphStore>(
        service::GraphStoreOptions{}, &metrics);
    service::InstallShardDirFallback(*store, shard_dir);
    service::JobScheduler::Options scheduler_options;
    scheduler_options.workers = 2;
    scheduler = std::make_unique<service::JobScheduler>(
        store.get(), &metrics, scheduler_options);
    net::RpcServerOptions server_options;
    server_options.output_dir = shard_dir;
    server = std::make_unique<net::RpcServer>(store.get(), scheduler.get(),
                                              &metrics, server_options);
    EDGESHED_CHECK(server->Start().ok());
  }

  WorkerAddress address() const { return {"127.0.0.1", server->port()}; }

  obs::MetricsRegistry metrics;
  std::unique_ptr<service::GraphStore> store;
  std::unique_ptr<service::JobScheduler> scheduler;
  std::unique_ptr<net::RpcServer> server;
};

class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    shard_dir_ = ::testing::TempDir() + "/fleet_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    std::filesystem::create_directories(shard_dir_);
  }

  CoordinatorOptions BaseOptions(PartitionerKind kind, int shards) const {
    CoordinatorOptions options;
    options.partition.kind = kind;
    options.partition.shards = shards;
    options.method = "crr";
    options.p = 0.5;
    options.shard_dir = shard_dir_;
    options.poll_interval = milliseconds(5);
    options.client.connect_timeout = milliseconds(500);
    options.client.max_attempts = 2;
    options.client.backoff_initial = milliseconds(5);
    options.client.backoff_max = milliseconds(20);
    return options;
  }

  std::string shard_dir_;
};

/// The same reduction run in-process through the shedder itself.
std::vector<graph::EdgeId> SingleNodeKeptEdges(const graph::Graph& g,
                                               const std::string& method,
                                               double p, uint64_t seed) {
  auto shedder = core::MakeShedderByName(method, seed);
  EDGESHED_CHECK(shedder.ok());
  auto result = (*shedder)->Reduce(g, p);
  EDGESHED_CHECK(result.ok());
  std::vector<graph::EdgeId> kept = result->kept_edges;
  std::sort(kept.begin(), kept.end());
  return kept;
}

TEST_F(CoordinatorTest, SingleShardLocalRunIsBitIdenticalToSingleNode) {
  const graph::Graph g = Clique(40);
  CoordinatorOptions options = BaseOptions(PartitionerKind::kHash, 1);
  ShedCoordinator coordinator(options);
  auto result = coordinator.Run(g);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->kept_edges,
            SingleNodeKeptEdges(g, options.method, options.p, options.seed));
  EXPECT_EQ(result->kept_edges.size(), result->target_edges);
  ASSERT_EQ(result->shards.size(), 1u);
  EXPECT_EQ(result->shards[0].worker, "local");
}

TEST_F(CoordinatorTest, SingleShardRemoteRunIsBitIdenticalToSingleNode) {
  const graph::Graph g = Clique(40);
  Worker worker(shard_dir_);
  CoordinatorOptions options = BaseOptions(PartitionerKind::kHash, 1);
  options.workers = {worker.address()};
  ShedCoordinator coordinator(options);
  auto result = coordinator.Run(g);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->kept_edges,
            SingleNodeKeptEdges(g, options.method, options.p, options.seed));
  ASSERT_EQ(result->shards.size(), 1u);
  EXPECT_TRUE(result->shards[0].remote_ok);
  EXPECT_FALSE(result->shards[0].fell_back);
}

TEST_F(CoordinatorTest, TwoWorkerFleetMeetsTheGlobalBudgetExactly) {
  const graph::Graph g = Clique(40);  // 780 edges
  Worker w1(shard_dir_);
  Worker w2(shard_dir_);
  obs::MetricsRegistry metrics;
  CoordinatorOptions options = BaseOptions(PartitionerKind::kHdrf, 2);
  options.workers = {w1.address(), w2.address()};
  ShedCoordinator coordinator(options, &metrics);
  auto result = coordinator.Run(g);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->kept_edges.size(), result->target_edges);
  EXPECT_EQ(result->target_edges, core::TargetEdgeCount(g, options.p));
  // Duplicate-free and within range (single ownership held through merge).
  for (size_t i = 1; i < result->kept_edges.size(); ++i) {
    ASSERT_LT(result->kept_edges[i - 1], result->kept_edges[i]);
  }
  for (graph::EdgeId e : result->kept_edges) ASSERT_LT(e, g.NumEdges());

  ASSERT_EQ(result->shards.size(), 2u);
  for (const ShardOutcome& shard : result->shards) {
    EXPECT_TRUE(shard.remote_ok);
    EXPECT_EQ(shard.kept_edges, shard.target_edges);
  }
  EXPECT_EQ(metrics.GetCounter("dist.shards_completed")->Value(), 2u);
  EXPECT_EQ(metrics.GetCounter("dist.shards_failed")->Value(), 0u);
  EXPECT_EQ(metrics.GetCounter("dist.fallback_local")->Value(), 0u);
}

TEST_F(CoordinatorTest, RemoteFleetMatchesAllLocalExecutionExactly) {
  // Shedding is deterministic, so where a shard runs must not change what
  // it keeps: a 2-worker fleet and a no-fleet (all-local) coordinator over
  // the same partition produce identical merged edge sets.
  const graph::Graph g = Clique(40);
  Worker w1(shard_dir_);
  Worker w2(shard_dir_);
  CoordinatorOptions remote_options = BaseOptions(PartitionerKind::kDbh, 2);
  remote_options.workers = {w1.address(), w2.address()};
  CoordinatorOptions local_options = BaseOptions(PartitionerKind::kDbh, 2);

  auto remote = ShedCoordinator(remote_options).Run(g);
  auto local = ShedCoordinator(local_options).Run(g);
  ASSERT_TRUE(remote.ok()) << remote.status();
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_EQ(remote->kept_edges, local->kept_edges);
}

TEST_F(CoordinatorTest, DeadWorkerDegradesToLocalFallback) {
  const graph::Graph g = Clique(40);
  Worker alive(shard_dir_);
  Worker doomed(shard_dir_);
  const WorkerAddress dead_address = doomed.address();
  doomed.server->Stop();  // kill one worker before the fleet run

  obs::MetricsRegistry metrics;
  CoordinatorOptions options = BaseOptions(PartitionerKind::kHdrf, 2);
  options.workers = {alive.address(), dead_address};
  ShedCoordinator coordinator(options, &metrics);
  auto result = coordinator.Run(g);
  ASSERT_TRUE(result.ok()) << result.status();

  // Degraded but correct: the budget is still met exactly and the result
  // matches an all-local run (fallback sheds the same shard the same way).
  EXPECT_EQ(result->kept_edges.size(), result->target_edges);
  auto all_local = ShedCoordinator(BaseOptions(PartitionerKind::kHdrf, 2))
                       .Run(g);
  ASSERT_TRUE(all_local.ok());
  EXPECT_EQ(result->kept_edges, all_local->kept_edges);

  int fell_back = 0;
  for (const ShardOutcome& shard : result->shards) {
    if (shard.fell_back) {
      ++fell_back;
      EXPECT_FALSE(shard.remote_error.empty());
      EXPECT_EQ(shard.worker, "local");
    }
  }
  EXPECT_EQ(fell_back, 1);
  EXPECT_EQ(metrics.GetCounter("dist.fallback_local")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("dist.shards_completed")->Value(), 2u);
}

TEST_F(CoordinatorTest, DeadWorkerFailsTheRunWhenFallbackIsDisabled) {
  const graph::Graph g = Clique(40);
  Worker alive(shard_dir_);
  Worker doomed(shard_dir_);
  const WorkerAddress dead_address = doomed.address();
  doomed.server->Stop();

  CoordinatorOptions options = BaseOptions(PartitionerKind::kHdrf, 2);
  options.workers = {alive.address(), dead_address};
  options.local_fallback = false;
  ShedCoordinator coordinator(options);
  auto result = coordinator.Run(g);
  EXPECT_FALSE(result.ok());
}

TEST_F(CoordinatorTest, PreTrippedTokenCancelsTheRun) {
  const graph::Graph g = Clique(40);
  CancellationToken token;
  token.Cancel();
  CoordinatorOptions options = BaseOptions(PartitionerKind::kHash, 2);
  options.cancel = &token;
  ShedCoordinator coordinator(options);
  auto result = coordinator.Run(g);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(CoordinatorTest, ValidatesOptionsUpFront) {
  const graph::Graph g = Clique(10);
  {
    CoordinatorOptions options = BaseOptions(PartitionerKind::kHash, 2);
    options.shard_dir.clear();
    EXPECT_EQ(ShedCoordinator(options).Run(g).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    CoordinatorOptions options = BaseOptions(PartitionerKind::kHash, 2);
    options.method = "no-such-method";
    EXPECT_EQ(ShedCoordinator(options).Run(g).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    CoordinatorOptions options = BaseOptions(PartitionerKind::kHash, 2);
    options.job_tag = "../escape";
    EXPECT_EQ(ShedCoordinator(options).Run(g).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    CoordinatorOptions options = BaseOptions(PartitionerKind::kHash, 2);
    options.p = 1.5;
    EXPECT_EQ(ShedCoordinator(options).Run(g).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(ParseWorkerListTest, ParsesHostPortLists) {
  auto workers = ParseWorkerList("127.0.0.1:9000,example.org:80");
  ASSERT_TRUE(workers.ok());
  ASSERT_EQ(workers->size(), 2u);
  EXPECT_EQ((*workers)[0].host, "127.0.0.1");
  EXPECT_EQ((*workers)[0].port, 9000);
  EXPECT_EQ((*workers)[1].host, "example.org");
  EXPECT_EQ((*workers)[1].port, 80);
}

TEST(ParseWorkerListTest, EmptyStringIsAnEmptyFleet) {
  auto workers = ParseWorkerList("");
  ASSERT_TRUE(workers.ok());
  EXPECT_TRUE(workers->empty());
}

TEST(ParseWorkerListTest, RejectsMalformedEntries) {
  for (const char* bad : {"localhost", ":9000", "host:", "host:0",
                          "host:65536", "host:12x4", "a:1,,b:2"}) {
    EXPECT_FALSE(ParseWorkerList(bad).ok()) << bad;
  }
}

}  // namespace
}  // namespace edgeshed::dist
