#include "graph/datasets.h"

#include <gtest/gtest.h>

#include <cmath>

namespace edgeshed::graph {
namespace {

TEST(DatasetsTest, SpecsMatchPaperTable2) {
  const DatasetSpec& grqc = GetDatasetSpec(DatasetId::kCaGrQc);
  EXPECT_EQ(grqc.name, "ca-GrQc");
  EXPECT_EQ(grqc.paper_nodes, 5242u);
  EXPECT_EQ(grqc.paper_edges, 14496u);

  const DatasetSpec& hepph = GetDatasetSpec(DatasetId::kCaHepPh);
  EXPECT_EQ(hepph.paper_nodes, 12008u);
  EXPECT_EQ(hepph.paper_edges, 118521u);

  const DatasetSpec& enron = GetDatasetSpec(DatasetId::kEmailEnron);
  EXPECT_EQ(enron.paper_nodes, 36692u);
  EXPECT_EQ(enron.paper_edges, 183831u);

  const DatasetSpec& lj = GetDatasetSpec(DatasetId::kComLiveJournal);
  EXPECT_EQ(lj.paper_nodes, 3997962u);
  EXPECT_EQ(lj.paper_edges, 34681189u);
}

TEST(DatasetsTest, AllAndSmallLists) {
  EXPECT_EQ(AllDatasets().size(), 4u);
  EXPECT_EQ(SmallDatasets().size(), 3u);
}

TEST(DatasetsTest, GrQcSurrogateMatchesScale) {
  Graph g = MakeDataset(DatasetId::kCaGrQc);
  EXPECT_EQ(g.NumNodes(), 5242u);
  // PowerlawCluster(m=3): about 3 edges per node.
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), 14496.0, 14496.0 * 0.15);
}

TEST(DatasetsTest, HepPhSurrogateDenser) {
  DatasetOptions options;
  options.scale = 0.5;  // half size for test speed
  Graph g = MakeDataset(DatasetId::kCaHepPh, options);
  EXPECT_EQ(g.NumNodes(), 6004u);
  EXPECT_GT(g.AverageDegree(), 15.0);
}

TEST(DatasetsTest, EnronSurrogateAverageDegree) {
  DatasetOptions options;
  options.scale = 0.25;
  Graph g = MakeDataset(DatasetId::kEmailEnron, options);
  // BA(m=5): average degree about 10, matching Table II's 2|E|/|V|.
  EXPECT_NEAR(g.AverageDegree(), 10.0, 1.0);
}

TEST(DatasetsTest, LiveJournalSurrogateIsPowerOfTwo) {
  DatasetOptions options;
  options.scale = 0.01;  // ~40k nodes -> nearest power of two
  Graph g = MakeDataset(DatasetId::kComLiveJournal, options);
  EXPECT_NE(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumNodes() & (g.NumNodes() - 1), 0u);
}

TEST(DatasetsTest, ScaleShrinksGraphs) {
  DatasetOptions small;
  small.scale = 0.1;
  Graph g_small = MakeDataset(DatasetId::kCaGrQc, small);
  Graph g_full = MakeDataset(DatasetId::kCaGrQc);
  EXPECT_LT(g_small.NumNodes(), g_full.NumNodes());
}

TEST(DatasetsTest, DeterministicForFixedSeed) {
  Graph a = MakeDataset(DatasetId::kCaGrQc);
  Graph b = MakeDataset(DatasetId::kCaGrQc);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  DatasetOptions other;
  other.seed = 1;
  Graph a = MakeDataset(DatasetId::kCaGrQc);
  Graph b = MakeDataset(DatasetId::kCaGrQc, other);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(DatasetsTest, MakeDatasetOrLoadFallsBack) {
  DatasetOptions options;
  options.scale = 0.05;
  Graph g = MakeDatasetOrLoad(DatasetId::kCaGrQc, "/no/such/file.txt",
                              options);
  EXPECT_GT(g.NumNodes(), 0u);
}

}  // namespace
}  // namespace edgeshed::graph
