#include "common/cancellation.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/uds.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "core/extra_baselines.h"
#include "core/random_shedding.h"
#include "graph/generators/generators.h"

namespace edgeshed {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// CancellationToken unit behavior

TEST(CancellationTokenTest, DefaultTokenNeverTriggers) {
  CancellationToken token;
  EXPECT_FALSE(token.Triggered());
  EXPECT_TRUE(token.ToStatus().ok());
  EXPECT_FALSE(CancellationRequested(&token));
  EXPECT_FALSE(CancellationRequested(nullptr));
}

TEST(CancellationTokenTest, CancelTrips) {
  CancellationToken token;
  token.Cancel();
  EXPECT_TRUE(token.Triggered());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
  EXPECT_TRUE(CancellationRequested(&token));
}

TEST(CancellationTokenTest, PastDeadlineTripsAsDeadlineExceeded) {
  CancellationToken token(Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(token.Triggered());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, FutureDeadlineDoesNotTrigger) {
  CancellationToken token(Clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(token.Triggered());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancellationTokenTest, MaxDeadlineMeansNone) {
  CancellationToken token(Clock::time_point::max());
  EXPECT_FALSE(token.Triggered());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancellationTokenTest, DeadlineLatchesOnceObserved) {
  CancellationToken token(Clock::now());
  // First observation latches; every later observation reports triggered
  // without consulting the clock again.
  EXPECT_TRUE(token.Triggered());
  EXPECT_TRUE(token.Triggered());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, CancelWinsOverDeadlineInStatus) {
  CancellationToken token(Clock::now() - std::chrono::milliseconds(1));
  token.Cancel();
  EXPECT_TRUE(token.Triggered());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Kernel plumbing: a pre-tripped token aborts every shedder up front.

graph::Graph SmallTestGraph() {
  Rng rng(7);
  return graph::BarabasiAlbert(400, 4, rng);
}

TEST(KernelCancellationTest, PreCancelledTokenAbortsEveryShedder) {
  const graph::Graph g = SmallTestGraph();
  CancellationToken token;
  token.Cancel();

  EXPECT_EQ(core::Crr().Reduce(g, 0.5, &token).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(core::Bm2().Reduce(g, 0.5, &token).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(core::RandomShedding().Reduce(g, 0.5, &token).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(core::LocalDegreeShedding().Reduce(g, 0.5, &token)
                .status()
                .code(),
            StatusCode::kCancelled);
  EXPECT_EQ(core::SpanningForestShedding().Reduce(g, 0.5, &token)
                .status()
                .code(),
            StatusCode::kCancelled);
  EXPECT_EQ(baseline::Uds().Summarize(g, 0.5, &token).status().code(),
            StatusCode::kCancelled);
}

TEST(KernelCancellationTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  const graph::Graph g = SmallTestGraph();
  CancellationToken token(Clock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(core::Crr().Reduce(g, 0.5, &token).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(baseline::Uds().Summarize(g, 0.5, &token).status().code(),
            StatusCode::kDeadlineExceeded);
}

// Acceptance: a deadline interrupts CRR Phase 2 long before an untimed run
// would finish. steps_override below would be tens of seconds of swap
// attempts; the 10 ms deadline must cut that to well under two seconds
// (the bound is generous for slow CI machines — the point is orders of
// magnitude, not precision).
TEST(KernelCancellationTest, DeadlineCutsLongCrrRunShort) {
  Rng rng(11);
  const graph::Graph g = graph::BarabasiAlbert(500, 4, rng);
  core::CrrOptions options;
  options.steps_override = uint64_t{2'000'000'000};
  const core::Crr crr(options);

  CancellationToken token(Clock::now() + std::chrono::milliseconds(10));
  Stopwatch watch;
  auto result = crr.Reduce(g, 0.5, &token);
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 2.0);
}

// ---------------------------------------------------------------------------
// Determinism: an un-tripped token must not perturb a single bit of the
// result, at any thread count. Mirrors ParallelDeterminismTest's env-var
// handling (EDGESHED_THREADS drives DefaultThreadCount).

class CancellationDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* previous = std::getenv("EDGESHED_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
  }

  void TearDown() override {
    if (had_previous_) {
      ::setenv("EDGESHED_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("EDGESHED_THREADS");
    }
  }

  static void SetThreads(const char* value) {
    ::setenv("EDGESHED_THREADS", value, 1);
    ASSERT_EQ(DefaultThreadCount(), std::atoi(value));
  }

  bool had_previous_ = false;
  std::string previous_;
};

TEST_F(CancellationDeterminismTest, UntrippedTokenIsBitIdenticalAcrossThreads) {
  Rng rng(21);
  const graph::Graph g = graph::BarabasiAlbert(1000, 5, rng);
  core::CrrOptions options;
  options.betweenness.exact_node_threshold = 256;
  options.betweenness.sample_sources = 64;
  const core::Crr crr(options);

  std::vector<std::vector<graph::EdgeId>> runs;
  for (const char* threads : {"1", "4"}) {
    SetThreads(threads);
    auto bare = crr.Reduce(g, 0.4);
    ASSERT_TRUE(bare.ok()) << bare.status();
    runs.push_back(bare->kept_edges);

    CancellationToken token(Clock::now() + std::chrono::hours(24));
    auto with_token = crr.Reduce(g, 0.4, &token);
    ASSERT_TRUE(with_token.ok()) << with_token.status();
    runs.push_back(with_token->kept_edges);
  }
  ASSERT_EQ(runs.size(), 4u);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i], runs[0]) << "variant " << i << " diverged";
  }
}

}  // namespace
}  // namespace edgeshed
