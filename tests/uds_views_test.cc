// Tests for the UDS reconstruction views (estimated degree distribution and
// member-pair distance profile) used by the figure benches.

#include <gtest/gtest.h>

#include "baseline/uds.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::baseline {
namespace {

/// Builds a hand-made summary: supernodes {0,1}, {2}, {3,4} over a 5-node
/// base, summary graph a path S0 - S1 - S2.
UdsSummary HandMadeSummary() {
  UdsSummary summary;
  summary.members = {{0, 1}, {2}, {3, 4}};
  summary.supernode_of = {0, 0, 1, 2, 2};
  auto sg = graph::Graph::FromEdges(3, {{0, 1}, {1, 2}});
  EDGESHED_CHECK(sg.ok());
  summary.summary_graph = std::move(sg).value();
  return summary;
}

TEST(UdsEstimatedDegreeTest, ExpectedReconstructionDegrees) {
  UdsSummary summary = HandMadeSummary();
  Histogram h = UdsEstimatedDegreeDistribution(summary);
  // Members of S0 (2 nodes): neighbors = S1 of size 1 -> est 1.
  // Member of S1: neighbors S0 + S2 -> est 4.
  // Members of S2 (2 nodes): neighbors S1 -> est 1.
  EXPECT_EQ(h.CountFor(1), 4u);
  EXPECT_EQ(h.CountFor(4), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(UdsEstimatedDegreeTest, CapFoldsTail) {
  UdsSummary summary = HandMadeSummary();
  Histogram h = UdsEstimatedDegreeDistribution(summary, /*cap=*/2);
  EXPECT_EQ(h.CountFor(2), 1u);  // the est-4 member folds into cap
  EXPECT_EQ(h.CountFor(4), 0u);
}

TEST(UdsDistanceProfileTest, MemberWeightedDistances) {
  UdsSummary summary = HandMadeSummary();
  Histogram profile = UdsDistanceProfile(summary);
  // Ordered pairs:
  //  distance 1: intra-S0 (2), intra-S2 (2), S0-S1 (2*1*2=4... ordered:
  //  each (S,T) BFS visit counts |S||T| per direction: S0->S1 2, S1->S0 2,
  //  S1->S2 2, S2->S1 2) = 2+2+8 = 12.
  //  distance 2: S0->S2 4, S2->S0 4 = 8.
  EXPECT_EQ(profile.CountFor(1), 12u);
  EXPECT_EQ(profile.CountFor(2), 8u);
  EXPECT_EQ(profile.total(), 20u);  // 5*4 ordered pairs
}

TEST(UdsDistanceProfileTest, RealSummaryCoversAllReachablePairs) {
  Rng rng(99);
  auto g = graph::BarabasiAlbert(150, 3, rng);
  auto summary = Uds().Summarize(g, 0.4);
  ASSERT_TRUE(summary.ok());
  Histogram profile = UdsDistanceProfile(*summary);
  // Reconstruction implies every pair of vertices whose supernodes are in
  // one summary component is reachable; at least all ordered pairs inside
  // supernodes of size > 1 appear.
  EXPECT_GT(profile.total(), 0u);
}

TEST(UdsDistanceProfileTest, SingletonSummaryMatchesGraphDistances) {
  // Summary where every vertex is its own supernode and the summary graph
  // equals G: the profile must match the plain distance profile.
  auto g = edgeshed::testing::Path(4);
  UdsSummary summary;
  summary.summary_graph = g;
  for (graph::NodeId u = 0; u < 4; ++u) {
    summary.members.push_back({u});
    summary.supernode_of.push_back(u);
  }
  Histogram profile = UdsDistanceProfile(summary);
  EXPECT_EQ(profile.CountFor(1), 6u);
  EXPECT_EQ(profile.CountFor(2), 4u);
  EXPECT_EQ(profile.CountFor(3), 2u);
}

}  // namespace
}  // namespace edgeshed::baseline
