#include "analytics/kcore.h"

#include <gtest/gtest.h>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;
using ::edgeshed::testing::Star;

TEST(KCoreTest, CliqueCoreness) {
  auto core = CoreDecomposition(Clique(6));
  for (uint32_t c : core) EXPECT_EQ(c, 5u);
  EXPECT_EQ(Degeneracy(Clique(6)), 5u);
}

TEST(KCoreTest, PathIsOneCore) {
  auto core = CoreDecomposition(Path(7));
  for (uint32_t c : core) EXPECT_EQ(c, 1u);
}

TEST(KCoreTest, CycleIsTwoCore) {
  auto core = CoreDecomposition(Cycle(8));
  for (uint32_t c : core) EXPECT_EQ(c, 2u);
}

TEST(KCoreTest, StarIsOneCore) {
  auto core = CoreDecomposition(Star(10));
  for (uint32_t c : core) EXPECT_EQ(c, 1u);
}

TEST(KCoreTest, IsolatedVerticesAreZeroCore) {
  auto g = MustBuild(4, {{0, 1}});
  auto core = CoreDecomposition(g);
  EXPECT_EQ(core[0], 1u);
  EXPECT_EQ(core[1], 1u);
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(core[3], 0u);
}

TEST(KCoreTest, TriangleWithPendant) {
  // Triangle {0,1,2} plus pendant 3 attached to 2: triangle in 2-core,
  // pendant in 1-core.
  auto g = MustBuild(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto core = CoreDecomposition(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
}

TEST(KCoreTest, CliqueWithTail) {
  // K4 {0..3} with tail 3-4-5.
  auto g = MustBuild(6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
                         {3, 4}, {4, 5}});
  auto core = CoreDecomposition(g);
  EXPECT_EQ(core[0], 3u);
  EXPECT_EQ(core[3], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
  EXPECT_EQ(Degeneracy(g), 3u);
}

TEST(KCoreTest, CorenessNeverExceedsDegree) {
  Rng rng(41);
  auto g = graph::BarabasiAlbert(500, 4, rng);
  auto core = CoreDecomposition(g);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(core[u], g.Degree(u));
  }
}

TEST(KCoreTest, CoreSubgraphHasMinDegreeK) {
  // Definition check: within the k-core (vertices with coreness >= k),
  // every vertex has >= k neighbors inside the core.
  Rng rng(42);
  auto g = graph::PowerlawCluster(400, 4, 0.5, rng);
  auto core = CoreDecomposition(g);
  const uint32_t k = Degeneracy(g);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (core[u] < k) continue;
    uint32_t inside = 0;
    for (graph::NodeId v : g.Neighbors(u)) {
      if (core[v] >= k) ++inside;
    }
    EXPECT_GE(inside, k) << "node " << u;
  }
}

TEST(KCoreTest, BarabasiAlbertCoreIsM) {
  // BA(m): every vertex joins with m edges; the graph is exactly m-core
  // (peeling the youngest vertex always finds degree m).
  Rng rng(43);
  auto g = graph::BarabasiAlbert(300, 3, rng);
  EXPECT_EQ(Degeneracy(g), 3u);
}

TEST(KCoreTest, DistributionMassEqualsNodeCount) {
  Rng rng(44);
  auto g = graph::ErdosRenyi(200, 600, rng);
  auto histogram = CorenessDistribution(g);
  EXPECT_EQ(histogram.total(), g.NumNodes());
}

TEST(KCoreTest, EmptyGraph) {
  graph::Graph g;
  EXPECT_TRUE(CoreDecomposition(g).empty());
  EXPECT_EQ(Degeneracy(g), 0u);
}

}  // namespace
}  // namespace edgeshed::analytics
