// Randomized robustness sweeps: long random operation sequences and random
// graph families pushed through every public algorithm, asserting
// invariants rather than exact values. These catch bookkeeping drift and
// degenerate-input crashes that example-based tests miss.

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/assortativity.h"
#include "analytics/betweenness.h"
#include "analytics/clustering.h"
#include "analytics/components.h"
#include "analytics/eigenvector.h"
#include "analytics/kcore.h"
#include "analytics/pagerank.h"
#include "analytics/shortest_paths.h"
#include "core/bm2.h"
#include "core/bounds.h"
#include "core/crr.h"
#include "core/discrepancy.h"
#include "graph/generators/generators.h"
#include "stream/streaming_shedder.h"

namespace edgeshed {
namespace {

TEST(FuzzDiscrepancyTest, LongRandomOperationSequenceStaysConsistent) {
  Rng rng(91);
  graph::Graph g = graph::ErdosRenyi(120, 500, rng);
  core::DegreeDiscrepancy d(g, 0.37);
  // Track which edges are "in" so removals stay legal.
  std::vector<bool> in(g.NumEdges(), false);
  std::vector<graph::EdgeId> current;
  for (int step = 0; step < 20000; ++step) {
    if (!current.empty() && rng.Bernoulli(0.45)) {
      size_t index = rng.UniformIndex(current.size());
      graph::EdgeId e = current[index];
      d.RemoveEdge(g.edge(e).u, g.edge(e).v);
      in[e] = false;
      current[index] = current.back();
      current.pop_back();
    } else {
      graph::EdgeId e =
          static_cast<graph::EdgeId>(rng.UniformU64(g.NumEdges()));
      if (in[e]) continue;
      d.AddEdge(g.edge(e).u, g.edge(e).v);
      in[e] = true;
      current.push_back(e);
    }
    if (step % 4096 == 0) {
      ASSERT_NEAR(d.TotalDelta(), d.RecomputeTotalDelta(), 1e-6)
          << "step " << step;
    }
  }
  EXPECT_NEAR(d.TotalDelta(), d.RecomputeTotalDelta(), 1e-6);
}

TEST(FuzzStreamingTest, RandomStreamsKeepInvariants) {
  Rng rng(92);
  for (int trial = 0; trial < 5; ++trial) {
    const double p = 0.1 + 0.2 * trial;
    stream::StreamingShedder shedder(p);
    const auto n = static_cast<graph::NodeId>(50 + 100 * trial);
    for (int step = 0; step < 3000; ++step) {
      auto u = static_cast<graph::NodeId>(rng.UniformU64(n));
      auto v = static_cast<graph::NodeId>(rng.UniformU64(n));
      shedder.AddEdge(u, v);  // self-loops/duplicates included on purpose
      ASSERT_LE(shedder.kept_edges().size(), shedder.Budget());
    }
    EXPECT_NEAR(shedder.TotalDelta(), shedder.RecomputeTotalDelta(), 1e-6)
        << "p = " << p;
  }
}

class FuzzAnalyticsTest : public ::testing::TestWithParam<int> {
 protected:
  graph::Graph MakeGraph() const {
    Rng rng(1000 + GetParam());
    switch (GetParam() % 5) {
      case 0:
        return graph::ErdosRenyi(150, 40, rng);  // very sparse, fragmented
      case 1:
        return graph::BarabasiAlbert(150, 2, rng);
      case 2:
        return graph::WattsStrogatz(150, 4, 0.5, rng);
      case 3:
        return graph::PlantedPartition(150, 5, 0.2, 0.01, rng);
      default:
        return graph::RMat(7, 4, 0.6, 0.15, 0.15, rng);
    }
  }
};

TEST_P(FuzzAnalyticsTest, AllAnalyticsSatisfyBasicInvariants) {
  graph::Graph g = MakeGraph();

  auto components = analytics::ConnectedComponents(g);
  uint64_t total = 0;
  for (uint64_t size : components.sizes) total += size;
  EXPECT_EQ(total, g.NumNodes());

  auto pagerank = analytics::PageRank(g);
  double pr_sum = 0.0;
  for (double s : pagerank) {
    EXPECT_GE(s, 0.0);
    pr_sum += s;
  }
  EXPECT_NEAR(pr_sum, 1.0, 1e-6);

  auto core = analytics::CoreDecomposition(g);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(core[u], g.Degree(u));
  }

  auto clustering = analytics::LocalClusteringCoefficients(g);
  for (double c : clustering) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
  }

  const double r = analytics::DegreeAssortativity(g);
  EXPECT_GE(r, -1.0 - 1e-9);
  EXPECT_LE(r, 1.0 + 1e-9);

  auto eigen = analytics::EigenvectorCentrality(g);
  for (double s : eigen) EXPECT_GE(s, -1e-12);

  auto scores = analytics::Betweenness(g, analytics::BetweennessOptions::Exact());
  for (double s : scores.node) EXPECT_GE(s, -1e-9);
  for (double s : scores.edge) EXPECT_GE(s, -1e-9);

  auto profile = analytics::DistanceProfile(g);
  double previous = 0.0;
  for (int64_t k = 0; k <= 20; ++k) {
    double f = analytics::HopPlotFraction(profile, k);
    EXPECT_GE(f, previous - 1e-12);
    previous = f;
  }
}

TEST_P(FuzzAnalyticsTest, SheddersMeetBoundsOnEveryFamily) {
  graph::Graph g = MakeGraph();
  if (g.NumEdges() < 10) return;
  for (double p : {0.25, 0.75}) {
    auto crr = core::Crr().Reduce(g, p);
    auto bm2 = core::Bm2().Reduce(g, p);
    ASSERT_TRUE(crr.ok());
    ASSERT_TRUE(bm2.ok());
    EXPECT_LT(crr->average_delta, core::CrrAverageDeltaBound(g, p));
    EXPECT_LT(bm2->average_delta, core::Bm2AverageDeltaBound(g, p));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FuzzAnalyticsTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace edgeshed
