#include <gtest/gtest.h>

#include <numeric>

#include "analytics/degree.h"
#include "graph/generators/generators.h"

namespace edgeshed::graph {
namespace {

TEST(ConfigurationModelTest, RegularSequenceRealizedExactly) {
  Rng rng(61);
  std::vector<uint32_t> degrees(100, 4);
  Graph g = ConfigurationModel(degrees, rng);
  EXPECT_EQ(g.NumNodes(), 100u);
  // Stub matching with rejection realizes regular sequences near-exactly.
  uint64_t shortfall = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(g.Degree(u), 4u);
    shortfall += 4 - g.Degree(u);
  }
  EXPECT_LE(shortfall, 8u);
}

TEST(ConfigurationModelTest, DegreesNeverExceedRequested) {
  Rng rng(62);
  std::vector<uint32_t> degrees;
  for (int i = 0; i < 200; ++i) degrees.push_back(1 + i % 7);
  Graph g = ConfigurationModel(degrees, rng);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(g.Degree(u), degrees[u]) << "node " << u;
  }
}

TEST(ConfigurationModelTest, TotalDegreeNearTarget) {
  Rng rng(63);
  std::vector<uint32_t> degrees(300);
  for (size_t i = 0; i < degrees.size(); ++i) {
    degrees[i] = 2 + static_cast<uint32_t>(i % 5);
  }
  const uint64_t target =
      std::accumulate(degrees.begin(), degrees.end(), uint64_t{0});
  Graph g = ConfigurationModel(degrees, rng);
  EXPECT_GE(g.TotalDegree(), target * 95 / 100);
}

TEST(ConfigurationModelTest, ZeroDegreesStayIsolated) {
  Rng rng(64);
  std::vector<uint32_t> degrees{3, 3, 3, 3, 0, 0};
  Graph g = ConfigurationModel(degrees, rng);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.Degree(5), 0u);
}

TEST(ConfigurationModelTest, EmptySequence) {
  Rng rng(65);
  Graph g = ConfigurationModel({}, rng);
  EXPECT_EQ(g.NumNodes(), 0u);
}

TEST(ConfigurationModelTest, SimpleGraphGuaranteed) {
  Rng rng(66);
  std::vector<uint32_t> degrees(50, 6);
  Graph g = ConfigurationModel(degrees, rng);
  // Graph::FromEdges (via the builder) guarantees no loops/duplicates;
  // spot-check canonical form.
  for (const Edge& e : g.edges()) EXPECT_LT(e.u, e.v);
}

TEST(ChungLuTest, ExpectedDegreesMatchWeights) {
  Rng rng(67);
  std::vector<double> weights(1000, 8.0);
  Graph g = ChungLu(weights, rng);
  // Expected degree 8 per node (up to the min(1, .) clamp, inactive here).
  EXPECT_NEAR(g.AverageDegree(), 8.0, 0.8);
}

TEST(ChungLuTest, HeterogeneousWeights) {
  Rng rng(68);
  std::vector<double> weights(500, 2.0);
  for (int i = 0; i < 10; ++i) weights[i] = 50.0;
  Graph g = ChungLu(weights, rng);
  double hub_mean = 0;
  for (int i = 0; i < 10; ++i) hub_mean += static_cast<double>(g.Degree(i));
  hub_mean /= 10;
  double leaf_mean = 0;
  for (int i = 10; i < 500; ++i) {
    leaf_mean += static_cast<double>(g.Degree(i));
  }
  leaf_mean /= 490;
  EXPECT_GT(hub_mean, 5 * leaf_mean);
}

TEST(ChungLuTest, ZeroWeightsGiveEmptyGraph) {
  Rng rng(69);
  Graph g = ChungLu(std::vector<double>(20, 0.0), rng);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumNodes(), 20u);
}

TEST(ChungLuTest, DeterministicGivenSeed) {
  std::vector<double> weights(200, 5.0);
  Rng rng1(70);
  Rng rng2(70);
  EXPECT_EQ(ChungLu(weights, rng1).edges(), ChungLu(weights, rng2).edges());
}

TEST(ChungLuTest, MatchesDegreeSequenceOfRealGraph) {
  // Null-model workflow: take a BA graph's degrees as Chung-Lu weights;
  // the sample's degree distribution should be close in KS distance.
  Rng rng(71);
  Graph original = BarabasiAlbert(1500, 4, rng);
  std::vector<double> weights(original.NumNodes());
  for (NodeId u = 0; u < original.NumNodes(); ++u) {
    weights[u] = static_cast<double>(original.Degree(u));
  }
  Graph null_model = ChungLu(weights, rng);
  auto h1 = analytics::DegreeDistribution(original);
  auto h2 = analytics::DegreeDistribution(null_model);
  // Chung-Lu matches degrees in expectation only (per-vertex Poisson
  // spread), so the sample's distribution is close but not identical —
  // e.g. BA's hard minimum degree m smears downward.
  EXPECT_LT(Histogram::KsDistance(h1, h2), 0.3);
}

}  // namespace
}  // namespace edgeshed::graph
