#include "core/discrepancy.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::PaperExampleGraph;
using ::edgeshed::testing::Star;

TEST(DiscrepancyTest, InitialStateIsEmptyReducedGraph) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  // dis(u) = -p * deg(u); Δ = 2p|E| = 2 * 0.4 * 11 = 8.8.
  EXPECT_NEAR(d.TotalDelta(), 8.8, 1e-12);
  EXPECT_NEAR(d.Dis(6), -2.8, 1e-12);   // u7
  EXPECT_NEAR(d.Dis(8), -1.6, 1e-12);   // u9
  EXPECT_NEAR(d.Dis(0), -0.4, 1e-12);   // leaf
  EXPECT_EQ(d.ReducedDegree(6), 0u);
}

TEST(DiscrepancyTest, ExpectedDegreeMatchesEquationOne) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_NEAR(d.ExpectedDegree(u), 0.4 * static_cast<double>(g.Degree(u)),
                1e-12);
  }
}

TEST(DiscrepancyTest, AddEdgeUpdatesBothEndpoints) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  d.AddEdge(6, 8);  // u7 - u9
  EXPECT_EQ(d.ReducedDegree(6), 1u);
  EXPECT_EQ(d.ReducedDegree(8), 1u);
  EXPECT_NEAR(d.Dis(6), -1.8, 1e-12);
  EXPECT_NEAR(d.Dis(8), -0.6, 1e-12);
  // Δ dropped by 2 (both below expectation).
  EXPECT_NEAR(d.TotalDelta(), 6.8, 1e-12);
}

TEST(DiscrepancyTest, RemoveEdgeInverts) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  d.AddEdge(6, 8);
  d.RemoveEdge(6, 8);
  EXPECT_NEAR(d.TotalDelta(), 8.8, 1e-12);
  EXPECT_EQ(d.ReducedDegree(6), 0u);
}

TEST(DiscrepancyTest, AdditionDeltaMatchesAppliedChange) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  d.AddEdge(6, 8);
  const double predicted = d.AdditionDelta(0, 6);
  const double before = d.TotalDelta();
  d.AddEdge(0, 6);
  EXPECT_NEAR(d.TotalDelta(), before + predicted, 1e-12);
}

TEST(DiscrepancyTest, RemovalDeltaMatchesAppliedChange) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  d.AddEdge(6, 8);
  d.AddEdge(0, 6);
  const double predicted = d.RemovalDelta(0, 6);
  const double before = d.TotalDelta();
  d.RemoveEdge(0, 6);
  EXPECT_NEAR(d.TotalDelta(), before + predicted, 1e-12);
}

TEST(DiscrepancyTest, OvershootIncreasesDelta) {
  auto g = Star(4);  // center degree 3, leaves 1
  DegreeDiscrepancy d(g, 0.5);
  // Leaf expected degree 0.5; adding one edge overshoots to +0.5.
  d.AddEdge(0, 1);
  EXPECT_NEAR(d.Dis(1), 0.5, 1e-12);
  const double before = d.TotalDelta();
  // Adding another edge at node 1 is impossible in a star (simple graph);
  // but at the center more additions still reduce while below 1.5.
  d.AddEdge(0, 2);
  EXPECT_LT(d.TotalDelta(), before + 2.0);
}

TEST(DiscrepancyTest, IncrementalMatchesRecompute) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.3);
  d.AddEdge(6, 8);
  d.AddEdge(0, 6);
  d.AddEdge(7, 9);
  d.RemoveEdge(0, 6);
  d.AddEdge(8, 10);
  EXPECT_NEAR(d.TotalDelta(), d.RecomputeTotalDelta(), 1e-9);
}

TEST(DiscrepancyTest, AverageDelta) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.4);
  EXPECT_NEAR(d.AverageDelta(), 8.8 / 11.0, 1e-12);
}

TEST(DiscrepancyDeathTest, RejectsInvalidRatio) {
  auto g = PaperExampleGraph();
  EXPECT_DEATH({ DegreeDiscrepancy d(g, 0.0); }, "");
  EXPECT_DEATH({ DegreeDiscrepancy d(g, 1.0); }, "");
  EXPECT_DEATH({ DegreeDiscrepancy d(g, -0.5); }, "");
}

TEST(DiscrepancyTest, ManyOperationsStayConsistent) {
  auto g = PaperExampleGraph();
  DegreeDiscrepancy d(g, 0.7);
  for (int round = 0; round < 100; ++round) {
    for (const graph::Edge& e : g.edges()) d.AddEdge(e.u, e.v);
    for (const graph::Edge& e : g.edges()) d.RemoveEdge(e.u, e.v);
  }
  EXPECT_NEAR(d.TotalDelta(), d.RecomputeTotalDelta(), 1e-7);
  EXPECT_NEAR(d.TotalDelta(), 2 * 0.7 * 11, 1e-7);
}

}  // namespace
}  // namespace edgeshed::core
