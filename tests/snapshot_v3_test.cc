#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/crr.h"
#include "graph/binary_io.h"
#include "graph/edge_list_io.h"
#include "graph/generators/generators.h"
#include "graph/snapshot_format.h"
#include "testing/test_graphs.h"

namespace edgeshed::graph {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class SnapshotV3Test : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  /// A saved v3 snapshot of the paper graph, with original ids.
  std::string SavedPaperSnapshot(const std::string& name,
                                 SnapshotOptions options = {}) {
    const std::string path = TempPath(name);
    const Graph g = PaperExampleGraph();
    std::vector<uint64_t> ids(g.NumNodes());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = 100 + i;
    options.original_ids = ids;
    EXPECT_TRUE(SaveBinaryGraph(g, path, options).ok());
    return path;
  }
};

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_TRUE(std::equal(a.RawOffsets().begin(), a.RawOffsets().end(),
                         b.RawOffsets().begin(), b.RawOffsets().end()));
  EXPECT_TRUE(std::equal(a.RawAdjacency().begin(), a.RawAdjacency().end(),
                         b.RawAdjacency().begin(), b.RawAdjacency().end()));
  EXPECT_TRUE(std::equal(a.RawIncident().begin(), a.RawIncident().end(),
                         b.RawIncident().begin(), b.RawIncident().end()));
}

TEST_F(SnapshotV3Test, MmapRoundTripPreservesEverything) {
  const Graph g = PaperExampleGraph();
  const std::string path = SavedPaperSnapshot("paper.es3");
  IngestOptions mmap_options;
  mmap_options.mmap = true;
  auto loaded = LoadSnapshot(path, mmap_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->graph.IsMapped());
  ExpectSameGraph(loaded->graph, g);
  ASSERT_EQ(loaded->original_ids.size(), g.NumNodes());
  EXPECT_EQ(loaded->original_ids[0], 100u);
  EXPECT_EQ(loaded->original_ids[10], 110u);
}

TEST_F(SnapshotV3Test, CopyRoundTripPreservesEverything) {
  const Graph g = PaperExampleGraph();
  const std::string path = SavedPaperSnapshot("paper_copy.es3");
  IngestOptions copy_options;
  copy_options.mmap = false;
  auto loaded = LoadSnapshot(path, copy_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->graph.IsMapped());
  ExpectSameGraph(loaded->graph, g);
}

TEST_F(SnapshotV3Test, MappedGraphOutlivesOtherHandles) {
  const std::string path = SavedPaperSnapshot("keepalive.es3");
  Graph g;
  {
    auto loaded = LoadSnapshot(path);
    ASSERT_TRUE(loaded.ok());
    g = loaded->graph;  // copy shares the mapping keep-alive
  }
  EXPECT_TRUE(g.IsMapped());
  EXPECT_EQ(g.NumEdges(), 11u);
  EXPECT_EQ(g.Degree(0), g.Neighbors(0).size());
}

TEST_F(SnapshotV3Test, MmapAndCopyShedIdentically) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(400, 3, rng);
  const std::string path = TempPath("shed.es3");
  ASSERT_TRUE(SaveBinaryGraph(g, path, SnapshotOptions{}).ok());
  IngestOptions mmap_options;
  IngestOptions copy_options;
  copy_options.mmap = false;
  auto mapped = LoadSnapshot(path, mmap_options);
  auto copied = LoadSnapshot(path, copy_options);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(copied.ok());
  ASSERT_TRUE(mapped->graph.IsMapped());
  ASSERT_FALSE(copied->graph.IsMapped());
  core::Crr crr;
  auto from_mapped = crr.Reduce(mapped->graph, 0.5);
  auto from_copied = crr.Reduce(copied->graph, 0.5);
  ASSERT_TRUE(from_mapped.ok());
  ASSERT_TRUE(from_copied.ok());
  EXPECT_EQ(from_mapped->kept_edges, from_copied->kept_edges);
}

TEST_F(SnapshotV3Test, SaveIsDeterministic) {
  Rng rng(11);
  const Graph g = ErdosRenyi(500, 2000, rng);
  const std::string a = TempPath("det_a.es3");
  const std::string b = TempPath("det_b.es3");
  ASSERT_TRUE(SaveBinaryGraph(g, a, SnapshotOptions{}).ok());
  ASSERT_TRUE(SaveBinaryGraph(g, b, SnapshotOptions{}).ok());
  EXPECT_EQ(ReadFile(a), ReadFile(b));
}

TEST_F(SnapshotV3Test, EmptyGraphRoundTrips) {
  const Graph g;
  const std::string path = TempPath("empty.es3");
  ASSERT_TRUE(SaveBinaryGraph(g, path, SnapshotOptions{}).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumNodes(), 0u);
  EXPECT_EQ(loaded->graph.NumEdges(), 0u);
}

TEST_F(SnapshotV3Test, UnusualAlignmentAndChunkSizesRoundTrip) {
  Rng rng(3);
  const Graph g = ErdosRenyi(300, 1500, rng);
  for (const uint64_t align : {uint64_t{8}, uint64_t{64}, uint64_t{65536}}) {
    SnapshotOptions options;
    options.page_align = align;
    options.chunk_bytes = 4096;
    const std::string path =
        TempPath("align" + std::to_string(align) + ".es3");
    ASSERT_TRUE(SaveBinaryGraph(g, path, options).ok());
    auto loaded = LoadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << "align=" << align << ": "
                             << loaded.status().ToString();
    ExpectSameGraph(loaded->graph, g);
  }
}

TEST_F(SnapshotV3Test, RejectsUnsupportedVersion) {
  SnapshotOptions options;
  options.version = 7;
  const Graph g = PaperExampleGraph();
  const Status s = SaveBinaryGraph(g, TempPath("v7.es3"), options);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotV3Test, BareSaveStillWritesV2) {
  const Graph g = PaperExampleGraph();
  const std::string path = TempPath("compat.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "EDGSHED2");
}

// --- Corrupt-file corpus: exact status codes, pinned by ISSUE.md. ---

TEST_F(SnapshotV3Test, TruncatedHeaderIsInvalidArgument) {
  const std::string path = SavedPaperSnapshot("trunc.es3");
  const std::string bytes = ReadFile(path);
  for (const size_t keep : {size_t{0}, size_t{4}, size_t{8}, size_t{60},
                            size_t{123}}) {
    const std::string cut = TempPath("trunc_cut.es3");
    WriteFile(cut, bytes.substr(0, keep));
    auto loaded = LoadSnapshot(cut);
    ASSERT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "keep=" << keep << ": " << loaded.status().ToString();
  }
}

TEST_F(SnapshotV3Test, TruncatedDataRegionIsInvalidArgument) {
  const std::string path = SavedPaperSnapshot("trunc_data.es3");
  const std::string bytes = ReadFile(path);
  const std::string cut = TempPath("trunc_data_cut.es3");
  WriteFile(cut, bytes.substr(0, bytes.size() - 100));
  auto loaded = LoadSnapshot(cut);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotV3Test, FlippedDataByteIsDataLossNamingTheChunk) {
  const std::string path = SavedPaperSnapshot("flip.es3");
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 1] ^= 0x40;  // inside the last data chunk
  const std::string bad = TempPath("flip_bad.es3");
  WriteFile(bad, bytes);
  auto loaded = LoadSnapshot(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("chunk"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotV3Test, FlippedHeaderCrcIsDataLoss) {
  const std::string path = SavedPaperSnapshot("hdrcrc.es3");
  std::string bytes = ReadFile(path);
  // The num_chunks field feeds the header CRC but passes every sanity
  // bound, so flipping a chunk CRC entry right after it trips the CRC.
  bytes[kSnapshotChunkCountOffset + 4] ^= 0x01;
  const std::string bad = TempPath("hdrcrc_bad.es3");
  WriteFile(bad, bytes);
  auto loaded = LoadSnapshot(bad);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
      << loaded.status().ToString();
}

TEST_F(SnapshotV3Test, BadAlignmentFieldIsInvalidArgumentNotCrcError) {
  const std::string path = SavedPaperSnapshot("badalign.es3");
  std::string bytes = ReadFile(path);
  bytes[24] = 0x03;  // page_align = 3: not a power of two
  const std::string bad = TempPath("badalign_bad.es3");
  WriteFile(bad, bytes);
  auto loaded = LoadSnapshot(bad);
  ASSERT_FALSE(loaded.ok());
  // Field sanity is checked before the header CRC, so the report names the
  // nonsense field instead of a generic checksum mismatch.
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("page_align"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotV3Test, SkippingVerificationLoadsFlippedDataByte) {
  const std::string path = SavedPaperSnapshot("noverify.es3");
  std::string bytes = ReadFile(path);
  bytes[bytes.size() - 1] ^= 0x40;  // original_ids payload, not structure
  const std::string bad = TempPath("noverify_bad.es3");
  WriteFile(bad, bytes);
  IngestOptions trusting;
  trusting.verify_checksums = false;
  auto loaded = LoadSnapshot(bad, trusting);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(SnapshotV3Test, TextParserRejectsV3SnapshotNamingTheMagic) {
  const std::string path = SavedPaperSnapshot("astext.es3");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("EDGSHED3"), std::string::npos)
      << loaded.status().ToString();
  // Not reported as a line-1 parse failure.
  EXPECT_EQ(loaded.status().message().find("expected 'src dst'"),
            std::string::npos);
}

TEST_F(SnapshotV3Test, LoadSnapshotRejectsTextFile) {
  const std::string path = TempPath("plain.txt");
  WriteFile(path, "0 1\n1 2\n");
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotV3Test, CancelledLoadReturnsCancelled) {
  const std::string path = SavedPaperSnapshot("cancel.es3");
  CancellationToken token;
  token.Cancel();
  IngestOptions options;
  options.cancel = &token;
  auto loaded = LoadSnapshot(path, options);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace edgeshed::graph
