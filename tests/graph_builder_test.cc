#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace edgeshed::graph {
namespace {

TEST(GraphBuilderTest, EmptyBuilder) {
  GraphBuilder builder;
  Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphBuilderTest, InfersNodeCount) {
  GraphBuilder builder;
  builder.AddEdge(0, 7);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 8u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, ReserveNodesKeepsIsolatedVertices) {
  GraphBuilder builder;
  builder.ReserveNodes(10);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.Degree(9), 0u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder builder;
  builder.AddEdge(2, 2);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, CollapsesParallelEdges) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, PendingEdgesCountsRawAdds) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  EXPECT_EQ(builder.PendingEdges(), 2u);
}

TEST(GraphBuilderTest, BuilderResetsAfterBuild) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  (void)builder.Build();
  Graph empty = builder.Build();
  EXPECT_EQ(empty.NumNodes(), 0u);
  EXPECT_EQ(empty.NumEdges(), 0u);
}

TEST(GraphBuilderTest, LargerMixedInput) {
  GraphBuilder builder;
  builder.ReserveEdges(16);
  for (NodeId u = 0; u < 8; ++u) {
    builder.AddEdge(u, (u + 1) % 8);   // cycle
    builder.AddEdge((u + 1) % 8, u);   // duplicate reversed
    builder.AddEdge(u, u);             // self-loop
  }
  Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 8u);
  EXPECT_EQ(g.NumEdges(), 8u);
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(g.Degree(u), 2u);
}

}  // namespace
}  // namespace edgeshed::graph
