#include "analytics/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Star;

double Sum(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

TEST(PageRankTest, ScoresSumToOne) {
  auto scores = PageRank(Star(10));
  EXPECT_NEAR(Sum(scores), 1.0, 1e-9);
}

TEST(PageRankTest, SymmetricGraphIsUniform) {
  auto scores = PageRank(Cycle(8));
  for (double s : scores) EXPECT_NEAR(s, 1.0 / 8.0, 1e-9);
}

TEST(PageRankTest, CliqueIsUniform) {
  auto scores = PageRank(Clique(5));
  for (double s : scores) EXPECT_NEAR(s, 0.2, 1e-9);
}

TEST(PageRankTest, StarCenterDominates) {
  auto scores = PageRank(Star(10));
  for (graph::NodeId u = 1; u < 10; ++u) {
    EXPECT_GT(scores[0], scores[u]);
    EXPECT_NEAR(scores[u], scores[1], 1e-12);  // leaves symmetric
  }
}

TEST(PageRankTest, DanglingNodesGetBaseMassOnly) {
  auto g = MustBuild(4, {{0, 1}});
  auto scores = PageRank(g);
  EXPECT_NEAR(Sum(scores), 1.0, 1e-9);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_NEAR(scores[2], scores[3], 1e-12);
}

TEST(PageRankTest, AllIsolatedIsUniform) {
  auto scores = PageRank(MustBuild(5, {}));
  for (double s : scores) EXPECT_NEAR(s, 0.2, 1e-9);
}

TEST(PageRankTest, EmptyGraph) {
  EXPECT_TRUE(PageRank(graph::Graph()).empty());
}

TEST(PageRankTest, HigherDegreeHigherRankOnTree) {
  // Two-level tree: 0 - {1,2,3}, 1 - {4,5}.
  auto g = MustBuild(6, {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 5}});
  auto scores = PageRank(g);
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[1], scores[4]);
}

TEST(PageRankTest, ConvergesUnderLooseTolerance) {
  PageRankOptions options;
  options.tolerance = 1e-3;
  options.max_iterations = 200;
  auto scores = PageRank(Star(50), options);
  EXPECT_NEAR(Sum(scores), 1.0, 1e-6);
}

TEST(TopKIndicesTest, SelectsLargest) {
  std::vector<double> scores{0.1, 0.9, 0.5, 0.7};
  auto top = TopKIndices(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(TopKIndicesTest, TiesBrokenByLowerIndex) {
  std::vector<double> scores{0.5, 0.5, 0.5};
  auto top = TopKIndices(scores, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(TopKIndicesTest, KLargerThanSize) {
  std::vector<double> scores{0.3, 0.1};
  auto top = TopKIndices(scores, 10);
  EXPECT_EQ(top.size(), 2u);
}

}  // namespace
}  // namespace edgeshed::analytics
