#include "eval/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace edgeshed::eval {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "binary");
  std::vector<char*> argv;
  for (auto& arg : storage) argv.push_back(arg.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  auto flags = MakeFlags({"--scale=0.5", "--name=test"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "test");
}

TEST(FlagsTest, SpaceSyntax) {
  auto flags = MakeFlags({"--seed", "42"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
}

TEST(FlagsTest, BareFlagIsTrue) {
  auto flags = MakeFlags({"--full"});
  EXPECT_TRUE(flags.GetBool("full", false));
  EXPECT_TRUE(flags.Has("full"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  auto flags = MakeFlags({});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 2.5), 2.5);
  EXPECT_EQ(flags.GetInt("seed", 7), 7);
  EXPECT_FALSE(flags.GetBool("full", false));
  EXPECT_EQ(flags.GetString("name", "fallback"), "fallback");
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagsTest, ExplicitFalse) {
  auto flags = MakeFlags({"--full=false", "--other=0"});
  EXPECT_FALSE(flags.GetBool("full", true));
  EXPECT_FALSE(flags.GetBool("other", true));
}

TEST(FlagsTest, PositionalArguments) {
  auto flags = MakeFlags({"input.txt", "--scale=2", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, NegativeNumbersViaEquals) {
  auto flags = MakeFlags({"--offset=-3"});
  EXPECT_EQ(flags.GetInt("offset", 0), -3);
}

TEST(FlagsTest, LastValueWins) {
  auto flags = MakeFlags({"--p=0.1", "--p=0.9"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0), 0.9);
}

}  // namespace
}  // namespace edgeshed::eval
