#include "analytics/hyperloglog.h"

#include <gtest/gtest.h>

#include "analytics/approx_neighborhood.h"
#include "analytics/shortest_paths.h"
#include "common/random.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::Path;

uint64_t Hash(uint64_t value) {
  uint64_t state = value;
  return SplitMix64Next(&state);
}

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll(10);
  EXPECT_NEAR(hll.Estimate(), 0.0, 1e-9);
}

TEST(HyperLogLogTest, SmallCardinalityExact) {
  HyperLogLog hll(12);
  for (uint64_t i = 0; i < 100; ++i) hll.AddHashed(Hash(i));
  // Linear-counting regime: near-exact for small sets.
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(10);
  for (int round = 0; round < 50; ++round) {
    for (uint64_t i = 0; i < 20; ++i) hll.AddHashed(Hash(i));
  }
  EXPECT_NEAR(hll.Estimate(), 20.0, 3.0);
}

TEST(HyperLogLogTest, LargeCardinalityWithinErrorBound) {
  HyperLogLog hll(12);  // ~1.6% standard error
  constexpr uint64_t kN = 200000;
  for (uint64_t i = 0; i < kN; ++i) hll.AddHashed(Hash(i));
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(kN), kN * 0.06);
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(11);
  HyperLogLog b(11);
  HyperLogLog direct(11);
  for (uint64_t i = 0; i < 5000; ++i) {
    a.AddHashed(Hash(i));
    direct.AddHashed(Hash(i));
  }
  for (uint64_t i = 2500; i < 7500; ++i) {
    b.AddHashed(Hash(i));
    direct.AddHashed(Hash(i));
  }
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), direct.Estimate(), 1e-9);
}

TEST(HyperLogLogTest, MergeReportsChange) {
  HyperLogLog a(10);
  HyperLogLog b(10);
  b.AddHashed(Hash(1));
  EXPECT_TRUE(a.Merge(b));
  EXPECT_FALSE(a.Merge(b));  // second merge changes nothing
}

TEST(HyperLogLogDeathTest, PrecisionBounds) {
  EXPECT_DEATH({ HyperLogLog hll(3); }, "");
  EXPECT_DEATH({ HyperLogLog hll(17); }, "");
}

TEST(ApproxNeighborhoodTest, CliqueConvergesAtOne) {
  auto nf = ApproximateNeighborhoodFunction(Clique(20));
  // All 20*19 ordered pairs reachable at distance 1.
  EXPECT_NEAR(nf.pairs_within.back(), 380.0, 380.0 * 0.15);
  EXPECT_NEAR(nf.HopFraction(1), 1.0, 0.02);
}

TEST(ApproxNeighborhoodTest, PathGrowsLinearly) {
  auto nf = ApproximateNeighborhoodFunction(Path(50));
  ASSERT_GE(nf.pairs_within.size(), 3u);
  EXPECT_GT(nf.pairs_within[2], nf.pairs_within[1]);
  // Total ordered reachable pairs = 50*49.
  EXPECT_NEAR(nf.pairs_within.back(), 2450.0, 2450.0 * 0.15);
}

TEST(ApproxNeighborhoodTest, MatchesExactHopPlot) {
  Rng rng(5);
  graph::Graph g = graph::BarabasiAlbert(1500, 3, rng);
  auto nf = ApproximateNeighborhoodFunction(g);
  Histogram exact = DistanceProfile(g);
  for (uint32_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(nf.HopFraction(k), HopPlotFraction(exact, k), 0.08)
        << "k = " << k;
  }
}

TEST(ApproxNeighborhoodTest, EffectiveDiameterReasonable) {
  auto nf = ApproximateNeighborhoodFunction(Cycle(64));
  // Cycle of 64: max distance 32; 90% of pairs within ~29.
  double d90 = nf.EffectiveDiameter(0.9);
  EXPECT_GT(d90, 20.0);
  EXPECT_LE(d90, 33.0);
}

TEST(ApproxNeighborhoodTest, EmptyGraph) {
  graph::Graph g;
  auto nf = ApproximateNeighborhoodFunction(g);
  EXPECT_DOUBLE_EQ(nf.HopFraction(3), 0.0);
  EXPECT_DOUBLE_EQ(nf.EffectiveDiameter(), 0.0);
}

TEST(ApproxNeighborhoodTest, EdgelessGraphHasNoPairs) {
  auto g = edgeshed::testing::MustBuild(10, {});
  auto nf = ApproximateNeighborhoodFunction(g);
  // Per-vertex singleton sketches carry ~1e-4 estimation noise.
  EXPECT_NEAR(nf.pairs_within.back(), 0.0, 0.05);
}

}  // namespace
}  // namespace edgeshed::analytics
