// Cross-module invariant sweeps: laws that must hold between a graph and
// any spanning subgraph of it (which is exactly what every shedder
// produces). Parameterized over generator families, preservation ratios,
// and shedding methods — the strongest correctness net in the suite,
// because each assertion couples two independently implemented modules.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "analytics/assortativity.h"
#include "analytics/clustering.h"
#include "analytics/closeness.h"
#include "analytics/components.h"
#include "analytics/kcore.h"
#include "analytics/shortest_paths.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "core/random_shedding.h"
#include "graph/generators/generators.h"
#include "graph/operations.h"

namespace edgeshed {
namespace {

enum class Method { kCrr, kBm2, kRandom };

const char* MethodName(Method m) {
  switch (m) {
    case Method::kCrr:
      return "Crr";
    case Method::kBm2:
      return "Bm2";
    case Method::kRandom:
      return "Random";
  }
  return "?";
}

class SubgraphLawsTest
    : public ::testing::TestWithParam<std::tuple<Method, double>> {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2027);
    graph_ = new graph::Graph(graph::PowerlawCluster(400, 4, 0.5, rng));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  graph::Graph Reduce() const {
    const auto& [method, p] = GetParam();
    StatusOr<core::SheddingResult> result = [&]() {
      switch (method) {
        case Method::kCrr:
          return core::Crr().Reduce(*graph_, p);
        case Method::kBm2:
          return core::Bm2().Reduce(*graph_, p);
        default:
          return core::RandomShedding().Reduce(*graph_, p);
      }
    }();
    EDGESHED_CHECK(result.ok());
    return result->BuildReducedGraph(*graph_);
  }

  static graph::Graph* graph_;
};

graph::Graph* SubgraphLawsTest::graph_ = nullptr;

TEST_P(SubgraphLawsTest, ReducedIsSubgraph) {
  graph::Graph reduced = Reduce();
  for (const graph::Edge& e : reduced.edges()) {
    EXPECT_TRUE(graph_->HasEdge(e.u, e.v));
  }
}

TEST_P(SubgraphLawsTest, DegreesNeverGrow) {
  graph::Graph reduced = Reduce();
  for (graph::NodeId u = 0; u < graph_->NumNodes(); ++u) {
    EXPECT_LE(reduced.Degree(u), graph_->Degree(u));
  }
}

TEST_P(SubgraphLawsTest, CorenessNeverGrows) {
  graph::Graph reduced = Reduce();
  auto original_core = analytics::CoreDecomposition(*graph_);
  auto reduced_core = analytics::CoreDecomposition(reduced);
  for (graph::NodeId u = 0; u < graph_->NumNodes(); ++u) {
    EXPECT_LE(reduced_core[u], original_core[u]) << "node " << u;
  }
}

TEST_P(SubgraphLawsTest, TrianglesNeverGrow) {
  graph::Graph reduced = Reduce();
  auto original_triangles = analytics::TrianglesPerNode(*graph_);
  auto reduced_triangles = analytics::TrianglesPerNode(reduced);
  for (graph::NodeId u = 0; u < graph_->NumNodes(); ++u) {
    EXPECT_LE(reduced_triangles[u], original_triangles[u]);
  }
}

TEST_P(SubgraphLawsTest, HarmonicCentralityNeverGrows) {
  // Removing edges can only lengthen or sever shortest paths.
  graph::Graph reduced = Reduce();
  analytics::ClosenessOptions exact;
  exact.exact_node_threshold = 1 << 20;
  auto original = analytics::HarmonicCentrality(*graph_, exact);
  auto shrunk = analytics::HarmonicCentrality(reduced, exact);
  for (graph::NodeId u = 0; u < graph_->NumNodes(); ++u) {
    EXPECT_LE(shrunk[u], original[u] + 1e-9) << "node " << u;
  }
}

TEST_P(SubgraphLawsTest, ReachablePairsNeverGrow) {
  graph::Graph reduced = Reduce();
  auto count_pairs = [](const graph::Graph& g) {
    auto components = analytics::ConnectedComponents(g);
    uint64_t pairs = 0;
    for (uint64_t size : components.sizes) pairs += size * (size - 1) / 2;
    return pairs;
  };
  EXPECT_LE(count_pairs(reduced), count_pairs(*graph_));
}

TEST_P(SubgraphLawsTest, ComponentsNeverMerge) {
  graph::Graph reduced = Reduce();
  auto original = analytics::ConnectedComponents(*graph_);
  auto after = analytics::ConnectedComponents(reduced);
  EXPECT_GE(after.NumComponents(), original.NumComponents());
  // Vertices together in G' must have been together in G.
  for (const graph::Edge& e : reduced.edges()) {
    EXPECT_EQ(original.component[e.u], original.component[e.v]);
  }
}

TEST_P(SubgraphLawsTest, EdgeJaccardEqualsSharedFraction) {
  graph::Graph reduced = Reduce();
  // G' ⊆ G, so Jaccard(G, G') = |E'| / |E| exactly.
  EXPECT_NEAR(graph::EdgeJaccard(*graph_, reduced),
              static_cast<double>(reduced.NumEdges()) /
                  static_cast<double>(graph_->NumEdges()),
              1e-12);
}

TEST_P(SubgraphLawsTest, UnionWithOriginalIsOriginal) {
  graph::Graph reduced = Reduce();
  graph::Graph merged = graph::GraphUnion(*graph_, reduced);
  EXPECT_EQ(merged.NumEdges(), graph_->NumEdges());
}

TEST_P(SubgraphLawsTest, IntersectionWithOriginalIsReduced) {
  graph::Graph reduced = Reduce();
  graph::Graph inter = graph::GraphIntersection(*graph_, reduced);
  EXPECT_EQ(inter.NumEdges(), reduced.NumEdges());
}

TEST_P(SubgraphLawsTest, DifferencePartitionsEdges) {
  graph::Graph reduced = Reduce();
  graph::Graph shed = graph::GraphDifference(*graph_, reduced);
  EXPECT_EQ(shed.NumEdges() + reduced.NumEdges(), graph_->NumEdges());
}

TEST_P(SubgraphLawsTest, DistanceProfileTotalNeverGrows) {
  // Ordered reachable pairs shrink or stay; the profile total counts them.
  graph::Graph reduced = Reduce();
  analytics::DistanceProfileOptions exact;
  exact.exact_node_threshold = 1 << 20;
  auto original = analytics::DistanceProfile(*graph_, exact);
  auto after = analytics::DistanceProfile(reduced, exact);
  EXPECT_LE(after.total(), original.total());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndRatios, SubgraphLawsTest,
    ::testing::Combine(::testing::Values(Method::kCrr, Method::kBm2,
                                         Method::kRandom),
                       ::testing::Values(0.2, 0.5, 0.8)),
    [](const ::testing::TestParamInfo<std::tuple<Method, double>>& info) {
      return std::string(MethodName(std::get<0>(info.param))) + "_p" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 10 + 0.5));
    });

}  // namespace
}  // namespace edgeshed
