#include "baseline/uds.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::baseline {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

TEST(UdsTest, RejectsInvalidThreshold) {
  auto g = PaperExampleGraph();
  Uds uds;
  EXPECT_FALSE(uds.Summarize(g, 0.0).ok());
  EXPECT_FALSE(uds.Summarize(g, 1.0).ok());
  EXPECT_FALSE(uds.Summarize(g, -0.2).ok());
}

TEST(UdsTest, UtilityStaysAboveThreshold) {
  Rng rng(81);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  Uds uds;
  for (double tau : {0.3, 0.6, 0.9}) {
    auto summary = uds.Summarize(g, tau);
    ASSERT_TRUE(summary.ok());
    EXPECT_GE(summary->utility, tau - 1e-9) << "tau = " << tau;
  }
}

TEST(UdsTest, LowerThresholdCompressesMore) {
  Rng rng(82);
  auto g = graph::BarabasiAlbert(300, 3, rng);
  Uds uds;
  auto strict = uds.Summarize(g, 0.9);
  auto loose = uds.Summarize(g, 0.2);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(loose->members.size(), strict->members.size());
  EXPECT_GE(loose->merges, strict->merges);
}

TEST(UdsTest, MembershipIsAPartition) {
  Rng rng(83);
  auto g = graph::ErdosRenyi(150, 450, rng);
  auto summary = Uds().Summarize(g, 0.4);
  ASSERT_TRUE(summary.ok());
  std::set<graph::NodeId> seen;
  for (const auto& members : summary->members) {
    EXPECT_FALSE(members.empty());
    for (graph::NodeId u : members) {
      EXPECT_TRUE(seen.insert(u).second) << "node in two supernodes";
    }
  }
  EXPECT_EQ(seen.size(), g.NumNodes());
}

TEST(UdsTest, SupernodeOfIsConsistentWithMembers) {
  Rng rng(84);
  auto g = graph::ErdosRenyi(100, 300, rng);
  auto summary = Uds().Summarize(g, 0.5);
  ASSERT_TRUE(summary.ok());
  for (uint32_t s = 0; s < summary->members.size(); ++s) {
    for (graph::NodeId u : summary->members[s]) {
      EXPECT_EQ(summary->supernode_of[u], s);
    }
  }
}

TEST(UdsTest, SummaryGraphHasOneVertexPerSupernode) {
  Rng rng(85);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  auto summary = Uds().Summarize(g, 0.5);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->summary_graph.NumNodes(), summary->members.size());
}

TEST(UdsTest, SummaryIsSmallerThanOriginal) {
  Rng rng(86);
  auto g = graph::BarabasiAlbert(300, 4, rng);
  auto summary = Uds().Summarize(g, 0.3);
  ASSERT_TRUE(summary.ok());
  EXPECT_LT(summary->members.size(), g.NumNodes());
  EXPECT_LT(summary->summary_graph.NumEdges(), g.NumEdges());
}

TEST(UdsTest, HighThresholdMayKeepEverythingSeparate) {
  Rng rng(87);
  auto g = graph::ErdosRenyi(60, 120, rng);
  auto summary = Uds().Summarize(g, 0.999);
  ASSERT_TRUE(summary.ok());
  // Nearly no merge budget: most vertices stay singletons.
  EXPECT_GT(summary->members.size(), g.NumNodes() / 2);
}

TEST(UdsTest, DeterministicGivenSeed) {
  Rng rng(88);
  auto g = graph::ErdosRenyi(100, 250, rng);
  auto a = Uds().Summarize(g, 0.5);
  auto b = Uds().Summarize(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->supernode_of, b->supernode_of);
  EXPECT_DOUBLE_EQ(a->utility, b->utility);
}

TEST(UdsTest, ReductionSecondsPopulated) {
  auto g = PaperExampleGraph();
  auto summary = Uds().Summarize(g, 0.5);
  ASSERT_TRUE(summary.ok());
  EXPECT_GE(summary->reduction_seconds, 0.0);
  EXPECT_GE(summary->evaluations, 1u);
}

TEST(UdsTest, SmallerThresholdCostsMoreTime) {
  // The paper's Table III shape: UDS gets *slower* as the target utility
  // shrinks (more merge work). Use merges as a time proxy to avoid flaky
  // wall-clock assertions.
  Rng rng(89);
  auto g = graph::BarabasiAlbert(400, 4, rng);
  auto strict = Uds().Summarize(g, 0.8);
  auto loose = Uds().Summarize(g, 0.2);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_GT(loose->merges, strict->merges);
}

}  // namespace
}  // namespace edgeshed::baseline
