#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/crr.h"
#include "core/discrepancy.h"
#include "dyn/incremental_shed.h"
#include "dyn/versioned_graph.h"
#include "graph/mutation_io.h"
#include "testing/test_graphs.h"

namespace edgeshed::dyn {
namespace {

using graph::Edge;
using graph::MutationBatch;
using graph::NodeId;

MutationBatch Batch(std::vector<Edge> inserts, std::vector<Edge> deletes) {
  MutationBatch batch;
  batch.inserts = std::move(inserts);
  batch.deletes = std::move(deletes);
  return batch;
}

/// Deterministic random graph: cycle spine plus chords.
graph::Graph RandomGraph(NodeId n, size_t extra_edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  std::set<Edge> have;
  for (NodeId u = 0; u < n; ++u) {
    const Edge e{std::min<NodeId>(u, (u + 1) % n),
                 std::max<NodeId>(u, (u + 1) % n)};
    if (have.insert(e).second) edges.push_back(e);
  }
  while (edges.size() < n + extra_edges) {
    const NodeId u = static_cast<NodeId>(rng.UniformIndex(n));
    const NodeId v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u == v) continue;
    const Edge e{std::min(u, v), std::max(u, v)};
    if (have.insert(e).second) edges.push_back(e);
  }
  return testing::MustBuild(n, std::move(edges));
}

std::vector<Edge> CrrKeptEdges(const graph::Graph& g, double p,
                               uint64_t seed) {
  core::CrrOptions options;
  options.seed = seed;
  core::Crr crr(options);
  core::ShedOptions shed_options;
  shed_options.p = p;
  auto result = crr.Shed(g, shed_options);
  EDGESHED_CHECK(result.ok()) << result.status().ToString();
  std::vector<Edge> kept;
  kept.reserve(result->kept_edges.size());
  for (const graph::EdgeId id : result->kept_edges) {
    kept.push_back(g.edge(id));
  }
  return kept;  // ids ascending == canonical edge order
}

TEST(DynShedSession, ColdReshedMatchesCrrBitIdentically) {
  const graph::Graph g = RandomGraph(120, 260, 11);
  auto vg = std::make_shared<VersionedGraph>(g);
  ShedSession session(vg, DynamicShedOptions{});
  auto result = session.Reshed();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->full_rank);
  EXPECT_EQ(result->version, 0u);
  EXPECT_EQ(result->kept, CrrKeptEdges(g, 0.5, 42));
}

TEST(DynShedSession, ColdReshedOnMutatedOverlayMatchesCrrOnRebuild) {
  auto vg = std::make_shared<VersionedGraph>(RandomGraph(100, 200, 5));
  ASSERT_TRUE(vg->ApplyBatch(Batch({{0, 50}}, {{0, 1}})).ok());
  ShedSession session(vg, DynamicShedOptions{});
  auto result = session.Reshed();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->full_rank);
  auto rebuilt = vg->Snapshot()->Materialize();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(result->kept, CrrKeptEdges(*rebuilt, 0.5, 42));
}

TEST(DynShedSession, IncrementalReshedKeepsBudgetAndExactDelta) {
  auto vg = std::make_shared<VersionedGraph>(RandomGraph(150, 350, 23));
  ShedSession session(vg, DynamicShedOptions{});
  ASSERT_TRUE(session.Reshed().ok());

  ASSERT_TRUE(
      vg->ApplyBatch(Batch({{3, 77}, {9, 120}}, {{0, 1}, {5, 6}})).ok());
  auto result = session.Reshed();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->full_rank);
  EXPECT_GT(result->dirty_vertices, 0u);

  auto snap = vg->Snapshot();
  const uint64_t live = snap->NumEdges();
  const uint64_t target =
      static_cast<uint64_t>(std::llround(0.5 * static_cast<double>(live)));
  EXPECT_EQ(result->kept.size(), target);

  // Every kept edge is live, the list is canonical sorted, and the
  // incrementally maintained Δ matches an exact recompute over the kept
  // set on the mutated graph.
  EXPECT_TRUE(std::is_sorted(result->kept.begin(), result->kept.end()));
  for (const Edge& e : result->kept) {
    EXPECT_TRUE(snap->HasEdge(e.u, e.v))
        << "{" << e.u << ", " << e.v << "}";
  }
  auto rebuilt = snap->Materialize();
  ASSERT_TRUE(rebuilt.ok());
  core::DegreeDiscrepancy exact(*rebuilt, 0.5);
  for (const Edge& e : result->kept) exact.AddEdge(e.u, e.v);
  EXPECT_NEAR(result->total_delta, exact.RecomputeTotalDelta(), 1e-6);
}

TEST(DynShedSession, NoopReshedReturnsCurrentState) {
  auto vg = std::make_shared<VersionedGraph>(RandomGraph(80, 160, 3));
  ShedSession session(vg, DynamicShedOptions{});
  auto first = session.Reshed();
  ASSERT_TRUE(first.ok());
  auto again = session.Reshed();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->full_rank);
  EXPECT_EQ(again->kept, first->kept);
  EXPECT_EQ(again->total_delta, first->total_delta);
}

TEST(DynShedSession, WideBatchFallsBackToFullRank) {
  auto vg = std::make_shared<VersionedGraph>(RandomGraph(100, 200, 17));
  DynamicShedOptions options;
  options.full_rank_dirty_bound = 0.25;
  ShedSession session(vg, options);
  ASSERT_TRUE(session.Reshed().ok());

  // Touch well over 25% of the vertices in one batch.
  MutationBatch wide;
  auto snap = vg->Snapshot();
  for (NodeId u = 0; u < 60; u += 2) {
    if (!snap->HasEdge(u, u + 1)) continue;
    wide.deletes.push_back({u, static_cast<NodeId>(u + 1)});
  }
  ASSERT_GT(wide.deletes.size(), 13u);
  ASSERT_TRUE(vg->ApplyBatch(wide).ok());
  auto result = session.Reshed();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->full_rank);
  // And the full fallback equals a cold CRR run on the mutated graph.
  auto rebuilt = vg->Snapshot()->Materialize();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(result->kept, CrrKeptEdges(*rebuilt, 0.5, 42));
}

TEST(DynShedSession, TrimmedHistoryFallsBackToFullRank) {
  VersionedGraphOptions graph_options;
  graph_options.history_limit = 1;
  graph_options.compact_ratio = 0.0;  // compact eagerly so history trims
  auto vg = std::make_shared<VersionedGraph>(RandomGraph(90, 180, 29),
                                             graph_options);
  ShedSession session(vg, DynamicShedOptions{});
  ASSERT_TRUE(session.Reshed().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        vg->ApplyBatch(Batch({}, {vg->Snapshot()->LiveEdges().front()}))
            .ok());
    vg->WaitForCompaction();
  }
  ASSERT_FALSE(vg->BatchesSince(session.state_version()).has_value());
  auto result = session.Reshed();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->full_rank);
}

TEST(DynShedSession, SessionsAreDeterministic) {
  const graph::Graph g = RandomGraph(110, 240, 41);
  auto vg_a = std::make_shared<VersionedGraph>(g);
  auto vg_b = std::make_shared<VersionedGraph>(g);
  ShedSession a(vg_a, DynamicShedOptions{});
  ShedSession b(vg_b, DynamicShedOptions{});
  const std::vector<MutationBatch> batches = {
      Batch({{2, 60}}, {{0, 1}}),
      Batch({{5, 90}, {7, 33}}, {}),
      Batch({}, {{2, 60}}),
  };
  auto ra = a.Reshed();
  auto rb = b.Reshed();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->kept, rb->kept);
  for (const MutationBatch& batch : batches) {
    ASSERT_TRUE(vg_a->ApplyBatch(batch).ok());
    ASSERT_TRUE(vg_b->ApplyBatch(batch).ok());
    ra = a.Reshed();
    rb = b.Reshed();
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra->kept, rb->kept);
    EXPECT_EQ(ra->total_delta, rb->total_delta);
  }
}

TEST(DynShedSession, DecayAgesUntouchedEdgesOut) {
  const graph::Graph g = RandomGraph(100, 150, 53);
  auto vg_plain = std::make_shared<VersionedGraph>(g);
  auto vg_decay = std::make_shared<VersionedGraph>(g);
  // Expand the dirty region one hop so each incremental splice refreshes
  // the scored edges around the mutation, giving edges distinct ages.
  DynamicShedOptions plain_options;
  plain_options.dirty_hops = 1;
  DynamicShedOptions decay_options = plain_options;
  decay_options.decay_half_life = 0.5;  // aggressive sliding window
  ShedSession plain(vg_plain, plain_options);
  ShedSession decayed(vg_decay, decay_options);
  ASSERT_TRUE(plain.Reshed().ok());
  ASSERT_TRUE(decayed.Reshed().ok());

  // Churn a few neighborhoods, one version apart; everything else ages. A
  // reshed per version stamps the refreshed regions with distinct
  // last-touched versions, so decay (uniform within a version, steeper
  // with age) reorders stale high scorers below freshly touched edges.
  std::optional<DynamicShedResult> plain_result, decay_result;
  for (int round = 0; round < 3; ++round) {
    NodeId a = static_cast<NodeId>(10 * (round + 1));
    while (vg_plain->Snapshot()->HasEdge(a, a + 2)) ++a;
    const MutationBatch batch =
        Batch({{a, static_cast<NodeId>(a + 2)}}, {});
    ASSERT_TRUE(vg_plain->ApplyBatch(batch).ok());
    ASSERT_TRUE(vg_decay->ApplyBatch(batch).ok());
    auto rp = plain.Reshed();
    auto rd = decayed.Reshed();
    ASSERT_TRUE(rp.ok() && rd.ok());
    ASSERT_FALSE(rp->full_rank);
    ASSERT_FALSE(rd->full_rank);
    plain_result = *std::move(rp);
    decay_result = *std::move(rd);
  }
  EXPECT_EQ(plain_result->kept.size(), decay_result->kept.size());
  // The sliding window changes which edges survive.
  EXPECT_NE(plain_result->kept, decay_result->kept);
}

}  // namespace
}  // namespace edgeshed::dyn
