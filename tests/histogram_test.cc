#include "common/histogram.h"

#include <gtest/gtest.h>

namespace edgeshed {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.CountFor(3), 0u);
  EXPECT_DOUBLE_EQ(h.FractionFor(3), 0.0);
  EXPECT_TRUE(h.Keys().empty());
}

TEST(HistogramTest, AddAndCount) {
  Histogram h;
  h.Add(1);
  h.Add(1);
  h.Add(2);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.CountFor(1), 2u);
  EXPECT_EQ(h.CountFor(2), 1u);
  EXPECT_DOUBLE_EQ(h.FractionFor(1), 2.0 / 3.0);
}

TEST(HistogramTest, AddWithWeight) {
  Histogram h;
  h.Add(5, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.CountFor(5), 10u);
}

TEST(HistogramTest, CapAggregatesTail) {
  Histogram h(/*cap=*/300);
  h.Add(299);
  h.Add(300);
  h.Add(301);
  h.Add(5000);
  EXPECT_EQ(h.CountFor(299), 1u);
  EXPECT_EQ(h.CountFor(300), 3u);  // 300, 301, 5000 all fold to 300
  EXPECT_EQ(h.CountFor(301), 0u);
}

TEST(HistogramTest, KeysSorted) {
  Histogram h;
  h.Add(9);
  h.Add(1);
  h.Add(4);
  EXPECT_EQ(h.Keys(), (std::vector<int64_t>{1, 4, 9}));
}

TEST(HistogramTest, Fractions) {
  Histogram h;
  h.Add(1, 1);
  h.Add(2, 3);
  auto fractions = h.Fractions();
  ASSERT_EQ(fractions.size(), 2u);
  EXPECT_EQ(fractions[0].first, 1);
  EXPECT_DOUBLE_EQ(fractions[0].second, 0.25);
  EXPECT_DOUBLE_EQ(fractions[1].second, 0.75);
}

TEST(HistogramTest, CumulativeFraction) {
  Histogram h;
  h.Add(1, 2);
  h.Add(3, 2);
  h.Add(5, 4);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionUpTo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionUpTo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionUpTo(3), 0.5);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionUpTo(4), 0.5);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionUpTo(5), 1.0);
  EXPECT_DOUBLE_EQ(h.CumulativeFractionUpTo(100), 1.0);
}

TEST(HistogramTest, L1DistanceIdentical) {
  Histogram a;
  Histogram b;
  a.Add(1, 5);
  a.Add(2, 5);
  b.Add(1, 50);
  b.Add(2, 50);
  // Same normalized shape despite different masses.
  EXPECT_DOUBLE_EQ(Histogram::L1Distance(a, b), 0.0);
}

TEST(HistogramTest, L1DistanceDisjointIsTwo) {
  Histogram a;
  Histogram b;
  a.Add(1);
  b.Add(2);
  EXPECT_DOUBLE_EQ(Histogram::L1Distance(a, b), 2.0);
}

TEST(HistogramTest, L1DistanceSymmetric) {
  Histogram a;
  Histogram b;
  a.Add(1, 3);
  a.Add(2, 1);
  b.Add(1, 1);
  b.Add(3, 1);
  EXPECT_DOUBLE_EQ(Histogram::L1Distance(a, b), Histogram::L1Distance(b, a));
}

TEST(HistogramTest, L1DistanceAgainstEmpty) {
  Histogram a;
  Histogram empty;
  a.Add(1);
  EXPECT_DOUBLE_EQ(Histogram::L1Distance(a, empty), 1.0);
}

}  // namespace
}  // namespace edgeshed
