#include "common/status.h"

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace edgeshed {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status status = Status::InvalidArgument("bad p");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad p");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, DataLossCarriesMessageAndName) {
  const Status s = Status::DataLoss("checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "checksum mismatch");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

Status FailsThenPropagates(bool fail) {
  EDGESHED_RETURN_IF_ERROR(fail ? Status::Internal("inner")
                                : Status::OK());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> value = Status::NotFound("missing");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> value = std::string("hello");
  std::string taken = std::move(value).value();
  EXPECT_EQ(taken, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> value = std::string("hello");
  EXPECT_EQ(value->size(), 5u);
}

StatusOr<int> MaybeInt(bool ok) {
  if (!ok) return Status::Internal("no int");
  return 7;
}

Status UseAssignOrReturn(bool ok, int* out) {
  EDGESHED_ASSIGN_OR_RETURN(*out, MaybeInt(ok));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UseAssignOrReturn(false, &out).code(), StatusCode::kInternal);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> value = Status::Internal("boom");
  EXPECT_DEATH({ (void)value.value(); }, "boom");
}

}  // namespace
}  // namespace edgeshed
