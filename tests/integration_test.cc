// End-to-end assertions that the paper's qualitative claims hold on our
// surrogates: CRR/BM2 preserve degree structure, distances, and top-k
// rankings better than the UDS baseline, while running faster.

#include <gtest/gtest.h>

#include "analytics/degree.h"
#include "analytics/shortest_paths.h"
#include "baseline/uds.h"
#include "core/bm2.h"
#include "core/bounds.h"
#include "core/crr.h"
#include "eval/metrics.h"
#include "graph/datasets.h"

namespace edgeshed {
namespace {

/// A ca-GrQc-like surrogate at 1/5 scale so the whole suite stays fast.
class PaperShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::DatasetOptions options;
    options.scale = 0.2;
    graph_ = new graph::Graph(
        graph::MakeDataset(graph::DatasetId::kCaGrQc, options));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  const graph::Graph& g() const { return *graph_; }

  static graph::Graph* graph_;
};

graph::Graph* PaperShapeTest::graph_ = nullptr;

TEST_F(PaperShapeTest, SurrogateIsGrQcLike) {
  EXPECT_NEAR(static_cast<double>(g().NumNodes()), 5242 * 0.2, 5.0);
  EXPECT_NEAR(g().AverageDegree(), 2.0 * 14496 / 5242, 1.5);
}

TEST_F(PaperShapeTest, BothMethodsMeetTheirBounds) {
  for (double p : {0.2, 0.5, 0.8}) {
    auto crr = core::Crr().Reduce(g(), p);
    auto bm2 = core::Bm2().Reduce(g(), p);
    ASSERT_TRUE(crr.ok());
    ASSERT_TRUE(bm2.ok());
    EXPECT_LT(crr->average_delta, core::CrrAverageDeltaBound(g(), p));
    EXPECT_LT(bm2->average_delta, core::Bm2AverageDeltaBound(g(), p));
    // Fig. 5a-b: measured error is far below the loose bound, under 1.0.
    EXPECT_LT(crr->average_delta, 1.0) << "p = " << p;
    EXPECT_LT(bm2->average_delta, 1.0) << "p = " << p;
  }
}

TEST_F(PaperShapeTest, DegreeDistributionPreservedBetterThanUds) {
  const double p = 0.5;
  auto crr = core::Crr().Reduce(g(), p);
  auto bm2 = core::Bm2().Reduce(g(), p);
  ASSERT_TRUE(crr.ok());
  ASSERT_TRUE(bm2.ok());
  auto uds = baseline::Uds().Summarize(g(), p);
  ASSERT_TRUE(uds.ok());

  // The paper reads reduced graphs through the deg'/p estimator (Eq. 1);
  // UDS degrees are estimated by expected reconstruction of supernodes.
  auto original = analytics::DegreeDistribution(g());
  auto crr_hist =
      analytics::EstimatedDegreeDistribution(crr->BuildReducedGraph(g()), p);
  auto bm2_hist =
      analytics::EstimatedDegreeDistribution(bm2->BuildReducedGraph(g()), p);
  auto uds_hist = baseline::UdsEstimatedDegreeDistribution(*uds);

  // KS (CDF) distance: robust to the parity artifact of round(deg'/p).
  const double crr_err = Histogram::KsDistance(original, crr_hist);
  const double bm2_err = Histogram::KsDistance(original, bm2_hist);
  const double uds_err = Histogram::KsDistance(original, uds_hist);
  // Fig. 5c-d / Fig. 6: the shedding methods track the degree distribution
  // far better than supernode aggregation does.
  EXPECT_LT(crr_err, uds_err);
  EXPECT_LT(bm2_err, uds_err);
  EXPECT_LT(crr_err, 0.25);
  // BM2's capacity rounding (round(p·deg) can overshoot by 0.5) makes its
  // scaled-degree estimate coarser than CRR's at p = 0.5.
  EXPECT_LT(bm2_err, 0.45);
}

TEST_F(PaperShapeTest, TopKUtilityOrderingMidP) {
  // Tables VIII-IX: CRR leads at every p. (BM2 vs UDS flips at mid-p on
  // this 1/5-scale surrogate; the decisive separation is at small p.)
  const double p = 0.5;
  auto crr = core::Crr().Reduce(g(), p);
  ASSERT_TRUE(crr.ok());
  auto uds = baseline::Uds().Summarize(g(), p);
  ASSERT_TRUE(uds.ok());
  const double crr_utility =
      eval::TopKUtilityForReduced(g(), crr->BuildReducedGraph(g()), 10.0);
  const double uds_utility = eval::TopKUtilityForUds(g(), *uds, 10.0);
  EXPECT_GT(crr_utility, uds_utility);
  EXPECT_GT(crr_utility, 0.5);
}

TEST_F(PaperShapeTest, TopKUtilityOrderingSmallP) {
  // At p = 0.2 the paper reports UDS has lost most ranking information
  // (Table VIII: UDS 0.27 vs CRR 0.50, BM2 0.46 on ca-GrQc); both of our
  // methods must beat the baseline here.
  const double p = 0.2;
  auto crr = core::Crr().Reduce(g(), p);
  auto bm2 = core::Bm2().Reduce(g(), p);
  ASSERT_TRUE(crr.ok());
  ASSERT_TRUE(bm2.ok());
  auto uds = baseline::Uds().Summarize(g(), p);
  ASSERT_TRUE(uds.ok());
  const double crr_utility =
      eval::TopKUtilityForReduced(g(), crr->BuildReducedGraph(g()), 10.0);
  const double bm2_utility =
      eval::TopKUtilityForReduced(g(), bm2->BuildReducedGraph(g()), 10.0);
  const double uds_utility = eval::TopKUtilityForUds(g(), *uds, 10.0);
  EXPECT_GT(crr_utility, uds_utility);
  EXPECT_GT(bm2_utility, uds_utility);
}

TEST_F(PaperShapeTest, DistanceProfilePreserved) {
  const double p = 0.7;
  auto crr = core::Crr().Reduce(g(), p);
  ASSERT_TRUE(crr.ok());
  auto original_profile = analytics::DistanceProfile(g());
  auto reduced_profile =
      analytics::DistanceProfile(crr->BuildReducedGraph(g()));
  // Fig. 7: at large p the shortest-path distribution stays close.
  EXPECT_LT(Histogram::L1Distance(original_profile, reduced_profile), 0.8);
}

TEST_F(PaperShapeTest, Bm2IsFasterThanCrr) {
  // Table III: BM2 reduction is orders of magnitude faster than CRR
  // (which pays for betweenness). Allow generous slack.
  auto crr = core::Crr().Reduce(g(), 0.5);
  auto bm2 = core::Bm2().Reduce(g(), 0.5);
  ASSERT_TRUE(crr.ok());
  ASSERT_TRUE(bm2.ok());
  EXPECT_LT(bm2->reduction_seconds, crr->reduction_seconds);
}

TEST_F(PaperShapeTest, CrrQualityBeatsOrMatchesBm2AtSmallP) {
  // The paper's overall conclusion: CRR usually yields the better degree
  // discrepancy, BM2 the better runtime.
  auto crr = core::Crr().Reduce(g(), 0.3);
  auto bm2 = core::Bm2().Reduce(g(), 0.3);
  ASSERT_TRUE(crr.ok());
  ASSERT_TRUE(bm2.ok());
  EXPECT_LE(crr->average_delta, bm2->average_delta + 0.25);
}

TEST_F(PaperShapeTest, UdsSummaryIsSmallButDegreeDestroying) {
  auto uds = baseline::Uds().Summarize(g(), 0.3);
  ASSERT_TRUE(uds.ok());
  EXPECT_LT(uds->members.size(), g().NumNodes());
  EXPECT_GE(uds->utility, 0.3 - 1e-9);
}

}  // namespace
}  // namespace edgeshed
