// Tests for src/net/client.h retry behaviour, isolated from real sockets by
// RpcClient::TestHooks: an injected transport stands in for the TCP round
// trip and an injected sleeper records the backoff delays the client would
// have slept. The backoff schedule itself is a pure function of the options
// (seeded jitter), so the exact delays are pinned, not just bounded.

#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/wire.h"

namespace edgeshed::net {
namespace {

using std::chrono::milliseconds;

RpcClientOptions TestOptions() {
  RpcClientOptions options;
  options.max_attempts = 4;
  options.backoff_initial = milliseconds(100);
  options.backoff_max = milliseconds(2000);
  options.backoff_multiplier = 2.0;
  options.jitter_fraction = 0.2;
  options.jitter_seed = 0x5eed;
  return options;
}

/// A transport that fails `failures` times with `error`, then answers every
/// request with a well-formed OK Ping response.
RpcClient::TestHooks FlakyPingTransport(int failures, Status error,
                                        std::vector<milliseconds>* slept,
                                        int* calls) {
  RpcClient::TestHooks hooks;
  hooks.transport = [failures, error, calls](const Frame& request) mutable
      -> StatusOr<Frame> {
    ++*calls;
    if (*calls <= failures) return error;
    PingMessage ping;
    EDGESHED_CHECK(DecodePing(request.payload, &ping).ok());
    Frame response;
    response.type = ResponseTypeFor(request.type);
    response.payload =
        EncodeResponsePayload(Status::OK(), EncodePing(ping));
    return response;
  };
  hooks.sleeper = [slept](milliseconds delay) { slept->push_back(delay); };
  return hooks;
}

// ---------------------------------------------------------------------------
// Backoff schedule

TEST(BackoffScheduleTest, DeterministicForFixedSeed) {
  const RpcClientOptions options = TestOptions();
  const auto first = RpcClient::BackoffSchedule(options);
  const auto second = RpcClient::BackoffSchedule(options);
  ASSERT_EQ(first.size(), 3u);  // max_attempts - 1
  EXPECT_EQ(first, second);
}

TEST(BackoffScheduleTest, ExponentialEnvelopeWithBoundedJitter) {
  const RpcClientOptions options = TestOptions();
  const auto delays = RpcClient::BackoffSchedule(options);
  ASSERT_EQ(delays.size(), 3u);
  // Attempt k's base is initial * multiplier^k capped at max; jitter only
  // shrinks it, by at most jitter_fraction.
  const int64_t bases[] = {100, 200, 400};
  for (size_t k = 0; k < delays.size(); ++k) {
    SCOPED_TRACE(k);
    EXPECT_LE(delays[k].count(), bases[k]);
    EXPECT_GE(delays[k].count(),
              static_cast<int64_t>(static_cast<double>(bases[k]) *
                                   (1.0 - options.jitter_fraction)) -
                  1);
  }
}

TEST(BackoffScheduleTest, DifferentSeedsDiverge) {
  RpcClientOptions a = TestOptions();
  RpcClientOptions b = TestOptions();
  b.jitter_seed = 0xFEED;
  EXPECT_NE(RpcClient::BackoffSchedule(a), RpcClient::BackoffSchedule(b));
}

TEST(BackoffScheduleTest, CapAppliesBeforeJitter) {
  RpcClientOptions options = TestOptions();
  options.max_attempts = 8;
  options.jitter_fraction = 0.0;  // isolate the cap
  const auto delays = RpcClient::BackoffSchedule(options);
  ASSERT_EQ(delays.size(), 7u);
  EXPECT_EQ(delays[0], milliseconds(100));
  EXPECT_EQ(delays[1], milliseconds(200));
  EXPECT_EQ(delays.back(), options.backoff_max);
}

TEST(BackoffScheduleTest, SingleAttemptMeansNoDelays) {
  RpcClientOptions options = TestOptions();
  options.max_attempts = 1;
  EXPECT_TRUE(RpcClient::BackoffSchedule(options).empty());
}

// ---------------------------------------------------------------------------
// Retry classification

TEST(RetryClassificationTest, TransientStatusesAreRetryable) {
  EXPECT_TRUE(RpcClient::IsRetryable(Status::IOError("connection refused")));
  EXPECT_TRUE(
      RpcClient::IsRetryable(Status::ResourceExhausted("server overloaded")));
}

TEST(RetryClassificationTest, PermanentStatusesAreNot) {
  EXPECT_FALSE(RpcClient::IsRetryable(Status::InvalidArgument("bad p")));
  EXPECT_FALSE(RpcClient::IsRetryable(Status::NotFound("no such dataset")));
  EXPECT_FALSE(RpcClient::IsRetryable(Status::DataLoss("checksum")));
  EXPECT_FALSE(RpcClient::IsRetryable(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(RpcClient::IsRetryable(Status::Internal("bug")));
  EXPECT_FALSE(RpcClient::IsRetryable(Status::OK()));
}

// ---------------------------------------------------------------------------
// Retry loop (injected transport + sleeper)

TEST(ClientRetryTest, TransportFailuresRetryWithExactSchedule) {
  const RpcClientOptions options = TestOptions();
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient client(options, FlakyPingTransport(
                                2, Status::IOError("connection reset"),
                                &slept, &calls));

  auto token = client.Ping(321);
  ASSERT_TRUE(token.ok()) << token.status();
  EXPECT_EQ(*token, 321u);
  EXPECT_EQ(calls, 3);  // 2 failures + 1 success

  // The sleeps between attempts are exactly the head of BackoffSchedule.
  const auto schedule = RpcClient::BackoffSchedule(options);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], schedule[0]);
  EXPECT_EQ(slept[1], schedule[1]);
}

TEST(ClientRetryTest, ResourceExhaustedResponseIsRetried) {
  // Overload comes back as a *successful* transport round trip whose
  // envelope says ResourceExhausted; the retry loop must look through the
  // envelope, not just at transport errors.
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient::TestHooks hooks;
  hooks.transport = [&calls](const Frame& request) -> StatusOr<Frame> {
    ++calls;
    Frame response;
    if (calls == 1) {
      response.type = ResponseTypeFor(request.type);
      response.payload = EncodeResponsePayload(
          Status::ResourceExhausted("too many in flight"));
      return response;
    }
    PingMessage ping;
    EDGESHED_CHECK(DecodePing(request.payload, &ping).ok());
    response.type = ResponseTypeFor(request.type);
    response.payload = EncodeResponsePayload(Status::OK(), EncodePing(ping));
    return response;
  };
  hooks.sleeper = [&slept](milliseconds delay) { slept.push_back(delay); };

  RpcClient client(TestOptions(), hooks);
  auto token = client.Ping(7);
  ASSERT_TRUE(token.ok()) << token.status();
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(slept.size(), 1u);
}

TEST(ClientRetryTest, NonRetryableStatusFailsFastWithZeroSleeps) {
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient::TestHooks hooks;
  hooks.transport = [&calls](const Frame& request) -> StatusOr<Frame> {
    ++calls;
    Frame response;
    response.type = ResponseTypeFor(request.type);
    response.payload =
        EncodeResponsePayload(Status::InvalidArgument("p out of range"));
    return response;
  };
  hooks.sleeper = [&slept](milliseconds delay) { slept.push_back(delay); };

  RpcClient client(TestOptions(), hooks);
  auto token = client.Ping(1);
  ASSERT_FALSE(token.ok());
  EXPECT_EQ(token.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(ClientRetryTest, ExhaustedRetriesReturnLastError) {
  const RpcClientOptions options = TestOptions();
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient client(options,
                   FlakyPingTransport(1000, Status::IOError("still down"),
                                      &slept, &calls));

  auto token = client.Ping(1);
  ASSERT_FALSE(token.ok());
  EXPECT_EQ(token.status().code(), StatusCode::kIOError);
  EXPECT_EQ(calls, options.max_attempts);
  EXPECT_EQ(slept.size(),
            static_cast<size_t>(options.max_attempts - 1));
}

TEST(ClientRetryTest, MismatchedResponseTypeIsInternalAndFatal) {
  int calls = 0;
  RpcClient::TestHooks hooks;
  hooks.transport = [&calls](const Frame&) -> StatusOr<Frame> {
    ++calls;
    Frame response;
    response.type = MessageType::kCancelResponse;  // wrong pairing for Ping
    response.payload = EncodeResponsePayload(Status::OK());
    return response;
  };
  hooks.sleeper = [](milliseconds) {};

  RpcClient client(TestOptions(), hooks);
  auto token = client.Ping(1);
  ASSERT_FALSE(token.ok());
  EXPECT_EQ(token.status().code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);  // protocol confusion is not transient
}

// ---------------------------------------------------------------------------
// Overall retry budget (the fix for per-attempt timeouts stacking)

/// Transport that always fails with IOError, counting calls and recording
/// backoff sleeps.
RpcClient::TestHooks AlwaysDownTransport(std::vector<milliseconds>* slept,
                                         int* calls) {
  RpcClient::TestHooks hooks;
  hooks.transport = [calls](const Frame&) -> StatusOr<Frame> {
    ++*calls;
    return Status::IOError("still down");
  };
  hooks.sleeper = [slept](milliseconds delay) { slept->push_back(delay); };
  return hooks;
}

TEST(ClientRetryTest, WaitBudgetStopsRetriesInsteadOfStacking) {
  // deadline 40ms + slack 10ms < recv_timeout 50ms -> overall budget 50ms.
  // The first backoff delay (~100ms jittered <= 100) already overruns it, so
  // the Wait makes exactly one attempt and reports DeadlineExceeded instead
  // of burning max_attempts * recv_timeout.
  RpcClientOptions options = TestOptions();
  options.recv_timeout = milliseconds(50);
  options.wait_slack = milliseconds(10);
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient client(options, AlwaysDownTransport(&slept, &calls));

  auto summary = client.Wait(1, /*deadline_ms=*/40);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(ClientRetryTest, WaitWithoutDeadlineKeepsUnboundedRetries) {
  // deadline_ms = 0 preserves the historical contract: all attempts run and
  // the last transport error is returned as-is.
  const RpcClientOptions options = TestOptions();
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient client(options, AlwaysDownTransport(&slept, &calls));

  auto summary = client.Wait(1);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kIOError);
  EXPECT_EQ(calls, options.max_attempts);
  EXPECT_EQ(slept.size(), static_cast<size_t>(options.max_attempts - 1));
}

TEST(ClientRetryTest, WaitBudgetAdmitsRetriesThatFitWithinIt) {
  // Budget 1000ms comfortably covers the full (jittered) backoff schedule
  // of ~100+200+400ms, so every attempt still runs.
  RpcClientOptions options = TestOptions();
  options.recv_timeout = milliseconds(50);
  options.wait_slack = milliseconds(960);
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient client(options, AlwaysDownTransport(&slept, &calls));

  auto summary = client.Wait(1, /*deadline_ms=*/40);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kIOError);
  EXPECT_EQ(calls, options.max_attempts);
}

TEST(ClientRetryTest, ShedWithWaitSharesTheWaitBudget) {
  // A Shed that blocks for its result inherits the same deadline-derived
  // budget as Wait; a fire-and-forget Shed (wait=false) does not.
  RpcClientOptions options = TestOptions();
  options.recv_timeout = milliseconds(50);
  options.wait_slack = milliseconds(10);
  std::vector<milliseconds> slept;
  int calls = 0;
  RpcClient client(options, AlwaysDownTransport(&slept, &calls));

  ShedRequest blocking;
  blocking.dataset = "g";
  blocking.wait = true;
  blocking.deadline_ms = 40;
  auto response = client.Shed(blocking);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 1);

  calls = 0;
  slept.clear();
  ShedRequest fire_and_forget = blocking;
  fire_and_forget.wait = false;
  auto submitted = client.Shed(fire_and_forget);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), StatusCode::kIOError);
  EXPECT_EQ(calls, options.max_attempts);
}

TEST(ClientRetryTest, TypedDecodersRunOnInjectedTransport) {
  // The full typed surface works over the hook, proving the hook replaces
  // only the socket layer, not the codec path.
  RpcClient::TestHooks hooks;
  hooks.transport = [](const Frame& request) -> StatusOr<Frame> {
    Frame response;
    response.type = ResponseTypeFor(request.type);
    if (request.type == MessageType::kListDatasetsRequest) {
      ListDatasetsResponse list;
      list.names = {"alpha", "beta"};
      response.payload = EncodeResponsePayload(
          Status::OK(), EncodeListDatasetsResponseBody(list));
    } else if (request.type == MessageType::kWaitRequest) {
      ResultSummary summary;
      summary.kept_edges = 11;
      response.payload = EncodeResponsePayload(
          Status::OK(), EncodeResultSummaryBody(summary));
    } else {
      response.payload = EncodeResponsePayload(Status::OK());
    }
    return response;
  };
  hooks.sleeper = [](milliseconds) {};

  RpcClient client(TestOptions(), hooks);
  auto names = client.ListDatasets();
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ(*names, (std::vector<std::string>{"alpha", "beta"}));

  auto summary = client.Wait(3);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->kept_edges, 11u);

  EXPECT_TRUE(client.Cancel(3).ok());
}

}  // namespace
}  // namespace edgeshed::net
