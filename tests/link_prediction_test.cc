#include "embedding/link_prediction.h"

#include <gtest/gtest.h>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::embedding {
namespace {

using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;

LinkPredictionOptions FastOptions() {
  LinkPredictionOptions options;
  options.walks.walks_per_node = 5;
  options.walks.walk_length = 10;
  options.skipgram.dimensions = 16;
  options.skipgram.epochs = 1;
  options.kmeans.clusters = 3;
  return options;
}

TEST(PackPairTest, CanonicalAndUnique) {
  EXPECT_EQ(PackPair(1, 2), PackPair(2, 1));
  EXPECT_NE(PackPair(1, 2), PackPair(1, 3));
  EXPECT_EQ(PackPair(0, 5), (uint64_t{0} << 32) | 5);
}

TEST(PredictPairsTest, OnlyTwoHopNonAdjacentPairs) {
  // Path 0-1-2-3: 2-hop pairs are (0,2) and (1,3).
  auto g = Path(4);
  std::vector<uint32_t> communities(4, 0);  // everyone same community
  LinkPredictionOptions options;
  auto pairs = PredictSameCommunityPairs(g, communities, options);
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_TRUE(pairs.contains(PackPair(0, 2)));
  EXPECT_TRUE(pairs.contains(PackPair(1, 3)));
}

TEST(PredictPairsTest, DifferentCommunitiesExcluded) {
  auto g = Path(4);
  std::vector<uint32_t> communities{0, 0, 1, 1};
  auto pairs = PredictSameCommunityPairs(g, communities, {});
  // (0,2) crosses communities; (1,3) crosses too.
  EXPECT_TRUE(pairs.empty());
}

TEST(PredictPairsTest, AdjacentPairsNeverIncluded) {
  auto g = edgeshed::testing::Clique(5);
  std::vector<uint32_t> communities(5, 0);
  auto pairs = PredictSameCommunityPairs(g, communities, {});
  EXPECT_TRUE(pairs.empty());  // every 2-hop pair is also adjacent
}

TEST(PredictPairsTest, HubCapLimitsPairs) {
  auto g = edgeshed::testing::Star(100);
  std::vector<uint32_t> communities(100, 0);
  LinkPredictionOptions capped;
  capped.max_pairs_per_node = 10;
  auto pairs = PredictSameCommunityPairs(g, communities, capped);
  // Without the cap there are C(99,2) leaf pairs; the per-source cap keeps
  // roughly 10 per source.
  EXPECT_LE(pairs.size(), 99u * 10u);
  LinkPredictionOptions uncapped;
  uncapped.max_pairs_per_node = 0;
  auto all_pairs = PredictSameCommunityPairs(g, communities, uncapped);
  EXPECT_EQ(all_pairs.size(), 99u * 98u / 2u);
}

TEST(LinkPredictionUtilityTest, Bounds) {
  PairSet l{PackPair(0, 2), PackPair(1, 3)};
  PairSet same = l;
  EXPECT_DOUBLE_EQ(LinkPredictionUtility(l, same), 1.0);
  PairSet empty;
  EXPECT_DOUBLE_EQ(LinkPredictionUtility(l, empty), 0.0);
  EXPECT_DOUBLE_EQ(LinkPredictionUtility(empty, l), 0.0);
  PairSet half{PackPair(0, 2), PackPair(5, 7)};
  EXPECT_DOUBLE_EQ(LinkPredictionUtility(l, half), 0.5);
}

TEST(AreTwoHopTest, PathGraph) {
  auto g = Path(4);
  EXPECT_TRUE(AreTwoHop(g, 0, 2));
  EXPECT_TRUE(AreTwoHop(g, 2, 0));  // symmetric
  EXPECT_FALSE(AreTwoHop(g, 0, 1));  // adjacent
  EXPECT_FALSE(AreTwoHop(g, 0, 3));  // distance 3
  EXPECT_FALSE(AreTwoHop(g, 1, 1));  // same vertex
}

TEST(AreTwoHopTest, OutOfRangeIsFalse) {
  auto g = Path(3);
  EXPECT_FALSE(AreTwoHop(g, 0, 99));
}

TEST(LinkPredictionUtilityOverBaseTest, MatchesSetIntersection) {
  // Base pairs from a path; reduced graph = same path, one community.
  auto g = Path(5);
  PairSet base{PackPair(0, 2), PackPair(1, 3), PackPair(2, 4),
               PackPair(0, 3)};  // (0,3) is distance 3: not 2-hop
  std::vector<uint32_t> communities(5, 0);
  // 3 of 4 base pairs are 2-hop in g and same-community.
  EXPECT_DOUBLE_EQ(LinkPredictionUtilityOverBase(base, g, communities), 0.75);
}

TEST(LinkPredictionUtilityOverBaseTest, CommunityMismatchExcludes) {
  auto g = Path(5);
  PairSet base{PackPair(0, 2)};
  std::vector<uint32_t> communities{0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(LinkPredictionUtilityOverBase(base, g, communities), 0.0);
}

TEST(LinkPredictionUtilityOverBaseTest, EmptyBaseIsZero) {
  auto g = Path(3);
  std::vector<uint32_t> communities(3, 0);
  EXPECT_DOUBLE_EQ(LinkPredictionUtilityOverBase({}, g, communities), 0.0);
}

TEST(CommunityAssignmentsTest, LabelsWithinRange) {
  Rng rng(101);
  auto g = graph::PlantedPartition(60, 3, 0.4, 0.02, rng);
  auto communities = CommunityAssignments(g, FastOptions());
  EXPECT_EQ(communities.size(), 60u);
  for (uint32_t label : communities) EXPECT_LT(label, 3u);
}

TEST(EvaluateLinkPredictionTest, IdenticalGraphsScoreHigh) {
  Rng rng(102);
  auto g = graph::PlantedPartition(80, 2, 0.4, 0.02, rng);
  double utility = EvaluateLinkPrediction(g, g, FastOptions());
  // Same graph, same seeds, same pipeline -> identical prediction sets.
  EXPECT_DOUBLE_EQ(utility, 1.0);
}

TEST(EvaluateLinkPredictionTest, EmptyReducedGraphScoresLow) {
  Rng rng(103);
  auto g = graph::PlantedPartition(60, 2, 0.4, 0.05, rng);
  auto empty = edgeshed::testing::MustBuild(60, {});
  double utility = EvaluateLinkPrediction(g, empty, FastOptions());
  EXPECT_DOUBLE_EQ(utility, 0.0);
}

}  // namespace
}  // namespace edgeshed::embedding
