#include "estimate/estimators.h"

#include <gtest/gtest.h>

#include "analytics/clustering.h"
#include "core/crr.h"
#include "core/random_shedding.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::estimate {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::MustBuild;

class EstimatorsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    original_ = new graph::Graph(graph::PowerlawCluster(2000, 4, 0.5, rng));
  }
  static void TearDownTestSuite() {
    delete original_;
    original_ = nullptr;
  }
  static graph::Graph Reduce(double p) {
    auto result = core::RandomShedding(3).Reduce(*original_, p);
    EDGESHED_CHECK(result.ok());
    return result->BuildReducedGraph(*original_);
  }
  static graph::Graph* original_;
};

graph::Graph* EstimatorsTest::original_ = nullptr;

TEST_F(EstimatorsTest, EdgeCountIsExactForTargetedShedders) {
  for (double p : {0.3, 0.5, 0.8}) {
    graph::Graph reduced = Reduce(p);
    EXPECT_NEAR(EstimatedEdgeCount(reduced, p),
                static_cast<double>(original_->NumEdges()),
                1.0 / p)  // rounding of the target count only
        << "p = " << p;
  }
}

TEST_F(EstimatorsTest, AverageDegreeMatches) {
  graph::Graph reduced = Reduce(0.5);
  EXPECT_NEAR(EstimatedAverageDegree(reduced, 0.5),
              original_->AverageDegree(), 0.05);
}

TEST_F(EstimatorsTest, PerVertexDegreesUnbiasedOnAverage) {
  graph::Graph reduced = Reduce(0.5);
  auto estimates = EstimatedDegrees(reduced, 0.5);
  double total_true = 0.0;
  double total_estimated = 0.0;
  for (graph::NodeId u = 0; u < original_->NumNodes(); ++u) {
    total_true += static_cast<double>(original_->Degree(u));
    total_estimated += estimates[u];
  }
  EXPECT_NEAR(total_estimated / total_true, 1.0, 0.02);
}

TEST_F(EstimatorsTest, TriangleCountWithinTolerance) {
  // Random shedding keeps each triangle with probability ~p^3 (edges are
  // nearly independent draws); the estimator inverts that.
  auto triangles_of = [](const graph::Graph& g) {
    auto per_node = analytics::TrianglesPerNode(g);
    uint64_t total = 0;
    for (uint64_t t : per_node) total += t;
    return static_cast<double>(total) / 3.0;
  };
  const double truth = triangles_of(*original_);
  graph::Graph reduced = Reduce(0.6);
  EXPECT_NEAR(EstimatedTriangleCount(reduced, 0.6) / truth, 1.0, 0.25);
}

TEST_F(EstimatorsTest, GlobalClusteringWithinTolerance) {
  auto transitivity_of = [](const graph::Graph& g) {
    auto per_node = analytics::TrianglesPerNode(g);
    uint64_t total = 0;
    for (uint64_t t : per_node) total += t;
    double wedges = 0;
    for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
      double d = static_cast<double>(g.Degree(u));
      wedges += d * (d - 1) / 2;
    }
    return wedges == 0 ? 0.0 : static_cast<double>(total) / wedges;
  };
  const double truth = transitivity_of(*original_);
  graph::Graph reduced = Reduce(0.6);
  EXPECT_NEAR(EstimatedGlobalClustering(reduced, 0.6), truth, truth * 0.35);
}

TEST_F(EstimatorsTest, SmoothedHistogramSplitsFractionalEstimates) {
  // At p = 0.4 the estimates deg'/p land on multiples of 2.5; plain
  // rounding would leave holes, while mass splitting populates both
  // adjacent integer bins (e.g. 2.5 -> bins 2 and 3).
  auto crr = core::Crr().Reduce(*original_, 0.4);
  ASSERT_TRUE(crr.ok());
  graph::Graph reduced = crr->BuildReducedGraph(*original_);
  Histogram smoothed = EstimatedDegreeHistogramSmoothed(reduced, 0.4);
  uint64_t odd_mass = 0;
  for (int64_t k = 1; k <= 21; k += 2) odd_mass += smoothed.CountFor(k);
  EXPECT_GT(odd_mass, 0u);
  // And the halves split evenly: bin 2 and bin 3 both get mass from 2.5.
  EXPECT_GT(smoothed.CountFor(3), 0u);
}

TEST_F(EstimatorsTest, SmoothedHistogramMassIsOnePerVertex) {
  graph::Graph reduced = Reduce(0.4);
  Histogram smoothed = EstimatedDegreeHistogramSmoothed(reduced, 0.4);
  EXPECT_EQ(smoothed.total(), reduced.NumNodes() * 1000);
}

TEST(EstimatorsSmallTest, ReachablePairsLowerBound) {
  auto g = MustBuild(5, {{0, 1}, {1, 2}});
  // Component {0,1,2} has 3 pairs; singletons none.
  EXPECT_EQ(ReachablePairsLowerBound(g), 3u);
  EXPECT_EQ(ReachablePairsLowerBound(Clique(6)), 15u);
}

TEST(EstimatorsSmallTest, InvalidPAborts) {
  auto g = Clique(4);
  EXPECT_DEATH({ (void)EstimatedEdgeCount(g, 0.0); }, "");
  EXPECT_DEATH({ (void)EstimatedEdgeCount(g, 1.0); }, "");
}

}  // namespace
}  // namespace edgeshed::estimate
