#include "analytics/eigenvector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

double L2Norm(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

TEST(EigenvectorTest, EmptyGraph) {
  graph::Graph g;
  EXPECT_TRUE(EigenvectorCentrality(g).empty());
}

TEST(EigenvectorTest, CliqueIsUniform) {
  const graph::Graph g = testing::Clique(4);
  auto scores = EigenvectorCentrality(g);
  ASSERT_EQ(scores.size(), 4u);
  // Regular graph: the principal eigenvector is uniform, so L2
  // normalization gives 1/sqrt(n) everywhere.
  for (double s : scores) EXPECT_NEAR(s, 0.5, 1e-6);
}

TEST(EigenvectorTest, CycleIsUniform) {
  const graph::Graph g = testing::Cycle(8);
  auto scores = EigenvectorCentrality(g);
  ASSERT_EQ(scores.size(), 8u);
  const double expected = 1.0 / std::sqrt(8.0);
  for (double s : scores) EXPECT_NEAR(s, expected, 1e-6);
}

TEST(EigenvectorTest, StarCenterDominates) {
  const graph::Graph g = testing::Star(6);
  auto scores = EigenvectorCentrality(g);
  ASSERT_EQ(scores.size(), 6u);
  for (size_t leaf = 1; leaf < scores.size(); ++leaf) {
    EXPECT_GT(scores[0], scores[leaf]);
    EXPECT_NEAR(scores[leaf], scores[1], 1e-9);  // leaves are symmetric
  }
  // Analytic solution for a star: center = 1/sqrt(2), each of the n-1
  // leaves = 1/sqrt(2(n-1)).
  EXPECT_NEAR(scores[0], 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(scores[1], 1.0 / std::sqrt(10.0), 1e-6);
}

TEST(EigenvectorTest, OutputIsL2NormalizedAndNonNegative) {
  const graph::Graph g = testing::TwoTrianglesWithBridge();
  auto scores = EigenvectorCentrality(g);
  ASSERT_EQ(scores.size(), 6u);
  EXPECT_NEAR(L2Norm(scores), 1.0, 1e-9);
  for (double s : scores) EXPECT_GE(s, 0.0);
}

TEST(EigenvectorTest, IsolatedVerticesScoreZero) {
  // A triangle {0,1,2} plus two isolated vertices.
  const graph::Graph g =
      testing::MustBuild(5, {{0, 1}, {0, 2}, {1, 2}});
  auto scores = EigenvectorCentrality(g);
  ASSERT_EQ(scores.size(), 5u);
  EXPECT_DOUBLE_EQ(scores[3], 0.0);
  EXPECT_DOUBLE_EQ(scores[4], 0.0);
  for (int u = 0; u < 3; ++u) EXPECT_GT(scores[u], 0.0);
}

TEST(EigenvectorTest, MassConcentratesOnDenserComponent) {
  // K4 (spectral radius 3) next to a disjoint edge (spectral radius 1):
  // the standard power-iteration behavior puts all mass on the K4.
  const graph::Graph g = testing::MustBuild(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {4, 5}});
  auto scores = EigenvectorCentrality(g);
  ASSERT_EQ(scores.size(), 6u);
  for (int u = 0; u < 4; ++u) EXPECT_GT(scores[u], 0.1);
  EXPECT_NEAR(scores[4], 0.0, 1e-6);
  EXPECT_NEAR(scores[5], 0.0, 1e-6);
}

}  // namespace
}  // namespace edgeshed::analytics
