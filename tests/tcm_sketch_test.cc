#include "stream/tcm_sketch.h"

#include <gtest/gtest.h>

#include "graph/generators/generators.h"

namespace edgeshed::stream {
namespace {

TcmSketch::Options WideOptions() {
  TcmSketch::Options options;
  options.width = 512;
  options.depth = 4;
  return options;
}

TEST(TcmSketchTest, NeverUnderestimatesEdgeWeight) {
  Rng rng(81);
  graph::Graph g = graph::ErdosRenyi(300, 1000, rng);
  TcmSketch sketch({/*width=*/64, /*depth=*/3, /*seed=*/17});
  for (const graph::Edge& e : g.edges()) sketch.AddEdge(e.u, e.v);
  for (const graph::Edge& e : g.edges()) {
    EXPECT_GE(sketch.EdgeWeight(e.u, e.v), 1.0);
  }
}

TEST(TcmSketchTest, ExactOnSparseStreamWithWideSketch) {
  TcmSketch sketch(WideOptions());
  sketch.AddEdge(1, 2, 5.0);
  sketch.AddEdge(3, 4, 2.0);
  sketch.AddEdge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(sketch.EdgeWeight(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(sketch.EdgeWeight(3, 4), 2.0);
}

TEST(TcmSketchTest, SymmetricQueries) {
  TcmSketch sketch(WideOptions());
  sketch.AddEdge(7, 9, 3.0);
  EXPECT_DOUBLE_EQ(sketch.EdgeWeight(7, 9), sketch.EdgeWeight(9, 7));
}

TEST(TcmSketchTest, NodeWeightAggregatesIncidentEdges) {
  TcmSketch sketch(WideOptions());
  sketch.AddEdge(0, 1, 2.0);
  sketch.AddEdge(0, 2, 3.0);
  sketch.AddEdge(5, 6, 10.0);
  EXPECT_GE(sketch.NodeWeight(0), 5.0);
  // Wide sketch: likely exact.
  EXPECT_NEAR(sketch.NodeWeight(0), 5.0, 1e-9);
}

TEST(TcmSketchTest, SelfEdgeCountsOnceInRow) {
  TcmSketch sketch(WideOptions());
  sketch.AddEdge(4, 4, 2.0);
  EXPECT_DOUBLE_EQ(sketch.NodeWeight(4), 2.0);
  EXPECT_DOUBLE_EQ(sketch.EdgeWeight(4, 4), 2.0);
}

// Regression: with width 1 the two distinct endpoints of an edge collide
// into bucket 0, but each endpoint is still its own incidence — the row sum
// must be 2x the edge weight (handshake lemma), not 1x. Guarding the second
// row credit on the *buckets* instead of the *nodes* dropped it whenever
// distinct endpoints collided.
TEST(TcmSketchTest, CollidingEndpointsBothCreditTheRow) {
  TcmSketch sketch({/*width=*/1, /*depth=*/1, /*seed=*/9});
  sketch.AddEdge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(sketch.NodeWeight(1), 2.0);
  EXPECT_DOUBLE_EQ(sketch.NodeWeight(2), 2.0);
  // A true self-loop in the same bucket is still a single incidence.
  sketch.AddEdge(3, 3, 5.0);
  EXPECT_DOUBLE_EQ(sketch.NodeWeight(3), 7.0);
}

TEST(TcmSketchTest, TotalWeightIsExact) {
  TcmSketch sketch({/*width=*/16, /*depth=*/2, /*seed=*/3});
  Rng rng(82);
  double total = 0.0;
  for (int i = 0; i < 1000; ++i) {
    double w = rng.UniformDouble();
    sketch.AddEdge(static_cast<graph::NodeId>(rng.UniformU64(100)),
                   static_cast<graph::NodeId>(rng.UniformU64(100)), w);
    total += w;
  }
  EXPECT_NEAR(sketch.TotalWeight(), total, 1e-9);
}

TEST(TcmSketchTest, ErrorShrinksWithWidth) {
  Rng rng(83);
  graph::Graph g = graph::BarabasiAlbert(2000, 4, rng);
  auto mean_error = [&](uint32_t width) {
    TcmSketch sketch({width, 3, 17});
    for (const graph::Edge& e : g.edges()) sketch.AddEdge(e.u, e.v);
    double error = 0.0;
    for (const graph::Edge& e : g.edges()) {
      error += sketch.EdgeWeight(e.u, e.v) - 1.0;  // one-sided
    }
    return error / static_cast<double>(g.NumEdges());
  };
  EXPECT_LT(mean_error(512), mean_error(32));
}

TEST(TcmSketchTest, ConstantMemoryRegardlessOfStream) {
  TcmSketch sketch({128, 3, 1});
  const uint64_t cells = sketch.Cells();
  for (int i = 0; i < 10000; ++i) {
    sketch.AddEdge(static_cast<graph::NodeId>(i),
                   static_cast<graph::NodeId>(i + 1));
  }
  EXPECT_EQ(sketch.Cells(), cells);
  EXPECT_EQ(cells, 128ull * 128 * 3);
}

TEST(TcmSketchTest, UnseenEdgeUsuallyZeroOnWideSketch) {
  TcmSketch sketch(WideOptions());
  sketch.AddEdge(1, 2);
  // A completely unrelated pair should read 0 with overwhelming
  // probability at width 512, depth 4.
  EXPECT_DOUBLE_EQ(sketch.EdgeWeight(100, 200), 0.0);
}

TEST(TcmSketchDeathTest, InvalidDimensions) {
  EXPECT_DEATH({ TcmSketch sketch({0, 3, 1}); }, "");
  EXPECT_DEATH({ TcmSketch sketch({16, 0, 1}); }, "");
}

}  // namespace
}  // namespace edgeshed::stream
