#include "analytics/degree.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::PaperExampleGraph;
using ::edgeshed::testing::Star;

TEST(DegreeDistributionTest, StarShape) {
  auto h = DegreeDistribution(Star(10));
  EXPECT_EQ(h.CountFor(9), 1u);   // center
  EXPECT_EQ(h.CountFor(1), 9u);   // leaves
  EXPECT_EQ(h.total(), 10u);
}

TEST(DegreeDistributionTest, PaperExample) {
  auto h = DegreeDistribution(PaperExampleGraph());
  EXPECT_EQ(h.CountFor(1), 7u);
  EXPECT_EQ(h.CountFor(2), 2u);
  EXPECT_EQ(h.CountFor(4), 1u);
  EXPECT_EQ(h.CountFor(7), 1u);
}

TEST(DegreeDistributionTest, IsolatedNodesCountAtZero) {
  auto g = MustBuild(5, {{0, 1}});
  auto h = DegreeDistribution(g);
  EXPECT_EQ(h.CountFor(0), 3u);
  EXPECT_EQ(h.CountFor(1), 2u);
}

TEST(DegreeDistributionTest, CapAggregation) {
  auto h = DegreeDistribution(Star(500), /*cap=*/300);
  EXPECT_EQ(h.CountFor(300), 1u);  // 499-degree hub folded into the cap
  EXPECT_EQ(h.CountFor(499), 0u);
}

TEST(DegreeDistributionTest, FractionsSumToOne) {
  auto h = DegreeDistribution(PaperExampleGraph());
  double sum = 0;
  for (const auto& [key, fraction] : h.Fractions()) sum += fraction;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MaxDegreeTest, Values) {
  EXPECT_EQ(MaxDegree(Star(10)), 9u);
  EXPECT_EQ(MaxDegree(PaperExampleGraph()), 7u);
  EXPECT_EQ(MaxDegree(MustBuild(3, {})), 0u);
  EXPECT_EQ(MaxDegree(graph::Graph()), 0u);
}

}  // namespace
}  // namespace edgeshed::analytics
