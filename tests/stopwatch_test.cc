#include "common/stopwatch.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace edgeshed {
namespace {

TEST(StopwatchTest, StartsAtRoughlyZero) {
  Stopwatch watch;
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, ElapsedGrowsMonotonically) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first + 0.005);
  EXPECT_GE(watch.ElapsedSeconds(), second);
}

TEST(StopwatchTest, MillisMatchSeconds) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  // Two separate now() calls: allow a little skew.
  EXPECT_NEAR(millis, seconds * 1e3, 5.0);
  EXPECT_GE(millis, 5.0);
}

TEST(StopwatchTest, RestartResetsTheOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  const double after = watch.ElapsedSeconds();
  EXPECT_LT(after, before);
  EXPECT_LT(after, 0.015);
}

}  // namespace
}  // namespace edgeshed
