#include "core/crr.h"

#include <gtest/gtest.h>

#include <set>

#include "core/bounds.h"
#include "core/discrepancy.h"
#include "core/random_shedding.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

analytics::BetweennessOptions ExactBetweenness() {
  return analytics::BetweennessOptions::Exact();
}

TEST(CrrTest, KeepsExactlyRoundPTimesEdges) {
  auto g = PaperExampleGraph();
  Crr crr;
  auto result = crr.Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  // [P] = round(0.4 * 11) = 4, as in Example 1.
  EXPECT_EQ(result->kept_edges.size(), 4u);
}

TEST(CrrTest, TargetEdgeCountRounding) {
  auto g = PaperExampleGraph();
  EXPECT_EQ(TargetEdgeCount(g, 0.4), 4u);   // 4.4 -> 4
  EXPECT_EQ(TargetEdgeCount(g, 0.5), 6u);   // 5.5 -> 6 (round half up)
  EXPECT_EQ(TargetEdgeCount(g, 0.9), 10u);  // 9.9 -> 10
}

TEST(CrrTest, RejectsInvalidP) {
  auto g = PaperExampleGraph();
  Crr crr;
  EXPECT_FALSE(crr.Reduce(g, 0.0).ok());
  EXPECT_FALSE(crr.Reduce(g, 1.0).ok());
  EXPECT_FALSE(crr.Reduce(g, -0.3).ok());
  EXPECT_FALSE(crr.Reduce(g, 1.5).ok());
}

TEST(CrrTest, KeptEdgesAreValidAndUnique) {
  Rng rng(41);
  auto g = graph::BarabasiAlbert(300, 3, rng);
  Crr crr;
  auto result = crr.Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  std::set<graph::EdgeId> unique(result->kept_edges.begin(),
                                 result->kept_edges.end());
  EXPECT_EQ(unique.size(), result->kept_edges.size());
  for (graph::EdgeId e : result->kept_edges) EXPECT_LT(e, g.NumEdges());
}

TEST(CrrTest, ReportedDeltaMatchesRecomputation) {
  Rng rng(42);
  auto g = graph::ErdosRenyi(200, 600, rng);
  Crr crr;
  auto result = crr.Reduce(g, 0.3);
  ASSERT_TRUE(result.ok());
  DegreeDiscrepancy d(g, 0.3);
  for (graph::EdgeId e : result->kept_edges) {
    d.AddEdge(g.edge(e).u, g.edge(e).v);
  }
  EXPECT_NEAR(result->total_delta, d.RecomputeTotalDelta(), 1e-6);
  EXPECT_NEAR(result->average_delta,
              result->total_delta / static_cast<double>(g.NumNodes()), 1e-9);
}

TEST(CrrTest, RewiringNeverWorsensInitialDelta) {
  Rng rng(43);
  auto g = graph::BarabasiAlbert(400, 4, rng);
  // Phase-1-only run (steps = 0).
  CrrOptions no_rewiring;
  no_rewiring.steps_override = 0;
  no_rewiring.betweenness = ExactBetweenness();
  auto initial = Crr(no_rewiring).Reduce(g, 0.5);
  ASSERT_TRUE(initial.ok());

  CrrOptions with_rewiring;
  with_rewiring.betweenness = ExactBetweenness();
  auto rewired = Crr(with_rewiring).Reduce(g, 0.5);
  ASSERT_TRUE(rewired.ok());
  EXPECT_LE(rewired->total_delta, initial->total_delta);
  EXPECT_EQ(rewired->kept_edges.size(), initial->kept_edges.size());
}

TEST(CrrTest, MoreStepsDoNotWorsenDelta) {
  Rng rng(44);
  auto g = graph::BarabasiAlbert(300, 3, rng);
  double previous = 1e100;
  for (uint64_t steps : {0ull, 100ull, 1000ull, 10000ull}) {
    CrrOptions options;
    options.steps_override = steps;
    options.betweenness = ExactBetweenness();
    options.seed = 7;  // shared seed: swap sequence is a prefix
    auto result = Crr(options).Reduce(g, 0.4);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->total_delta, previous + 1e-9);
    previous = result->total_delta;
  }
}

TEST(CrrTest, SatisfiesTheoremOneBound) {
  Rng rng(45);
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto g = graph::BarabasiAlbert(300, 4, rng);
    Crr crr;
    auto result = crr.Reduce(g, p);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->average_delta, CrrAverageDeltaBound(g, p))
        << "p = " << p;
  }
}

TEST(CrrTest, StepsFormulaMatchesPaper) {
  auto g = PaperExampleGraph();
  Crr crr;  // default multiplier 10
  // steps = round(10 * 0.4 * 11) = 44, as computed in Example 1.
  EXPECT_EQ(crr.StepsFor(g, 0.4), 44u);
}

TEST(CrrTest, StepsOverrideWins) {
  auto g = PaperExampleGraph();
  CrrOptions options;
  options.steps_override = 5;
  EXPECT_EQ(Crr(options).StepsFor(g, 0.4), 5u);
}

TEST(CrrTest, DeterministicGivenSeed) {
  Rng rng(46);
  auto g = graph::ErdosRenyi(150, 450, rng);
  Crr crr;
  auto a = crr.Reduce(g, 0.5);
  auto b = crr.Reduce(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kept_edges, b->kept_edges);
  EXPECT_DOUBLE_EQ(a->total_delta, b->total_delta);
}

TEST(CrrTest, DifferentSeedsCanDiffer) {
  Rng rng(47);
  auto g = graph::ErdosRenyi(150, 450, rng);
  CrrOptions o1;
  o1.seed = 1;
  CrrOptions o2;
  o2.seed = 2;
  auto a = Crr(o1).Reduce(g, 0.5);
  auto b = Crr(o2).Reduce(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same size always; content typically differs.
  EXPECT_EQ(a->kept_edges.size(), b->kept_edges.size());
}

TEST(CrrTest, RandomInitStillMeetsBound) {
  Rng rng(48);
  auto g = graph::BarabasiAlbert(300, 3, rng);
  CrrOptions options;
  options.init_mode = CrrOptions::InitMode::kRandom;
  auto result = Crr(options).Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), TargetEdgeCount(g, 0.4));
  EXPECT_LT(result->average_delta, CrrAverageDeltaBound(g, 0.4));
}

TEST(CrrTest, BetweennessInitBeatsRandomInitBeforeRewiring) {
  // With steps = 0, Phase 1 alone decides quality of *connectivity*; on
  // degree discrepancy, betweenness init keeps hub edges so Δ is usually
  // different from random — here we simply document both produce the same
  // edge count and valid results.
  Rng rng(49);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  CrrOptions betweenness_init;
  betweenness_init.steps_override = 0;
  betweenness_init.betweenness = ExactBetweenness();
  CrrOptions random_init;
  random_init.steps_override = 0;
  random_init.init_mode = CrrOptions::InitMode::kRandom;
  auto a = Crr(betweenness_init).Reduce(g, 0.5);
  auto b = Crr(random_init).Reduce(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kept_edges.size(), b->kept_edges.size());
}

TEST(CrrTest, CrrBeatsRandomSheddingOnDelta) {
  Rng rng(50);
  auto g = graph::BarabasiAlbert(400, 4, rng);
  auto crr_result = Crr().Reduce(g, 0.5);
  auto random_result = RandomShedding().Reduce(g, 0.5);
  ASSERT_TRUE(crr_result.ok());
  ASSERT_TRUE(random_result.ok());
  EXPECT_LT(crr_result->total_delta, random_result->total_delta);
}

TEST(CrrTest, ZeroDeltaSwapOptionAccepts) {
  Rng rng(51);
  auto g = graph::ErdosRenyi(100, 300, rng);
  CrrOptions options;
  options.accept_zero_delta_swaps = true;
  auto result = Crr(options).Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), TargetEdgeCount(g, 0.5));
}

TEST(CrrTest, StatsArePopulated) {
  auto g = PaperExampleGraph();
  auto result = Crr().Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  bool has_steps = false;
  bool has_accepted = false;
  for (const auto& [key, value] : result->stats) {
    if (key == "steps") {
      has_steps = true;
      EXPECT_DOUBLE_EQ(value, 44.0);
    }
    if (key == "swaps_accepted") has_accepted = true;
  }
  EXPECT_TRUE(has_steps);
  EXPECT_TRUE(has_accepted);
  EXPECT_GE(result->reduction_seconds, 0.0);
}

TEST(CrrTest, SmallPAndLargePExtremes) {
  Rng rng(52);
  auto g = graph::ErdosRenyi(100, 300, rng);
  auto low = Crr().Reduce(g, 0.01);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->kept_edges.size(), 3u);  // round(0.01 * 300)
  auto high = Crr().Reduce(g, 0.99);
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high->kept_edges.size(), 297u);
}

TEST(CrrTest, NameIsStable) {
  EXPECT_EQ(Crr().name(), "crr");
}

}  // namespace
}  // namespace edgeshed::core
