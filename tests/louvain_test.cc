#include "analytics/louvain.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::MustBuild;

/// Two k-cliques joined by one bridge edge.
graph::Graph TwoCliquesBridged(int k) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < static_cast<graph::NodeId>(k); ++u) {
    for (graph::NodeId v = u + 1; v < static_cast<graph::NodeId>(k); ++v) {
      edges.push_back({u, v});
      edges.push_back({static_cast<graph::NodeId>(u + k),
                       static_cast<graph::NodeId>(v + k)});
    }
  }
  edges.push_back({static_cast<graph::NodeId>(k - 1),
                   static_cast<graph::NodeId>(k)});
  return edgeshed::testing::MustBuild(2 * k, std::move(edges));
}

TEST(ModularityTest, SingleCommunityIsZero) {
  auto g = Clique(5);
  std::vector<uint32_t> one(5, 0);
  EXPECT_NEAR(Modularity(g, one), 0.0, 1e-12);
}

TEST(ModularityTest, PerfectSplitOfDisconnectedCliques) {
  // Two disconnected triangles, split correctly: Q = 1/2.
  auto g = MustBuild(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  std::vector<uint32_t> split{0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(Modularity(g, split), 0.5, 1e-12);
}

TEST(ModularityTest, BadPartitionIsNegative) {
  auto g = MustBuild(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  // Mix the triangles: every edge crosses.
  std::vector<uint32_t> bad{0, 1, 0, 1, 0, 1};
  EXPECT_LT(Modularity(g, bad), 0.0);
}

TEST(ModularityTest, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(Modularity(graph::Graph(), {}), 0.0);
}

TEST(LouvainTest, SeparatesBridgedCliques) {
  auto g = TwoCliquesBridged(8);
  auto result = Louvain(g);
  EXPECT_EQ(result.num_communities, 2u);
  // Each clique uniform.
  for (int u = 1; u < 8; ++u) {
    EXPECT_EQ(result.community[u], result.community[0]);
  }
  for (int u = 9; u < 16; ++u) {
    EXPECT_EQ(result.community[u], result.community[8]);
  }
  EXPECT_NE(result.community[0], result.community[8]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(LouvainTest, RecoversPlantedPartition) {
  Rng rng(95);
  const uint32_t k = 4;
  auto g = graph::PlantedPartition(400, k, 0.25, 0.005, rng);
  auto result = Louvain(g);
  // Count label purity per planted block.
  const graph::NodeId block = 100;
  uint32_t agreements = 0;
  for (uint32_t b = 0; b < k; ++b) {
    std::map<uint32_t, uint32_t> votes;
    for (graph::NodeId u = b * block; u < (b + 1) * block; ++u) {
      ++votes[result.community[u]];
    }
    uint32_t best = 0;
    for (const auto& [label, count] : votes) best = std::max(best, count);
    agreements += best;
  }
  EXPECT_GT(agreements, 360u);  // >90% purity
  EXPECT_GT(result.modularity, 0.4);
}

TEST(LouvainTest, CliqueCollapsesToOneCommunity) {
  auto result = Louvain(Clique(10));
  EXPECT_EQ(result.num_communities, 1u);
}

TEST(LouvainTest, DisconnectedComponentsSeparate) {
  auto g = MustBuild(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  auto result = Louvain(g);
  EXPECT_EQ(result.num_communities, 2u);
  EXPECT_NEAR(result.modularity, 0.5, 1e-9);
}

TEST(LouvainTest, LabelsAreDense) {
  Rng rng(96);
  auto g = graph::BarabasiAlbert(300, 3, rng);
  auto result = Louvain(g);
  std::set<uint32_t> labels(result.community.begin(),
                            result.community.end());
  EXPECT_EQ(labels.size(), result.num_communities);
  for (uint32_t label : labels) EXPECT_LT(label, result.num_communities);
}

TEST(LouvainTest, DeterministicGivenSeed) {
  Rng rng(97);
  auto g = graph::PlantedPartition(200, 4, 0.2, 0.01, rng);
  auto a = Louvain(g);
  auto b = Louvain(g);
  EXPECT_EQ(a.community, b.community);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(LouvainTest, ModularityFieldMatchesRecomputation) {
  Rng rng(98);
  auto g = graph::WattsStrogatz(200, 6, 0.1, rng);
  auto result = Louvain(g);
  EXPECT_NEAR(result.modularity, Modularity(g, result.community), 1e-9);
}

TEST(LouvainTest, EdgelessGraphAllSingletons) {
  auto g = MustBuild(5, {});
  auto result = Louvain(g);
  EXPECT_EQ(result.num_communities, 5u);
  EXPECT_DOUBLE_EQ(result.modularity, 0.0);
}

TEST(LouvainTest, EmptyGraph) {
  auto result = Louvain(graph::Graph());
  EXPECT_EQ(result.num_communities, 0u);
}

}  // namespace
}  // namespace edgeshed::analytics
