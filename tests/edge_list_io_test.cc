#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace edgeshed::graph {
namespace {

class EdgeListIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(EdgeListIoTest, LoadsSnapFormat) {
  const std::string path = TempPath("snap.txt");
  WriteFile(path,
            "# Directed graph (each unordered pair of nodes is saved once)\n"
            "# FromNodeId\tToNodeId\n"
            "100\t200\n"
            "200\t300\n"
            "100\t300\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumNodes(), 3u);
  EXPECT_EQ(loaded->graph.NumEdges(), 3u);
  EXPECT_EQ(loaded->original_ids.size(), 3u);
  EXPECT_EQ(loaded->original_ids[0], 100u);
}

TEST_F(EdgeListIoTest, CollapsesDirectedDuplicates) {
  const std::string path = TempPath("dups.txt");
  WriteFile(path, "1 2\n2 1\n1 2\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 1u);
}

TEST_F(EdgeListIoTest, DropsSelfLoops) {
  const std::string path = TempPath("loops.txt");
  WriteFile(path, "1 1\n1 2\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 1u);
}

TEST_F(EdgeListIoTest, SkipsCommentAndBlankLines) {
  const std::string path = TempPath("comments.txt");
  WriteFile(path, "# comment\n% other comment\n\n   \n0 1\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 1u);
}

TEST_F(EdgeListIoTest, MissingFileIsIOError) {
  auto loaded = LoadEdgeList(TempPath("does_not_exist.txt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(EdgeListIoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EdgeListIoTest, ParseErrorReportsLineNumberAndSnippet) {
  const std::string path = TempPath("bad_line.txt");
  WriteFile(path, "# header\n0 1\n1 2\nbogus line here\n2 3\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find(path + ":4:"), std::string::npos) << message;
  EXPECT_NE(message.find("bogus line here"), std::string::npos) << message;
}

TEST_F(EdgeListIoTest, ParseErrorTruncatesLongLines) {
  const std::string path = TempPath("bad_long_line.txt");
  const std::string junk(300, 'x');
  WriteFile(path, "0 1\n" + junk + "\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find(path + ":2:"), std::string::npos) << message;
  EXPECT_NE(message.find("..."), std::string::npos) << message;
  EXPECT_LT(message.size(), 200u) << message;
}

TEST_F(EdgeListIoTest, FirstBadLineWinsWhenSeveralAreMalformed) {
  const std::string path = TempPath("two_bad.txt");
  WriteFile(path, "0 1\nfirst bad\n1 2\nsecond bad\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find(":2:"), std::string::npos) << message;
  EXPECT_NE(message.find("first bad"), std::string::npos) << message;
}

// Regression: "-1" used to be accepted via unsigned wrap (istream-style
// modulo 2^64), silently creating node id 18446744073709551615. Negative
// ids must be a parse error, with the line number reported.
TEST_F(EdgeListIoTest, NegativeIdIsInvalidArgumentNotWrapped) {
  const std::string path = TempPath("negative.txt");
  WriteFile(path, "0 1\n-1 5\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find(":2:"), std::string::npos) << message;
  EXPECT_NE(message.find("-1 5"), std::string::npos) << message;
}

TEST_F(EdgeListIoTest, ExplicitPlusSignIsAccepted) {
  const std::string path = TempPath("plus.txt");
  WriteFile(path, "+3 4\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumNodes(), 2u);
  EXPECT_EQ(loaded->graph.NumEdges(), 1u);
  EXPECT_EQ(loaded->original_ids[0], 3u);
  EXPECT_EQ(loaded->original_ids[1], 4u);
}

TEST_F(EdgeListIoTest, LoneSignWithoutDigitsIsAnError) {
  const std::string path = TempPath("lone_sign.txt");
  WriteFile(path, "- 2\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EdgeListIoTest, MissingSecondFieldIsAnError) {
  const std::string path = TempPath("one_field.txt");
  WriteFile(path, "0 1\n42\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find(":2:"), std::string::npos);
}

TEST_F(EdgeListIoTest, EmptyFileYieldsEmptyGraph) {
  const std::string path = TempPath("empty.txt");
  WriteFile(path, "");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumNodes(), 0u);
  EXPECT_EQ(loaded->graph.NumEdges(), 0u);
}

TEST_F(EdgeListIoTest, FileWithoutTrailingNewlineParses) {
  const std::string path = TempPath("no_trailing_newline.txt");
  WriteFile(path, "0 1\n1 2");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumEdges(), 2u);
}

TEST_F(EdgeListIoTest, ExtraColumnsIgnored) {
  const std::string path = TempPath("extra.txt");
  WriteFile(path, "0 1 42 annotation\n1 2 7\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumEdges(), 2u);
}

TEST_F(EdgeListIoTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roundtrip.txt");
  auto original = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveEdgeList(*original, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumNodes(), original->NumNodes());
  EXPECT_EQ(loaded->graph.NumEdges(), original->NumEdges());
}

TEST_F(EdgeListIoTest, SaveToUnwritablePathFails) {
  auto g = Graph::FromEdges(2, {{0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(SaveEdgeList(*g, "/nonexistent_dir_xyz/out.txt").ok());
}

TEST_F(EdgeListIoTest, SparseIdsAreRemappedDensely) {
  const std::string path = TempPath("sparse.txt");
  WriteFile(path, "1000000 2000000\n2000000 3000000\n");
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph.NumNodes(), 3u);
  EXPECT_EQ(loaded->original_ids[2], 3000000u);
}

}  // namespace
}  // namespace edgeshed::graph
