#include "embedding/skipgram.h"

#include <gtest/gtest.h>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::embedding {
namespace {

using ::edgeshed::testing::MustBuild;

/// Two 8-cliques joined by a single bridge edge — embeddings should place
/// same-clique vertices closer than cross-clique vertices.
graph::Graph TwoCliques() {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < 8; ++u) {
    for (graph::NodeId v = u + 1; v < 8; ++v) edges.push_back({u, v});
  }
  for (graph::NodeId u = 8; u < 16; ++u) {
    for (graph::NodeId v = u + 1; v < 16; ++v) edges.push_back({u, v});
  }
  edges.push_back({7, 8});
  return edgeshed::testing::MustBuild(16, std::move(edges));
}

TEST(SkipGramTest, OutputShape) {
  auto g = TwoCliques();
  WalkOptions walk_options;
  walk_options.walks_per_node = 5;
  walk_options.walk_length = 10;
  auto corpus = GenerateWalks(g, walk_options);
  SkipGramOptions options;
  options.dimensions = 16;
  auto embeddings = TrainSkipGram(g, corpus, options);
  EXPECT_EQ(embeddings.dimensions, 16u);
  EXPECT_EQ(embeddings.NumNodes(), 16u);
  EXPECT_EQ(embeddings.vectors.size(), 16u * 16u);
}

TEST(SkipGramTest, TrainingMovesVectors) {
  auto g = TwoCliques();
  auto corpus = GenerateWalks(g, {});
  SkipGramOptions options;
  options.dimensions = 8;
  options.epochs = 1;
  auto trained = TrainSkipGram(g, corpus, options);
  // Untrained baseline: empty corpus leaves initialization untouched.
  WalkCorpus empty;
  empty.offsets.push_back(0);
  auto untrained = TrainSkipGram(g, empty, options);
  EXPECT_NE(trained.vectors, untrained.vectors);
}

TEST(SkipGramTest, CommunityStructureSeparates) {
  auto g = TwoCliques();
  WalkOptions walk_options;
  walk_options.walks_per_node = 20;
  walk_options.walk_length = 20;
  walk_options.threads = 1;
  auto corpus = GenerateWalks(g, walk_options);
  SkipGramOptions options;
  options.dimensions = 32;
  options.epochs = 3;
  options.threads = 1;
  auto embeddings = TrainSkipGram(g, corpus, options);
  // Average same-clique similarity should exceed cross-clique similarity.
  double same = 0.0;
  double cross = 0.0;
  int same_n = 0;
  int cross_n = 0;
  for (graph::NodeId a = 0; a < 16; ++a) {
    for (graph::NodeId b = a + 1; b < 16; ++b) {
      const bool same_clique = (a < 8) == (b < 8);
      const double sim = CosineSimilarity(embeddings, a, b);
      if (same_clique) {
        same += sim;
        ++same_n;
      } else {
        cross += sim;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST(SkipGramTest, SingleThreadDeterministic) {
  auto g = TwoCliques();
  WalkOptions walk_options;
  walk_options.threads = 1;
  auto corpus = GenerateWalks(g, walk_options);
  SkipGramOptions options;
  options.threads = 1;
  options.dimensions = 8;
  auto a = TrainSkipGram(g, corpus, options);
  auto b = TrainSkipGram(g, corpus, options);
  EXPECT_EQ(a.vectors, b.vectors);
}

TEST(SkipGramTest, CosineSimilarityBounds) {
  auto g = TwoCliques();
  auto corpus = GenerateWalks(g, {});
  SkipGramOptions options;
  options.dimensions = 8;
  auto embeddings = TrainSkipGram(g, corpus, options);
  for (graph::NodeId a = 0; a < 16; ++a) {
    for (graph::NodeId b = 0; b < 16; ++b) {
      float sim = CosineSimilarity(embeddings, a, b);
      EXPECT_GE(sim, -1.0f - 1e-5f);
      EXPECT_LE(sim, 1.0f + 1e-5f);
    }
  }
  EXPECT_NEAR(CosineSimilarity(embeddings, 3, 3), 1.0f, 1e-5f);
}

TEST(SkipGramTest, EdgelessGraphKeepsInitialization) {
  auto g = MustBuild(4, {});
  WalkCorpus corpus;
  corpus.offsets.push_back(0);
  SkipGramOptions options;
  options.dimensions = 4;
  auto embeddings = TrainSkipGram(g, corpus, options);
  EXPECT_EQ(embeddings.NumNodes(), 4u);
}

}  // namespace
}  // namespace edgeshed::embedding
