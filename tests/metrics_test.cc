#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "core/crr.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::eval {
namespace {

using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Star;

TEST(TopPercentNodesTest, TakesRoundedPercent) {
  std::vector<double> scores(100);
  for (int i = 0; i < 100; ++i) scores[i] = i;
  auto top = TopPercentNodes(scores, 10.0);
  ASSERT_EQ(top.size(), 10u);
  EXPECT_EQ(top[0], 99u);
  EXPECT_EQ(top[9], 90u);
}

TEST(TopPercentNodesTest, EligibleFilterShrinksPool) {
  std::vector<double> scores{5, 4, 3, 2, 1, 0, 0, 0, 0, 0};
  std::vector<bool> eligible(10, false);
  for (int i = 0; i < 5; ++i) eligible[i] = true;
  // Pool is 5 nodes; 20% of 5 = 1.
  auto top = TopPercentNodes(scores, 20.0, &eligible);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 0u);
}

TEST(TopPercentNodesTest, TiesBrokenByIndex) {
  std::vector<double> scores(10, 1.0);
  auto top = TopPercentNodes(scores, 30.0);
  EXPECT_EQ(top, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(TopPercentNodesTest, EmptyScores) {
  EXPECT_TRUE(TopPercentNodes({}, 10.0).empty());
}

TEST(OverlapUtilityTest, Values) {
  EXPECT_DOUBLE_EQ(OverlapUtility({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapUtility({1, 2, 3}, {4, 5, 6}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapUtility({1, 2, 3, 4}, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapUtility({}, {1}), 0.0);
}

TEST(NonIsolatedCountTest, CountsNodesWithEdges) {
  auto g = MustBuild(5, {{0, 1}});
  EXPECT_EQ(NonIsolatedCount(g), 2u);
  EXPECT_EQ(NonIsolatedCount(MustBuild(3, {})), 0u);
}

TEST(TopKUtilityForReducedTest, IdenticalGraphScoresOne) {
  Rng rng(111);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  EXPECT_DOUBLE_EQ(TopKUtilityForReduced(g, g, 10.0), 1.0);
}

TEST(TopKUtilityForReducedTest, EmptyReducedScoresZero) {
  Rng rng(112);
  auto g = graph::BarabasiAlbert(100, 3, rng);
  auto empty = MustBuild(100, {});
  EXPECT_DOUBLE_EQ(TopKUtilityForReduced(g, empty, 10.0), 0.0);
}

TEST(TopKUtilityForReducedTest, GoodReductionScoresHigh) {
  Rng rng(113);
  auto g = graph::BarabasiAlbert(500, 4, rng);
  auto result = core::Crr().Reduce(g, 0.8);
  ASSERT_TRUE(result.ok());
  auto reduced = result->BuildReducedGraph(g);
  EXPECT_GT(TopKUtilityForReduced(g, reduced, 10.0), 0.6);
}

TEST(TopKUtilityForReducedTest, UtilityWithinUnitInterval) {
  Rng rng(114);
  auto g = graph::ErdosRenyi(200, 600, rng);
  auto result = core::Crr().Reduce(g, 0.3);
  ASSERT_TRUE(result.ok());
  double utility = TopKUtilityForReduced(g, result->BuildReducedGraph(g), 10.0);
  EXPECT_GE(utility, 0.0);
  EXPECT_LE(utility, 1.0);
}

TEST(TopKUtilityForUdsTest, SingletonSummaryIsPerfect) {
  // A UDS summary where every vertex is its own supernode and the summary
  // graph equals the original reproduces the original ranking exactly.
  Rng rng(115);
  auto g = graph::BarabasiAlbert(100, 3, rng);
  baseline::UdsSummary summary;
  summary.supernode_of.resize(100);
  for (uint32_t u = 0; u < 100; ++u) {
    summary.supernode_of[u] = u;
    summary.members.push_back({u});
  }
  summary.summary_graph = g;
  EXPECT_DOUBLE_EQ(TopKUtilityForUds(g, summary, 10.0), 1.0);
}

}  // namespace
}  // namespace edgeshed::eval
