#include "analytics/components.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;

TEST(ComponentsTest, SingleComponent) {
  auto g = Path(6);
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.NumComponents(), 1u);
  EXPECT_EQ(result.sizes[0], 6u);
}

TEST(ComponentsTest, TwoComponents) {
  auto g = MustBuild(5, {{0, 1}, {2, 3}});
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.NumComponents(), 3u);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(result.component[0], result.component[1]);
  EXPECT_EQ(result.component[2], result.component[3]);
  EXPECT_NE(result.component[0], result.component[2]);
  EXPECT_NE(result.component[4], result.component[0]);
}

TEST(ComponentsTest, IsolatedVerticesAreSingletons) {
  auto g = MustBuild(4, {});
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.NumComponents(), 4u);
  for (uint64_t size : result.sizes) EXPECT_EQ(size, 1u);
}

TEST(ComponentsTest, SizesSumToNodeCount) {
  auto g = MustBuild(10, {{0, 1}, {1, 2}, {4, 5}, {7, 8}, {8, 9}});
  auto result = ConnectedComponents(g);
  uint64_t total = 0;
  for (uint64_t size : result.sizes) total += size;
  EXPECT_EQ(total, 10u);
}

TEST(ComponentsTest, LargestComponent) {
  auto g = MustBuild(7, {{0, 1}, {1, 2}, {2, 3}, {5, 6}});
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.sizes[result.LargestComponent()], 4u);
}

TEST(ComponentsTest, CliqueIsOneComponent) {
  auto result = ConnectedComponents(Clique(8));
  EXPECT_EQ(result.NumComponents(), 1u);
}

TEST(ComponentsTest, ComponentIdsAreDense) {
  auto g = MustBuild(6, {{0, 5}, {1, 4}});
  auto result = ConnectedComponents(g);
  for (uint32_t id : result.component) {
    EXPECT_LT(id, result.NumComponents());
  }
}

TEST(ComponentsTest, EmptyGraph) {
  graph::Graph g;
  auto result = ConnectedComponents(g);
  EXPECT_EQ(result.NumComponents(), 0u);
}

}  // namespace
}  // namespace edgeshed::analytics
