#include "core/extra_baselines.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analytics/components.h"
#include "core/shedding.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::PaperExampleGraph;
using ::edgeshed::testing::Star;

TEST(LocalDegreeTest, EveryVertexKeepsItsQuota) {
  Rng rng(5);
  auto g = graph::BarabasiAlbert(300, 4, rng);
  const double p = 0.4;
  auto result = LocalDegreeShedding().Reduce(g, p);
  ASSERT_TRUE(result.ok());
  graph::Graph reduced = result->BuildReducedGraph(g);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) == 0) continue;
    const auto quota = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(g.Degree(u))));
    EXPECT_GE(reduced.Degree(u), std::min<uint64_t>(quota, g.Degree(u)))
        << "node " << u;
  }
}

TEST(LocalDegreeTest, NoIsolatedVerticesProduced) {
  Rng rng(6);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  auto result = LocalDegreeShedding().Reduce(g, 0.2);
  ASSERT_TRUE(result.ok());
  graph::Graph reduced = result->BuildReducedGraph(g);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0) {
      EXPECT_GT(reduced.Degree(u), 0u);
    }
  }
}

TEST(LocalDegreeTest, TypicallyOvershootsTarget) {
  Rng rng(7);
  auto g = graph::BarabasiAlbert(300, 4, rng);
  auto result = LocalDegreeShedding().Reduce(g, 0.3);
  ASSERT_TRUE(result.ok());
  // Union of per-node nominations exceeds round(p|E|) — documented behavior.
  EXPECT_GE(result->kept_edges.size(), TargetEdgeCount(g, 0.3));
}

TEST(LocalDegreeTest, Deterministic) {
  Rng rng(8);
  auto g = graph::ErdosRenyi(150, 450, rng);
  auto a = LocalDegreeShedding().Reduce(g, 0.5);
  auto b = LocalDegreeShedding().Reduce(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kept_edges, b->kept_edges);
}

TEST(LocalDegreeTest, RejectsInvalidP) {
  auto g = PaperExampleGraph();
  EXPECT_FALSE(LocalDegreeShedding().Reduce(g, 0.0).ok());
  EXPECT_FALSE(LocalDegreeShedding().Reduce(g, 1.2).ok());
}

TEST(SpanningForestTest, PreservesConnectivity) {
  Rng rng(9);
  auto g = graph::BarabasiAlbert(400, 3, rng);  // connected by construction
  for (double p : {0.1, 0.3, 0.6}) {
    auto result = SpanningForestShedding().Reduce(g, p);
    ASSERT_TRUE(result.ok());
    graph::Graph reduced = result->BuildReducedGraph(g);
    auto components = analytics::ConnectedComponents(reduced);
    EXPECT_EQ(components.NumComponents(), 1u) << "p = " << p;
  }
}

TEST(SpanningForestTest, HitsTargetWhenForestFits) {
  Rng rng(10);
  auto g = graph::ErdosRenyi(200, 2000, rng);  // dense: forest << p|E|
  auto result = SpanningForestShedding().Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), TargetEdgeCount(g, 0.5));
}

TEST(SpanningForestTest, ForestDominatesWhenTargetTooSmall) {
  // Tree input: forest = |E|; any p keeps the whole tree.
  auto g = Star(50);
  auto result = SpanningForestShedding().Reduce(g, 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), 49u);
}

TEST(SpanningForestTest, MultiComponentForest) {
  auto g = edgeshed::testing::MustBuild(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  auto result = SpanningForestShedding().Reduce(g, 0.6);
  ASSERT_TRUE(result.ok());
  graph::Graph reduced = result->BuildReducedGraph(g);
  auto components = analytics::ConnectedComponents(reduced);
  EXPECT_EQ(components.NumComponents(), 2u);
}

TEST(SpanningForestTest, KeptEdgesUnique) {
  Rng rng(11);
  auto g = graph::ErdosRenyi(100, 400, rng);
  auto result = SpanningForestShedding().Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  std::set<graph::EdgeId> unique(result->kept_edges.begin(),
                                 result->kept_edges.end());
  EXPECT_EQ(unique.size(), result->kept_edges.size());
}

TEST(SpanningForestTest, DeterministicBySeed) {
  Rng rng(12);
  auto g = graph::ErdosRenyi(100, 300, rng);
  auto a = SpanningForestShedding(3).Reduce(g, 0.5);
  auto b = SpanningForestShedding(3).Reduce(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kept_edges, b->kept_edges);
}

TEST(ExtraBaselinesTest, NamesAreStable) {
  EXPECT_EQ(LocalDegreeShedding().name(), "local-degree");
  EXPECT_EQ(SpanningForestShedding().name(), "spanning-forest");
}

}  // namespace
}  // namespace edgeshed::core
