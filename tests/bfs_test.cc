#include "analytics/bfs.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;
using ::edgeshed::testing::Star;

TEST(BfsTest, PathDistances) {
  auto g = Path(5);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST(BfsTest, PathFromMiddle) {
  auto g = Path(5);
  auto dist = BfsDistances(g, 2);
  EXPECT_EQ(dist, (std::vector<int32_t>{2, 1, 0, 1, 2}));
}

TEST(BfsTest, CycleWrapsAround) {
  auto g = Cycle(6);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<int32_t>{0, 1, 2, 3, 2, 1}));
}

TEST(BfsTest, StarIsDepthOneFromCenter) {
  auto g = Star(8);
  auto dist = BfsDistances(g, 0);
  for (graph::NodeId u = 1; u < 8; ++u) EXPECT_EQ(dist[u], 1);
}

TEST(BfsTest, StarIsDepthTwoBetweenLeaves) {
  auto g = Star(8);
  auto dist = BfsDistances(g, 3);
  EXPECT_EQ(dist[0], 1);
  for (graph::NodeId u = 1; u < 8; ++u) {
    if (u != 3) EXPECT_EQ(dist[u], 2);
  }
}

TEST(BfsTest, DisconnectedComponentUnreachable) {
  auto g = MustBuild(5, {{0, 1}, {2, 3}});
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsTest, IsolatedSource) {
  auto g = MustBuild(3, {{0, 1}});
  auto dist = BfsDistances(g, 2);
  EXPECT_EQ(dist[2], 0);
  EXPECT_EQ(dist[0], kUnreachable);
}

TEST(BfsTest, CliqueAllAtDistanceOne) {
  auto g = Clique(6);
  auto dist = BfsDistances(g, 0);
  for (graph::NodeId u = 1; u < 6; ++u) EXPECT_EQ(dist[u], 1);
}

TEST(BfsTest, ScratchReuseMatchesFresh) {
  auto g = Cycle(10);
  std::vector<int32_t> distances;
  std::vector<graph::NodeId> queue;
  BfsDistancesInto(g, 4, &distances, &queue);
  EXPECT_EQ(distances, BfsDistances(g, 4));
  // Reuse the scratch for another source.
  BfsDistancesInto(g, 7, &distances, &queue);
  EXPECT_EQ(distances, BfsDistances(g, 7));
}

TEST(BfsTest, QueueContainsExactlyReachableNodes) {
  auto g = MustBuild(6, {{0, 1}, {1, 2}, {3, 4}});
  std::vector<int32_t> distances;
  std::vector<graph::NodeId> queue;
  BfsDistancesInto(g, 0, &distances, &queue);
  EXPECT_EQ(queue.size(), 3u);  // 0, 1, 2
}

}  // namespace
}  // namespace edgeshed::analytics
