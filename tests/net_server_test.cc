// End-to-end tests for src/net/server.h against a real RpcServer on an
// ephemeral loopback port: the full client path (Ping/List/Shed/Wait/
// Status/Cancel), the load-bearing equivalence claim — a Shed over TCP
// returns byte-for-byte the same result as the same job run in-process —
// and the overload/robustness contracts (admission control answers
// ResourceExhausted instead of hanging; malformed frames get an error frame
// and a counted close, never a crash).

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/shedder_factory.h"
#include "graph/binary_io.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "testing/test_graphs.h"

namespace edgeshed::net {
namespace {

using edgeshed::testing::Clique;
using std::chrono::milliseconds;

/// One store + scheduler + server on an ephemeral port, with a 40-node
/// clique registered as "clique" (deterministic, big enough that shedding
/// does real work: 780 edges).
class RpcServerTest : public ::testing::Test {
 protected:
  void SetUp() override { StartServer(RpcServerOptions{}); }

  void StartServer(RpcServerOptions options) {
    service::JobScheduler::Options scheduler_options;
    scheduler_options.workers = 2;
    StartServer(options, scheduler_options);
  }

  void StartServer(RpcServerOptions options,
                   service::JobScheduler::Options scheduler_options) {
    server_.reset();
    scheduler_.reset();
    store_.reset();

    store_ = std::make_unique<service::GraphStore>(
        service::GraphStoreOptions{}, &metrics_);
    ASSERT_TRUE(store_
                    ->Register("clique",
                               [] { return StatusOr<graph::Graph>(
                                        Clique(40)); })
                    .ok());

    scheduler_ = std::make_unique<service::JobScheduler>(
        store_.get(), &metrics_, scheduler_options);

    options.port = 0;
    server_ = std::make_unique<RpcServer>(store_.get(), scheduler_.get(),
                                          &metrics_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  RpcClient MakeClient(int max_attempts = 1) {
    RpcClientOptions options;
    options.port = server_->port();
    options.max_attempts = max_attempts;
    options.backoff_initial = milliseconds(10);
    options.backoff_max = milliseconds(50);
    return RpcClient(options);
  }

  uint64_t Counter(const std::string& name) {
    return metrics_.GetCounter(name)->Value();
  }

  /// Registers a dataset whose loader sleeps before producing a small
  /// clique, so a job on it reliably outlives timeouts under test.
  void RegisterSlowDataset(const std::string& name, milliseconds delay) {
    ASSERT_TRUE(store_
                    ->Register(name,
                               [delay] {
                                 std::this_thread::sleep_for(delay);
                                 return StatusOr<graph::Graph>(Clique(16));
                               })
                    .ok());
  }

  obs::MetricsRegistry metrics_;
  std::unique_ptr<service::GraphStore> store_;
  std::unique_ptr<service::JobScheduler> scheduler_;
  std::unique_ptr<RpcServer> server_;
};

// ---------------------------------------------------------------------------
// Happy paths

TEST_F(RpcServerTest, PingEchoesToken) {
  RpcClient client = MakeClient();
  auto token = client.Ping(0xC0FFEE);
  ASSERT_TRUE(token.ok()) << token.status();
  EXPECT_EQ(*token, 0xC0FFEEu);
  EXPECT_GE(Counter("net.requests_total"), 1u);
  EXPECT_GT(Counter("net.bytes_in"), 0u);
  EXPECT_GT(Counter("net.bytes_out"), 0u);
}

TEST_F(RpcServerTest, ListDatasetsReturnsRegisteredNames) {
  RpcClient client = MakeClient();
  auto names = client.ListDatasets();
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ(*names, std::vector<std::string>{"clique"});
}

TEST_F(RpcServerTest, ListDatasetsReplyIsSorted) {
  // Registration order is zebra-then-alpha; the wire reply is sorted so
  // clients and scripts see a stable enumeration.
  auto loader = [] { return StatusOr<graph::Graph>(Clique(4)); };
  ASSERT_TRUE(store_->Register("zebra", loader).ok());
  ASSERT_TRUE(store_->Register("alpha", loader).ok());
  RpcClient client = MakeClient();
  auto names = client.ListDatasets();
  ASSERT_TRUE(names.ok()) << names.status();
  EXPECT_EQ(*names,
            (std::vector<std::string>{"alpha", "clique", "zebra"}));
}

TEST_F(RpcServerTest, ShedOverTcpMatchesInProcessExactly) {
  // The server dispatches onto the same deterministic scheduler the library
  // uses, so a remote Shed must reproduce an in-process Reduce bit for bit.
  const graph::Graph g = Clique(40);
  auto shedder = core::MakeShedderByName("crr", 42);
  ASSERT_TRUE(shedder.ok());
  auto local = (*shedder)->Reduce(g, 0.5);
  ASSERT_TRUE(local.ok()) << local.status();

  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "clique";
  request.method = "crr";
  request.p = 0.5;
  request.seed = 42;
  request.wait = true;
  auto remote = client.Shed(request);
  ASSERT_TRUE(remote.ok()) << remote.status();
  ASSERT_TRUE(remote->has_result);
  EXPECT_EQ(remote->result.kept_edges, local->kept_edges.size());
  EXPECT_DOUBLE_EQ(remote->result.total_delta, local->total_delta);
  EXPECT_DOUBLE_EQ(remote->result.average_delta, local->average_delta);
  EXPECT_FALSE(remote->result.deduplicated);

  // Submit the identical spec again: the scheduler's result cache answers,
  // and the wire layer reports the dedup bit faithfully.
  auto again = client.Shed(request);
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_TRUE(again->has_result);
  EXPECT_EQ(again->result.kept_edges, local->kept_edges.size());
  EXPECT_TRUE(again->result.deduplicated);
}

TEST_F(RpcServerTest, SubmitThenWaitThenStatus) {
  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "clique";
  request.p = 0.5;
  request.wait = false;  // submit-only: one fast round trip
  auto submitted = client.Shed(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  EXPECT_FALSE(submitted->has_result);
  ASSERT_GT(submitted->job_id, 0u);

  auto summary = client.Wait(submitted->job_id);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary->kept_edges, 0u);

  auto status = client.GetJobStatus(submitted->job_id);
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_EQ(static_cast<service::JobState>(status->state),
            service::JobState::kDone);
  auto code = StatusCodeFromWireCode(status->code);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, StatusCode::kOk);
}

// ---------------------------------------------------------------------------
// Error mapping over the wire

TEST_F(RpcServerTest, UnknownDatasetComesBackNotFound) {
  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "no-such-dataset";
  auto response = client.Shed(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST_F(RpcServerTest, BadPreservationRatioComesBackInvalidArgument) {
  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "clique";
  request.p = 1.5;
  auto response = client.Shed(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RpcServerTest, UnknownJobIdComesBackNotFound) {
  RpcClient client = MakeClient();
  auto summary = client.Wait(424242);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNotFound);

  auto status = client.GetJobStatus(424242);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Admission control

TEST_F(RpcServerTest, OverInflightCapAnswersResourceExhaustedNotHangs) {
  // max_inflight=0 rejects every dispatched request immediately. Ping is
  // handled on the loop thread and must keep working — that asymmetry is
  // what makes overload observable from outside.
  RpcServerOptions options;
  options.max_inflight = 0;
  StartServer(options);

  RpcClient client = MakeClient();
  auto token = client.Ping(5);
  ASSERT_TRUE(token.ok()) << token.status();

  ShedRequest request;
  request.dataset = "clique";
  const auto started = std::chrono::steady_clock::now();
  auto response = client.Shed(request);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  // Rejection, not queuing: the answer comes back promptly.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GE(Counter("net.rejected_overload"), 1u);
}

TEST_F(RpcServerTest, OverConnectionCapGetsErrorFrameAndClose) {
  RpcServerOptions options;
  options.max_connections = 1;
  StartServer(options);

  auto first = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(first.ok()) << first.status();
  // Prove the first connection is established server-side before racing a
  // second one against the cap.
  ASSERT_TRUE(
      SendAll(*first, EncodeFrame(MessageType::kPingRequest,
                                  EncodePing(PingMessage{1})))
          .ok());
  std::string buffer;
  char chunk[512];
  while (true) {
    auto n = RecvSome(*first, chunk, sizeof(chunk));
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_GT(*n, 0u);
    buffer.append(chunk, *n);
    if (DecodeFrame(buffer).event == DecodeEvent::kFrame) break;
  }

  auto second = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(second.ok()) << second.status();
  std::string rejection;
  while (true) {
    auto n = RecvSome(*second, chunk, sizeof(chunk));
    if (!n.ok() || *n == 0) break;  // close after the error frame is fine
    rejection.append(chunk, *n);
    if (DecodeFrame(rejection).event == DecodeEvent::kFrame) break;
  }
  DecodeResult decoded = DecodeFrame(rejection);
  ASSERT_EQ(decoded.event, DecodeEvent::kFrame);
  EXPECT_EQ(decoded.frame.type, MessageType::kErrorResponse);
  std::string_view body;
  Status status = DecodeResponsePayload(decoded.frame.payload, &body);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);

  CloseFd(*first);
  CloseFd(*second);
}

// ---------------------------------------------------------------------------
// Malformed input

TEST_F(RpcServerTest, MalformedFrameGetsErrorResponseAndCountedClose) {
  auto fd = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(SendAll(*fd, "this is not an ESRP frame at all....").ok());

  std::string buffer;
  char chunk[512];
  while (true) {
    auto n = RecvSome(*fd, chunk, sizeof(chunk));
    if (!n.ok() || *n == 0) break;
    buffer.append(chunk, *n);
    if (DecodeFrame(buffer).event == DecodeEvent::kFrame) break;
  }
  DecodeResult decoded = DecodeFrame(buffer);
  ASSERT_EQ(decoded.event, DecodeEvent::kFrame);
  EXPECT_EQ(decoded.frame.type, MessageType::kErrorResponse);
  std::string_view body;
  Status status = DecodeResponsePayload(decoded.frame.payload, &body);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_GE(Counter("net.malformed_frames"), 1u);
  CloseFd(*fd);

  // The server is still healthy for well-formed clients.
  RpcClient client = MakeClient();
  auto token = client.Ping(9);
  ASSERT_TRUE(token.ok()) << token.status();
}

TEST_F(RpcServerTest, ChecksumFlippedFrameIsRejectedCleanly) {
  std::string frame = EncodeFrame(MessageType::kPingRequest,
                                  EncodePing(PingMessage{3}));
  frame.back() = static_cast<char>(frame.back() ^ 0x01);

  auto fd = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(SendAll(*fd, frame).ok());
  std::string buffer;
  char chunk[512];
  while (true) {
    auto n = RecvSome(*fd, chunk, sizeof(chunk));
    if (!n.ok() || *n == 0) break;
    buffer.append(chunk, *n);
    if (DecodeFrame(buffer).event == DecodeEvent::kFrame) break;
  }
  DecodeResult decoded = DecodeFrame(buffer);
  ASSERT_EQ(decoded.event, DecodeEvent::kFrame);
  EXPECT_EQ(decoded.frame.type, MessageType::kErrorResponse);
  std::string_view body;
  Status status = DecodeResponsePayload(decoded.frame.payload, &body);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  CloseFd(*fd);
}

TEST_F(RpcServerTest, WellFramedUndecodablePayloadKeepsConnectionAlive) {
  // A frame that parses at the framing layer but whose payload is garbage
  // for its type answers InvalidArgument; stream sync is intact, so the
  // same connection serves the next request. One raw connection, two
  // round trips.
  auto fd = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(
      SendAll(*fd, EncodeFrame(MessageType::kWaitRequest, "xx")).ok());

  std::string buffer;
  char chunk[512];
  while (true) {
    auto n = RecvSome(*fd, chunk, sizeof(chunk));
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_GT(*n, 0u);
    buffer.append(chunk, *n);
    if (DecodeFrame(buffer).event == DecodeEvent::kFrame) break;
  }
  DecodeResult first = DecodeFrame(buffer);
  ASSERT_EQ(first.event, DecodeEvent::kFrame);
  EXPECT_EQ(first.frame.type, MessageType::kWaitResponse);
  std::string_view body;
  EXPECT_EQ(DecodeResponsePayload(first.frame.payload, &body).code(),
            StatusCode::kInvalidArgument);

  buffer.erase(0, first.consumed);
  ASSERT_TRUE(SendAll(*fd, EncodeFrame(MessageType::kPingRequest,
                                       EncodePing(PingMessage{8})))
                  .ok());
  while (true) {
    auto n = RecvSome(*fd, chunk, sizeof(chunk));
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_GT(*n, 0u);
    buffer.append(chunk, *n);
    if (DecodeFrame(buffer).event == DecodeEvent::kFrame) break;
  }
  DecodeResult second = DecodeFrame(buffer);
  ASSERT_EQ(second.event, DecodeEvent::kFrame);
  EXPECT_EQ(second.frame.type, MessageType::kPingResponse);
  CloseFd(*fd);
}

// ---------------------------------------------------------------------------
// Lifecycle

TEST_F(RpcServerTest, IdleConnectionsAreReaped) {
  RpcServerOptions options;
  options.idle_timeout = milliseconds(200);
  StartServer(options);

  auto fd = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(SetRecvTimeout(*fd, milliseconds(3000)).ok());
  // Send nothing; the server should close us. RecvSome sees EOF (0).
  char chunk[64];
  auto n = RecvSome(*fd, chunk, sizeof(chunk));
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 0u);
  CloseFd(*fd);
}

TEST_F(RpcServerTest, StopIsIdempotentAndServerRestarts) {
  // Starting a running server is refused; Stop is idempotent; and after a
  // Stop the same instance can Start again (fresh port) and serve.
  EXPECT_EQ(server_->Start().code(), StatusCode::kFailedPrecondition);
  server_->Stop();
  server_->Stop();  // second Stop is a no-op, not a crash

  ASSERT_TRUE(server_->Start().ok());
  RpcClient client = MakeClient();
  auto token = client.Ping(77);
  ASSERT_TRUE(token.ok()) << token.status();
  EXPECT_EQ(*token, 77u);
}

TEST_F(RpcServerTest, ConcurrentClientsAllSucceed) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<Status> results(kThreads, Status::Internal("unset"));
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, i, &results] {
      RpcClient client = MakeClient(/*max_attempts=*/3);
      ShedRequest request;
      request.dataset = "clique";
      request.p = 0.5;
      request.seed = static_cast<uint64_t>(i);  // distinct jobs, no dedup
      auto response = client.Shed(request);
      results[static_cast<size_t>(i)] =
          response.ok() ? Status::OK() : response.status();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(results[static_cast<size_t>(i)].ok())
        << results[static_cast<size_t>(i)];
  }
  EXPECT_GE(Counter("net.requests_total"), static_cast<uint64_t>(kThreads));
}

// ---------------------------------------------------------------------------
// Output snapshots (the fleet's return path)

TEST_F(RpcServerTest, ShedWithOutputWritesTheKeptSnapshot) {
  const std::string out_dir = ::testing::TempDir() + "/rpc_out";
  std::filesystem::create_directories(out_dir);
  RpcServerOptions options;
  options.output_dir = out_dir;
  StartServer(options);

  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "clique";
  request.p = 0.5;
  request.wait = true;
  request.output = "clique.kept";
  auto response = client.Shed(request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->has_result);

  // The snapshot is the kept subgraph of the same in-process reduction.
  auto shedder = core::MakeShedderByName("crr", 42);
  ASSERT_TRUE(shedder.ok());
  auto local = (*shedder)->Reduce(Clique(40), 0.5);
  ASSERT_TRUE(local.ok());
  auto snapshot = graph::LoadBinaryGraph(out_dir + "/clique.kept.esg");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->NumNodes(), 40u);
  EXPECT_EQ(snapshot->NumEdges(), local->kept_edges.size());
}

TEST_F(RpcServerTest, ShedWithOutputNeedsAnOutputDirectory) {
  // The default fixture server has no output_dir: requests naming an output
  // are refused outright instead of silently dropping the snapshot.
  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "clique";
  request.output = "kept";
  auto response = client.Shed(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RpcServerTest, ShedWithUnsafeOutputNameIsRejected) {
  RpcServerOptions options;
  options.output_dir = ::testing::TempDir();
  StartServer(options);
  RpcClient client = MakeClient();
  for (const char* bad : {"../escape", "a/b", ".hidden"}) {
    ShedRequest request;
    request.dataset = "clique";
    request.output = bad;
    auto response = client.Shed(request);
    ASSERT_FALSE(response.ok()) << bad;
    EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Persistent channels

TEST_F(RpcServerTest, ChannelReusesOneConnectionAcrossCalls) {
  RpcClient client = MakeClient();
  RpcClient::Channel channel(&client);
  for (uint64_t token = 1; token <= 5; ++token) {
    auto echoed = channel.Ping(token);
    ASSERT_TRUE(echoed.ok()) << echoed.status();
    EXPECT_EQ(*echoed, token);
  }
  ShedRequest request;
  request.dataset = "clique";
  request.p = 0.5;
  auto response = channel.Shed(request);
  ASSERT_TRUE(response.ok()) << response.status();

  // Six RPCs, one TCP accept: the channel really is persistent. (A per-RPC
  // client would have accepted six times.)
  EXPECT_EQ(Counter("net.accepted"), 1u);
  EXPECT_EQ(channel.reconnects(), 0);
}

TEST_F(RpcServerTest, ChannelRedialsAfterServerSideCloseAndCountsIt) {
  // An idle-reaped connection must not kill the channel: the next call
  // re-dials transparently and the re-dial is counted, both on the channel
  // and in the client registry's `net.client_reconnects`.
  RpcServerOptions options;
  options.idle_timeout = milliseconds(100);
  StartServer(options);

  obs::MetricsRegistry client_metrics;
  RpcClientOptions client_options;
  client_options.port = server_->port();
  client_options.max_attempts = 3;
  client_options.backoff_initial = milliseconds(5);
  client_options.backoff_max = milliseconds(20);
  RpcClient client(client_options, &client_metrics);
  RpcClient::Channel channel(&client);

  auto first = channel.Ping(1);
  ASSERT_TRUE(first.ok()) << first.status();
  std::this_thread::sleep_for(milliseconds(400));  // let the reaper fire

  auto second = channel.Ping(2);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*second, 2u);
  EXPECT_EQ(channel.reconnects(), 1);
  EXPECT_EQ(client_metrics.GetCounter("net.client_reconnects")->Value(), 1u);
  EXPECT_EQ(Counter("net.accepted"), 2u);
}

TEST_F(RpcServerTest, ChannelCloseIsNotTheEnd) {
  RpcClient client = MakeClient();
  RpcClient::Channel channel(&client);
  ASSERT_TRUE(channel.Ping(1).ok());
  channel.Close();
  auto echoed = channel.Ping(2);  // re-dials after an explicit Close
  ASSERT_TRUE(echoed.ok()) << echoed.status();
  EXPECT_EQ(*echoed, 2u);
  EXPECT_EQ(channel.reconnects(), 1);
}

// ---------------------------------------------------------------------------
// Serving QoS (ISSUE 8): reaper vs in-flight Waits, long-Wait recv
// deadlines, retry-after-drop idempotency, degradation over the wire

// Regression (satellite 1): a connection blocked in a Shed-with-wait longer
// than idle_timeout must NOT be reaped — only connections with no in-flight
// requests are idle. A genuinely idle connection opened alongside it IS
// reaped within the same window, proving the sweep ran while the busy
// connection survived.
TEST_F(RpcServerTest, IdleReaperSparesConnectionsBlockedInWait) {
  RpcServerOptions options;
  options.idle_timeout = milliseconds(150);
  StartServer(options);
  RegisterSlowDataset("slow", milliseconds(600));

  auto idle_fd = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(idle_fd.ok()) << idle_fd.status();
  ASSERT_TRUE(SetRecvTimeout(*idle_fd, milliseconds(3000)).ok());

  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "slow";
  request.method = "random";
  request.wait = true;
  request.deadline_ms = 10000;
  auto response = client.Shed(request);  // blocks ~600ms, 4x idle_timeout
  ASSERT_TRUE(response.ok())
      << "in-flight connection was reaped: " << response.status();
  ASSERT_TRUE(response->has_result);

  // The idle control connection was closed by the sweep (EOF).
  char chunk[64];
  auto n = RecvSome(*idle_fd, chunk, sizeof(chunk));
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 0u);
  CloseFd(*idle_fd);
}

// Regression (satellite 2): a Wait-class RPC on a job that outlives the
// client's generic recv_timeout must derive its socket deadline from the
// job's deadline_ms instead of failing client-side while the server is
// still working. Before the fix both calls here died with the 150ms
// SO_RCVTIMEO despite healthy 500ms jobs.
TEST_F(RpcServerTest, LongWaitOutlivesGenericRecvTimeout) {
  RegisterSlowDataset("slow", milliseconds(500));

  RpcClientOptions options;
  options.port = server_->port();
  options.max_attempts = 1;
  options.recv_timeout = milliseconds(150);  // << job runtime
  RpcClient client(options);

  ShedRequest request;
  request.dataset = "slow";
  request.method = "random";
  request.wait = true;
  request.deadline_ms = 10000;
  auto response = client.Shed(request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->has_result);

  // Same derivation on a bare Wait: submit without waiting, then block on
  // the result with the job's deadline in hand.
  RegisterSlowDataset("slow2", milliseconds(500));
  ShedRequest submit = request;
  submit.dataset = "slow2";
  submit.wait = false;
  auto submitted = client.Shed(submit);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  auto summary = client.Wait(submitted->job_id, submit.deadline_ms);
  ASSERT_TRUE(summary.ok()) << summary.status();
}

// Regression (satellite 3): a client whose connection drops mid-flight and
// retries an identical wait=true Shed must not double-execute the job — the
// retry coalesces onto the in-flight primary (or hits the result cache).
TEST_F(RpcServerTest, RetryAfterDroppedConnectionExecutesJobExactlyOnce) {
  RegisterSlowDataset("slow", milliseconds(400));

  ShedRequest request;
  request.dataset = "slow";
  request.method = "random";
  request.p = 0.5;
  request.seed = 3;
  request.wait = true;
  request.deadline_ms = 10000;

  // First attempt over a raw socket, dropped mid-job.
  auto fd = ConnectTcp("127.0.0.1", server_->port(), milliseconds(2000));
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(
      SendAll(*fd, EncodeFrame(MessageType::kShedRequest,
                               EncodeShedRequest(request)))
          .ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (Counter("scheduler.submitted") == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "job never reached the scheduler";
    std::this_thread::sleep_for(milliseconds(1));
  }
  CloseFd(*fd);  // injected drop while the job is executing

  // The "retry": an identical request from a fresh connection.
  RpcClient client = MakeClient();
  auto response = client.Shed(request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_TRUE(response->has_result);

  EXPECT_EQ(Counter("scheduler.submitted"), 2u);
  // Exactly one of the two submissions executed; the other deduplicated.
  EXPECT_EQ(Counter("scheduler.coalesced") +
                Counter("scheduler.result_cache_hit"),
            1u);
  EXPECT_EQ(metrics_.GetLatency("scheduler.run_seconds")->Snapshot().count,
            1u);
}

// Tentpole: tenant + priority travel over the wire into the scheduler's
// fair queues and per-tenant accounting.
TEST_F(RpcServerTest, TenantAndPriorityTravelOverTheWire) {
  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "clique";
  request.method = "random";
  request.tenant = "gold";
  request.priority = 1;
  request.wait = true;
  auto response = client.Shed(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(Counter("scheduler.tenant_submitted.gold"), 1u);
  EXPECT_EQ(Counter("scheduler.tenant_done.gold"), 1u);
  // Served exactly as asked: the degradation record says so explicitly.
  EXPECT_EQ(response->result.degrade_kind, 0);
}

// Tentpole: past max_inflight with degradation enabled, a request is
// admitted (not rejected) and answered with a recorded cheaper tier.
TEST_F(RpcServerTest, DegradedAdmissionAppliesRecordedCheaperTier) {
  RpcServerOptions options;
  options.max_inflight = 1;
  options.dispatch_threads = 4;
  options.degrade_enabled = true;
  service::JobScheduler::Options scheduler_options;
  scheduler_options.workers = 2;
  scheduler_options.degrade.enabled = true;
  StartServer(options, scheduler_options);
  RegisterSlowDataset("slow", milliseconds(600));

  // Occupy the single inflight slot with a long blocking Shed.
  std::thread occupant([this] {
    RpcClient client = MakeClient();
    ShedRequest request;
    request.dataset = "slow";
    request.method = "random";
    request.wait = true;
    request.deadline_ms = 10000;
    auto response = client.Shed(request);
    ASSERT_TRUE(response.ok()) << response.status();
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (metrics_.GetGauge("net.inflight")->Value() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "occupant never went in flight";
    std::this_thread::sleep_for(milliseconds(1));
  }

  // Arrives past max_inflight: admitted under pressure instead of
  // ResourceExhausted, and served one ladder tier down (crr -> bm2 at
  // pressure 1.0 is two steps -> local-degree).
  RpcClient client = MakeClient();
  ShedRequest request;
  request.dataset = "clique";
  request.method = "crr";
  request.wait = true;
  request.deadline_ms = 10000;
  auto response = client.Shed(request);
  occupant.join();
  ASSERT_TRUE(response.ok())
      << "degrading server rejected instead of admitting: "
      << response.status();
  ASSERT_TRUE(response->has_result);
  EXPECT_EQ(response->result.degrade_kind,
            static_cast<uint8_t>(DegradeKind::kCheaperTier));
  EXPECT_EQ(response->result.applied_method, "local-degree");
  EXPECT_GE(Counter("net.degraded_admitted"), 1u);
  EXPECT_GE(Counter("net.degraded_applied"), 1u);
  EXPECT_EQ(Counter("net.rejected_overload"), 0u);

  // The wait=false path reports the applied tier through GetStatus.
  ShedRequest fire = request;
  fire.seed = 99;
  fire.wait = false;
  auto submitted = client.Shed(fire);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  auto wait_summary = client.Wait(submitted->job_id, fire.deadline_ms);
  ASSERT_TRUE(wait_summary.ok()) << wait_summary.status();
  auto job_status = client.GetJobStatus(submitted->job_id);
  ASSERT_TRUE(job_status.ok()) << job_status.status();
  EXPECT_EQ(job_status->applied_method, wait_summary->applied_method);
  EXPECT_EQ(job_status->degrade_kind, wait_summary->degrade_kind);
}

}  // namespace
}  // namespace edgeshed::net
