#include "graph/external_build.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "graph/binary_io.h"
#include "graph/edge_list_io.h"
#include "testing/test_graphs.h"

namespace edgeshed::graph {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ExternalBuildTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  /// Builds the reference snapshot through the in-memory path.
  std::string InMemorySnapshot(const std::string& text_path,
                               const std::string& name) {
    auto loaded = LoadEdgeList(text_path);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    SnapshotOptions options;
    options.original_ids = loaded->original_ids;
    const std::string path = TempPath(name);
    EXPECT_TRUE(SaveBinaryGraph(loaded->graph, path, options).ok());
    return path;
  }
};

TEST_F(ExternalBuildTest, SmallInputMatchesInMemoryPathByteForByte) {
  const std::string text = TempPath("small.txt");
  WriteFile(text,
            "# comment line\n"
            "1000 7\n"
            "7 42\n"
            "42 1000\n"
            "7 7\n"      // self-loop: dropped, node still counted
            "42 7\n"     // reverse duplicate
            "1000 7\n"); // exact duplicate
  const std::string expected = InMemorySnapshot(text, "small_ref.es3");
  const std::string out = TempPath("small_ext.es3");
  auto stats = BuildSnapshotExternal(text, out);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_nodes, 3u);
  EXPECT_EQ(stats->num_edges, 3u);
  EXPECT_EQ(stats->input_edges, 6u);
  EXPECT_EQ(ReadFile(out), ReadFile(expected));
}

TEST_F(ExternalBuildTest, IdentityIdsOmitTheTable) {
  const std::string text = TempPath("identity.txt");
  WriteFile(text, "0 1\n1 2\n2 0\n");
  const std::string expected = InMemorySnapshot(text, "identity_ref.es3");
  const std::string out = TempPath("identity_ext.es3");
  ASSERT_TRUE(BuildSnapshotExternal(text, out).ok());
  EXPECT_EQ(ReadFile(out), ReadFile(expected));
  auto loaded = LoadSnapshot(out);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->original_ids.empty());  // identity left implicit
}

TEST_F(ExternalBuildTest, InputLargerThanBudgetSpillsAndStillMatches) {
  // ~300K directed pairs with duplicates and shuffled order: far beyond the
  // 1 MiB (clamped) budget's ~65K-edge run buffer, so phases A and B must
  // spill several runs each.
  const std::string text = TempPath("big.txt");
  {
    std::ofstream out(text);
    std::mt19937_64 rng(123);
    out << "# big shuffled input\n";
    for (int i = 0; i < 300000; ++i) {
      const uint64_t u = rng() % 40000 + 5;  // non-identity ids
      const uint64_t v = rng() % 40000 + 5;
      out << u << " " << v << "\n";
    }
  }
  const std::string expected = InMemorySnapshot(text, "big_ref.es3");
  const std::string out = TempPath("big_ext.es3");
  ExternalBuildOptions options;
  options.memory_budget_bytes = 1;  // clamped up to 1 MiB
  auto stats = BuildSnapshotExternal(text, out, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->edge_runs, 1u);
  EXPECT_GT(stats->reverse_runs, 1u);
  EXPECT_GT(stats->spilled_bytes, uint64_t{1} << 20);
  // Bounded peak: buffers never grew past the (clamped) budget plus one
  // block's worth of slack.
  EXPECT_LT(stats->peak_buffer_bytes, uint64_t{16} << 20);
  EXPECT_EQ(ReadFile(out), ReadFile(expected));
}

TEST_F(ExternalBuildTest, ConvertedSnapshotServesIdenticalGraph) {
  const std::string text = TempPath("serve.txt");
  {
    std::ofstream out(text);
    std::mt19937_64 rng(77);
    for (int i = 0; i < 20000; ++i) {
      out << rng() % 3000 << " " << rng() % 3000 << "\n";
    }
  }
  const std::string out = TempPath("serve.es3");
  ASSERT_TRUE(BuildSnapshotExternal(text, out).ok());
  auto from_text = LoadEdgeList(text);
  auto from_snapshot = LoadSnapshot(out);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_snapshot.ok());
  EXPECT_TRUE(from_snapshot->graph.IsMapped());
  EXPECT_EQ(from_snapshot->graph.edges(), from_text->graph.edges());
  EXPECT_EQ(from_snapshot->original_ids, from_text->original_ids);
}

TEST_F(ExternalBuildTest, TempFilesAreRemovedOnSuccess) {
  const std::string dir = TempPath("tmp_success");
  std::filesystem::create_directories(dir);
  const std::string text = dir + "/in.txt";
  WriteFile(text, "0 1\n1 2\n");
  const std::string out = dir + "/out.es3";
  ASSERT_TRUE(BuildSnapshotExternal(text, out).ok());
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);  // in.txt and out.es3 only
}

TEST_F(ExternalBuildTest, TempFilesAreRemovedOnParseFailure) {
  const std::string dir = TempPath("tmp_failure");
  std::filesystem::create_directories(dir);
  const std::string text = dir + "/in.txt";
  WriteFile(text, "0 1\nnot an edge\n");
  const std::string out = dir + "/out.es3";
  auto stats = BuildSnapshotExternal(text, out);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name == "in.txt" || name == "out.es3") << name;
  }
}

TEST_F(ExternalBuildTest, ParseErrorNamesGlobalLine) {
  const std::string text = TempPath("badline.txt");
  WriteFile(text, "0 1\n1 2\n# fine\nbroken here\n");
  auto stats = BuildSnapshotExternal(text, TempPath("badline.es3"));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(stats.status().message().find(":4:"), std::string::npos)
      << stats.status().ToString();
}

TEST_F(ExternalBuildTest, RejectsBinaryInput) {
  const std::string snap = TempPath("already.es3");
  ASSERT_TRUE(SaveBinaryGraph(edgeshed::testing::PaperExampleGraph(), snap,
                              SnapshotOptions{})
                  .ok());
  auto stats = BuildSnapshotExternal(snap, TempPath("reject.es3"));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExternalBuildTest, RejectsNonV3Options) {
  const std::string text = TempPath("v2req.txt");
  WriteFile(text, "0 1\n");
  ExternalBuildOptions options;
  options.snapshot.version = 2;
  auto stats = BuildSnapshotExternal(text, TempPath("v2req.es3"), options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExternalBuildTest, MissingInputIsIOError) {
  auto stats =
      BuildSnapshotExternal(TempPath("ghost.txt"), TempPath("ghost.es3"));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIOError);
}

TEST_F(ExternalBuildTest, EmptyInputBuildsEmptySnapshot) {
  const std::string text = TempPath("empty.txt");
  WriteFile(text, "# nothing but comments\n\n");
  const std::string out = TempPath("empty.es3");
  auto stats = BuildSnapshotExternal(text, out);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_nodes, 0u);
  EXPECT_EQ(stats->num_edges, 0u);
  auto loaded = LoadSnapshot(out);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph.NumNodes(), 0u);
}

TEST_F(ExternalBuildTest, CancelStopsTheBuild) {
  const std::string text = TempPath("cancel.txt");
  WriteFile(text, "0 1\n1 2\n");
  CancellationToken token;
  token.Cancel();
  ExternalBuildOptions options;
  options.cancel = &token;
  auto stats = BuildSnapshotExternal(text, TempPath("cancel.es3"), options);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCancelled);
}

TEST_F(ExternalBuildTest, TempDirOptionIsHonored) {
  const std::string spill_dir = TempPath("spill_here");
  std::filesystem::create_directories(spill_dir);
  const std::string text = TempPath("tempdir.txt");
  WriteFile(text, "5 6\n6 7\n");
  ExternalBuildOptions options;
  options.temp_dir = spill_dir;
  const std::string out = TempPath("tempdir.es3");
  ASSERT_TRUE(BuildSnapshotExternal(text, out, options).ok());
  // Spill dir used and cleaned: nothing left behind.
  EXPECT_TRUE(std::filesystem::is_empty(spill_dir));
  EXPECT_TRUE(LoadSnapshot(out).ok());
}

}  // namespace
}  // namespace edgeshed::graph
