#include "stream/streaming_shedder.h"

#include <gtest/gtest.h>

#include "core/random_shedding.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::stream {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

TEST(StreamingShedderTest, BudgetInvariantHoldsThroughout) {
  Rng rng(21);
  auto g = graph::BarabasiAlbert(500, 3, rng);
  StreamingShedder shedder(0.4);
  for (const graph::Edge& e : g.edges()) {
    shedder.AddEdge(e.u, e.v);
    EXPECT_LE(shedder.kept_edges().size(), shedder.Budget());
  }
  EXPECT_EQ(shedder.EdgesSeen(), g.NumEdges());
}

TEST(StreamingShedderTest, BudgetIsReachedAtEnd) {
  Rng rng(22);
  auto g = graph::ErdosRenyi(300, 1200, rng);
  StreamingShedder shedder(0.5);
  for (const graph::Edge& e : g.edges()) shedder.AddEdge(e.u, e.v);
  // Kept count should equal the budget (an admit happens whenever under).
  EXPECT_EQ(shedder.kept_edges().size(), shedder.Budget());
}

TEST(StreamingShedderTest, DeltaMatchesRecomputation) {
  Rng rng(23);
  auto g = graph::BarabasiAlbert(300, 4, rng);
  StreamingShedder shedder(0.3);
  for (const graph::Edge& e : g.edges()) shedder.AddEdge(e.u, e.v);
  EXPECT_NEAR(shedder.TotalDelta(), shedder.RecomputeTotalDelta(), 1e-6);
}

TEST(StreamingShedderTest, SelfLoopsIgnored) {
  StreamingShedder shedder(0.5);
  shedder.AddEdge(3, 3);
  EXPECT_EQ(shedder.EdgesSeen(), 0u);
}

TEST(StreamingShedderTest, DuplicateKeptEdgesIgnored) {
  StreamingShedder shedder(0.9);
  shedder.AddEdge(0, 1);
  shedder.AddEdge(0, 2);
  const uint64_t seen = shedder.EdgesSeen();
  // (0,1) was admitted (budget allows); re-sending it must be a no-op.
  if (!shedder.kept_edges().empty()) {
    const graph::Edge& kept = shedder.kept_edges().front();
    shedder.AddEdge(kept.u, kept.v);
    EXPECT_EQ(shedder.EdgesSeen(), seen);
  }
}

TEST(StreamingShedderTest, NodesGrowOnDemand) {
  StreamingShedder shedder(0.5);
  shedder.AddEdge(0, 1);
  EXPECT_EQ(shedder.NumNodes(), 2u);
  shedder.AddEdge(999, 5);
  EXPECT_EQ(shedder.NumNodes(), 1000u);
}

TEST(StreamingShedderTest, SnapshotMatchesKeptEdges) {
  Rng rng(24);
  auto g = graph::ErdosRenyi(100, 400, rng);
  StreamingShedder shedder(0.5);
  for (const graph::Edge& e : g.edges()) shedder.AddEdge(e.u, e.v);
  graph::Graph snapshot = shedder.SnapshotGraph();
  EXPECT_EQ(snapshot.NumEdges(), shedder.kept_edges().size());
  for (const graph::Edge& e : shedder.kept_edges()) {
    EXPECT_TRUE(snapshot.HasEdge(e.u, e.v));
  }
}

TEST(StreamingShedderTest, KeptEdgesAreRealStreamEdges) {
  Rng rng(25);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  StreamingShedder shedder(0.4);
  for (const graph::Edge& e : g.edges()) shedder.AddEdge(e.u, e.v);
  for (const graph::Edge& e : shedder.kept_edges()) {
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
  }
}

TEST(StreamingShedderTest, CompetitiveWithOfflineRandom) {
  // One-pass shedding with best-of-8 eviction should not be much worse on
  // Δ than offline uniform sampling of the same budget.
  Rng rng(26);
  auto g = graph::BarabasiAlbert(800, 4, rng);
  StreamingShedder shedder(0.5);
  for (const graph::Edge& e : g.edges()) shedder.AddEdge(e.u, e.v);

  auto offline = core::RandomShedding(3).Reduce(g, 0.5);
  ASSERT_TRUE(offline.ok());
  EXPECT_LT(shedder.TotalDelta(), offline->total_delta * 1.2);
}

TEST(StreamingShedderTest, MoreEvictionSamplesHelpOrTie) {
  Rng rng(27);
  auto g = graph::BarabasiAlbert(600, 4, rng);
  StreamingShedderOptions weak;
  weak.eviction_samples = 1;
  StreamingShedderOptions strong;
  strong.eviction_samples = 16;
  StreamingShedder a(0.4, weak);
  StreamingShedder b(0.4, strong);
  for (const graph::Edge& e : g.edges()) {
    a.AddEdge(e.u, e.v);
    b.AddEdge(e.u, e.v);
  }
  EXPECT_LE(b.TotalDelta(), a.TotalDelta() * 1.05);
}

TEST(StreamingShedderTest, DeterministicBySeed) {
  Rng rng(28);
  auto g = graph::ErdosRenyi(150, 600, rng);
  StreamingShedderOptions options;
  options.seed = 77;
  StreamingShedder a(0.5, options);
  StreamingShedder b(0.5, options);
  for (const graph::Edge& e : g.edges()) {
    a.AddEdge(e.u, e.v);
    b.AddEdge(e.u, e.v);
  }
  EXPECT_EQ(a.kept_edges().size(), b.kept_edges().size());
  EXPECT_DOUBLE_EQ(a.TotalDelta(), b.TotalDelta());
}

TEST(StreamingShedderTest, RemoveEdgeDropsKeptEdgeAndShrinksBudget) {
  StreamingShedder shedder(0.9);
  for (graph::NodeId v = 1; v <= 10; ++v) shedder.AddEdge(0, v);
  ASSERT_EQ(shedder.EdgesSeen(), 10u);
  const graph::Edge victim = shedder.kept_edges().front();

  shedder.RemoveEdge(victim.u, victim.v);
  EXPECT_EQ(shedder.EdgesSeen(), 9u);
  for (const graph::Edge& e : shedder.kept_edges()) {
    EXPECT_FALSE(e.u == victim.u && e.v == victim.v);
  }
  EXPECT_LE(shedder.kept_edges().size(), shedder.Budget());
  EXPECT_NEAR(shedder.TotalDelta(), shedder.RecomputeTotalDelta(), 1e-6);

  // Ignored deletions: self-loop, unknown endpoint, already-deleted edge.
  const uint64_t seen = shedder.EdgesSeen();
  shedder.RemoveEdge(3, 3);
  shedder.RemoveEdge(0, 999);
  shedder.RemoveEdge(victim.u, victim.v);
  shedder.RemoveEdge(victim.u, victim.v);  // deg budget exhausted by now
  EXPECT_LE(seen - shedder.EdgesSeen(), 1u);
}

TEST(StreamingShedderTest, InterleavedRemovalsKeepInvariants) {
  Rng rng(29);
  auto g = graph::BarabasiAlbert(400, 4, rng);
  StreamingShedder shedder(0.4);
  const auto& edges = g.edges();
  // Stream everything in, then a turnstile phase: delete every 7th original
  // edge while inserting fresh chords between random live endpoints.
  for (const graph::Edge& e : edges) shedder.AddEdge(e.u, e.v);
  for (size_t i = 0; i < edges.size(); i += 7) {
    shedder.RemoveEdge(edges[i].u, edges[i].v);
    const auto u = static_cast<graph::NodeId>(rng.UniformIndex(400));
    const auto v = static_cast<graph::NodeId>(rng.UniformIndex(400));
    shedder.AddEdge(u, v);
    EXPECT_LE(shedder.kept_edges().size(), shedder.Budget());
  }
  EXPECT_NEAR(shedder.TotalDelta(), shedder.RecomputeTotalDelta(), 1e-6);
  // Every kept edge is still a live stream edge with sane endpoints.
  for (const graph::Edge& e : shedder.kept_edges()) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, shedder.NumNodes());
  }
}

TEST(StreamingShedderDeathTest, InvalidRatioAborts) {
  EXPECT_DEATH({ StreamingShedder shedder(0.0); }, "");
  EXPECT_DEATH({ StreamingShedder shedder(1.0); }, "");
}

TEST(StreamingShedderTest, PaperExampleBudget) {
  auto g = PaperExampleGraph();
  StreamingShedder shedder(0.4);
  for (const graph::Edge& e : g.edges()) shedder.AddEdge(e.u, e.v);
  // round(0.4 * 11) = 4, same as offline CRR's [P].
  EXPECT_EQ(shedder.Budget(), 4u);
  EXPECT_EQ(shedder.kept_edges().size(), 4u);
}

}  // namespace
}  // namespace edgeshed::stream
