#ifndef EDGESHED_TESTS_TESTING_TEST_GRAPHS_H_
#define EDGESHED_TESTS_TESTING_TEST_GRAPHS_H_

#include <vector>

#include "graph/graph.h"

namespace edgeshed::testing {

/// Builds a graph or aborts — for fixtures whose edge lists are known good.
inline graph::Graph MustBuild(graph::NodeId num_nodes,
                              std::vector<graph::Edge> edges) {
  auto result = graph::Graph::FromEdges(num_nodes, std::move(edges));
  EDGESHED_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Path 0-1-2-...-(n-1).
inline graph::Graph Path(graph::NodeId n) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u + 1 < n; ++u) edges.push_back({u, u + 1});
  return MustBuild(n, std::move(edges));
}

/// Cycle 0-1-...-(n-1)-0.
inline graph::Graph Cycle(graph::NodeId n) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < n; ++u) {
    edges.push_back({u, static_cast<graph::NodeId>((u + 1) % n)});
  }
  return MustBuild(n, std::move(edges));
}

/// Star with center 0 and n-1 leaves.
inline graph::Graph Star(graph::NodeId n) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 1; u < n; ++u) edges.push_back({0, u});
  return MustBuild(n, std::move(edges));
}

/// Complete graph K_n.
inline graph::Graph Clique(graph::NodeId n) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return MustBuild(n, std::move(edges));
}

/// Two triangles {0,1,2} and {3,4,5} joined by the bridge 2-3. The bridge
/// has the maximum edge betweenness by construction.
inline graph::Graph TwoTrianglesWithBridge() {
  return MustBuild(6, {{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}});
}

/// The paper's running-example graph (Figs. 1-3), reconstructed from the
/// worked examples: vertices u1..u11 mapped to ids 0..10.
///   u7 (id 6): hub of degree 7 — leaves u1..u6 plus u9.
///   u9 (id 8): degree 4 — u7, u8, u10, u11.
///   u8 (id 7), u10 (id 9): degree 2 — u9 and each other.
///   u1..u6 (ids 0..5), u11 (id 10): degree 1.
/// With p = 0.4 the expected degrees are u7: 2.8, u9: 1.6, u8/u10: 0.8,
/// leaves: 0.4, and [P] = round(0.4 * 11) = 4 — matching Example 1.
inline graph::Graph PaperExampleGraph() {
  const graph::NodeId u1 = 0, u2 = 1, u3 = 2, u4 = 3, u5 = 4, u6 = 5;
  const graph::NodeId u7 = 6, u8 = 7, u9 = 8, u10 = 9, u11 = 10;
  return MustBuild(11, {{u1, u7},
                        {u2, u7},
                        {u3, u7},
                        {u4, u7},
                        {u5, u7},
                        {u6, u7},
                        {u7, u9},
                        {u8, u9},
                        {u8, u10},
                        {u9, u10},
                        {u9, u11}});
}

}  // namespace edgeshed::testing

#endif  // EDGESHED_TESTS_TESTING_TEST_GRAPHS_H_
