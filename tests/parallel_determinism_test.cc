#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "analytics/betweenness.h"
#include "common/parallel.h"
#include "core/crr.h"
#include "graph/edge_list_io.h"
#include "graph/generators/generators.h"
#include "graph/graph_builder.h"

namespace edgeshed {
namespace {

/// Runs every check twice — once with EDGESHED_THREADS=1 and once with
/// EDGESHED_THREADS=8 — and requires bit-identical outputs. The parallel
/// ingest-to-shed hot path promises thread-count invariance (DESIGN.md
/// "Parallel hot path"); these tests enforce it.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* previous = std::getenv("EDGESHED_THREADS");
    had_previous_ = previous != nullptr;
    if (had_previous_) previous_ = previous;
  }

  void TearDown() override {
    if (had_previous_) {
      ::setenv("EDGESHED_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("EDGESHED_THREADS");
    }
  }

  static void SetThreads(const char* value) {
    ::setenv("EDGESHED_THREADS", value, 1);
    ASSERT_EQ(DefaultThreadCount(), std::atoi(value));
  }

  bool had_previous_ = false;
  std::string previous_;
};

/// A messy edge-list file: sparse ids, comments, blanks, duplicates in both
/// orientations, self-loops, extra columns.
std::string WriteMessyEdgeList() {
  const std::string path = ::testing::TempDir() + "/determinism_edges.txt";
  std::ofstream out(path);
  out << "# messy input for the determinism test\n";
  std::mt19937_64 gen(1234);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t u = gen() % 3000 * 17;  // sparse raw ids
    const uint64_t v = gen() % 3000 * 17;
    out << u << '\t' << v;
    if (i % 7 == 0) out << "\t1.5 annotation";  // extra columns
    out << '\n';
    if (i % 503 == 0) out << "% interleaved comment\n\n";
    if (i % 211 == 0) out << v << ' ' << u << '\n';  // reversed duplicate
    if (i % 401 == 0) out << u << ' ' << u << '\n';  // self-loop
  }
  return path;
}

TEST_F(ParallelDeterminismTest, LoadEdgeListIsThreadCountInvariant) {
  const std::string path = WriteMessyEdgeList();

  SetThreads("1");
  auto serial = graph::LoadEdgeList(path);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  SetThreads("8");
  auto parallel = graph::LoadEdgeList(path);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->graph.NumNodes(), parallel->graph.NumNodes());
  EXPECT_EQ(serial->graph.edges(), parallel->graph.edges());
  EXPECT_EQ(serial->original_ids, parallel->original_ids);
  std::remove(path.c_str());
}

TEST_F(ParallelDeterminismTest, GraphBuilderBuildIsThreadCountInvariant) {
  std::mt19937_64 gen(99);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> raw;
  for (int i = 0; i < 150000; ++i) {
    raw.emplace_back(static_cast<graph::NodeId>(gen() % 5000),
                     static_cast<graph::NodeId>(gen() % 5000));
  }
  auto build = [&raw]() {
    graph::GraphBuilder builder;
    for (const auto& [u, v] : raw) builder.AddEdge(u, v);
    return builder.Build();
  };

  SetThreads("1");
  graph::Graph serial = build();
  SetThreads("8");
  graph::Graph parallel = build();

  EXPECT_EQ(serial.NumNodes(), parallel.NumNodes());
  EXPECT_EQ(serial.edges(), parallel.edges());
}

TEST_F(ParallelDeterminismTest, BetweennessScoresAreBitIdentical) {
  Rng rng(5);
  graph::Graph g = graph::PowerlawCluster(1500, 4, 0.3, rng);
  analytics::BetweennessOptions options;
  options.exact_node_threshold = 256;  // force sampling
  options.sample_sources = 96;

  SetThreads("1");
  analytics::BetweennessScores serial = analytics::Betweenness(g, options);
  SetThreads("8");
  analytics::BetweennessScores parallel = analytics::Betweenness(g, options);

  // Bit-exact equality, not approximate: the striped reduction fixes the
  // floating-point accumulation order independently of the thread count.
  ASSERT_EQ(serial.node.size(), parallel.node.size());
  ASSERT_EQ(serial.edge.size(), parallel.edge.size());
  for (size_t i = 0; i < serial.node.size(); ++i) {
    ASSERT_EQ(serial.node[i], parallel.node[i]) << "node " << i;
  }
  for (size_t i = 0; i < serial.edge.size(); ++i) {
    ASSERT_EQ(serial.edge[i], parallel.edge[i]) << "edge " << i;
  }

  SetThreads("1");
  auto ranked_serial = analytics::EdgesByBetweennessDescending(g, options);
  SetThreads("8");
  auto ranked_parallel = analytics::EdgesByBetweennessDescending(g, options);
  EXPECT_EQ(ranked_serial, ranked_parallel);
}

TEST_F(ParallelDeterminismTest, HybridWaveScoresAreBitIdentical) {
  // The ranking fast path — hybrid kernel plus adaptive waves — must hold
  // the same bit-identity contract as the single-pass classic kernel: the
  // wave schedule and the early-stop decision are computed from
  // deterministically merged partials, never from thread timing.
  Rng rng(9);
  graph::Graph g = graph::BarabasiAlbert(2000, 4, rng);
  analytics::BetweennessOptions options =
      analytics::BetweennessOptions::FastRanking();
  options.exact_node_threshold = 256;  // force sampling
  options.sample_sources = 96;
  options.wave_stability = 0.9;

  SetThreads("1");
  analytics::BetweennessScores serial = analytics::Betweenness(g, options);
  SetThreads("8");
  analytics::BetweennessScores parallel = analytics::Betweenness(g, options);

  ASSERT_EQ(serial.waves, parallel.waves);
  ASSERT_EQ(serial.sources_processed, parallel.sources_processed);
  ASSERT_EQ(serial.node.size(), parallel.node.size());
  for (size_t i = 0; i < serial.node.size(); ++i) {
    ASSERT_EQ(serial.node[i], parallel.node[i]) << "node " << i;
  }
  for (size_t i = 0; i < serial.edge.size(); ++i) {
    ASSERT_EQ(serial.edge[i], parallel.edge[i]) << "edge " << i;
  }
}

TEST_F(ParallelDeterminismTest, CrrKeptEdgesAreThreadCountInvariant) {
  Rng rng(21);
  graph::Graph g = graph::BarabasiAlbert(1200, 5, rng);
  core::CrrOptions options;
  options.seed = 77;
  options.betweenness.exact_node_threshold = 256;
  options.betweenness.sample_sources = 64;
  core::Crr crr(options);

  SetThreads("1");
  auto serial = crr.Reduce(g, 0.4);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  SetThreads("8");
  auto parallel = crr.Reduce(g, 0.4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->kept_edges, parallel->kept_edges);
  EXPECT_EQ(serial->total_delta, parallel->total_delta);
}

}  // namespace
}  // namespace edgeshed
