#include "analytics/closeness.h"

#include <gtest/gtest.h>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;
using ::edgeshed::testing::Star;

TEST(HarmonicTest, StarCenter) {
  const int n = 9;
  auto h = HarmonicCentrality(Star(n));
  // Center: 8 neighbors at distance 1 -> 8. Leaf: 1 + 7/2 = 4.5.
  EXPECT_NEAR(h[0], 8.0, 1e-9);
  for (int u = 1; u < n; ++u) EXPECT_NEAR(h[u], 4.5, 1e-9);
}

TEST(HarmonicTest, PathOfThree) {
  auto h = HarmonicCentrality(Path(3));
  EXPECT_NEAR(h[1], 2.0, 1e-9);       // two at distance 1
  EXPECT_NEAR(h[0], 1.5, 1e-9);       // 1 + 1/2
}

TEST(HarmonicTest, DisconnectedPairsContributeZero) {
  auto g = MustBuild(4, {{0, 1}});
  auto h = HarmonicCentrality(g);
  EXPECT_NEAR(h[0], 1.0, 1e-9);
  EXPECT_NEAR(h[2], 0.0, 1e-9);
}

TEST(HarmonicTest, SampledApproximatesExact) {
  Rng rng(93);
  auto g = graph::BarabasiAlbert(3000, 3, rng);
  ClosenessOptions exact;
  exact.exact_node_threshold = 1 << 20;
  auto truth = HarmonicCentrality(g, exact);
  ClosenessOptions sampled;
  sampled.exact_node_threshold = 1;
  sampled.sample_sources = 600;
  auto estimate = HarmonicCentrality(g, sampled);
  // Aggregate estimate should be close; per-node noisier.
  double truth_sum = 0;
  double estimate_sum = 0;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    truth_sum += truth[u];
    estimate_sum += estimate[u];
  }
  EXPECT_NEAR(estimate_sum / truth_sum, 1.0, 0.1);
}

TEST(HarmonicTest, EmptyGraph) {
  EXPECT_TRUE(HarmonicCentrality(graph::Graph()).empty());
}

TEST(ClosenessTest, CliqueValues) {
  const int n = 6;
  auto c = ClosenessCentrality(Clique(n));
  // All distances 1: C = (n-1)/(n-1) * (n-1)/(n-1) = 1.
  for (double value : c) EXPECT_NEAR(value, 1.0, 1e-9);
}

TEST(ClosenessTest, PathEndsLessCentral) {
  auto c = ClosenessCentrality(Path(5));
  EXPECT_GT(c[2], c[0]);
  EXPECT_NEAR(c[0], c[4], 1e-12);
}

TEST(ClosenessTest, ComponentCorrectionPenalizesSmallComponents) {
  // Two components: an edge pair and a triangle. Triangle members reach 2
  // vertices at distance 1 (r=3), pair members 1 (r=2); the
  // Wasserman-Faust factor keeps small-component scores modest.
  auto g = MustBuild(5, {{0, 1}, {2, 3}, {3, 4}, {2, 4}});
  auto c = ClosenessCentrality(g);
  EXPECT_GT(c[2], c[0]);
}

TEST(ClosenessTest, IsolatedVertexIsZero) {
  auto g = MustBuild(3, {{0, 1}});
  auto c = ClosenessCentrality(g);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(ClosenessTest, SingleVertexGraph) {
  auto c = ClosenessCentrality(MustBuild(1, {}));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
}

}  // namespace
}  // namespace edgeshed::analytics
