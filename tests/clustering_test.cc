#include "analytics/clustering.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;
using ::edgeshed::testing::Star;

TEST(ClusteringTest, CliqueIsFullyClustered) {
  auto coefficients = LocalClusteringCoefficients(Clique(6));
  for (double c : coefficients) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(Clique(6)), 1.0);
}

TEST(ClusteringTest, StarHasNoTriangles) {
  auto coefficients = LocalClusteringCoefficients(Star(8));
  for (double c : coefficients) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(ClusteringTest, PathDegreesBelowTwoAreZero) {
  auto coefficients = LocalClusteringCoefficients(Path(4));
  for (double c : coefficients) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(ClusteringTest, TriangleWithTail) {
  // Triangle 0-1-2 plus tail 2-3.
  auto g = MustBuild(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto coefficients = LocalClusteringCoefficients(g);
  EXPECT_DOUBLE_EQ(coefficients[0], 1.0);
  EXPECT_DOUBLE_EQ(coefficients[1], 1.0);
  EXPECT_DOUBLE_EQ(coefficients[2], 1.0 / 3.0);  // one triangle of C(3,2)
  EXPECT_DOUBLE_EQ(coefficients[3], 0.0);
}

TEST(TrianglesPerNodeTest, CountsExactly) {
  auto g = MustBuild(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  auto triangles = TrianglesPerNode(g);
  EXPECT_EQ(triangles[0], 1u);
  EXPECT_EQ(triangles[1], 1u);
  EXPECT_EQ(triangles[2], 2u);
  EXPECT_EQ(triangles[3], 1u);
  EXPECT_EQ(triangles[4], 1u);
}

TEST(TrianglesPerNodeTest, CliqueCount) {
  auto triangles = TrianglesPerNode(Clique(6));
  // Each vertex of K6 is in C(5,2) = 10 triangles.
  for (uint64_t t : triangles) EXPECT_EQ(t, 10u);
}

TEST(ClusteringByDegreeTest, GroupsByDegree) {
  // Triangle 0-1-2 plus tail 2-3: degrees 2,2,3,1.
  auto g = MustBuild(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto by_degree = ClusteringByDegree(g);
  EXPECT_DOUBLE_EQ(by_degree.at(2), 1.0);
  EXPECT_DOUBLE_EQ(by_degree.at(3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(by_degree.at(1), 0.0);
  EXPECT_FALSE(by_degree.contains(4));
}

TEST(ClusteringTest, EmptyGraph) {
  graph::Graph g;
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
  EXPECT_TRUE(ClusteringByDegree(g).empty());
}

TEST(ClusteringTest, ThreadCountDoesNotChangeResult) {
  auto g = Clique(12);
  auto serial = LocalClusteringCoefficients(g, 1);
  auto parallel = LocalClusteringCoefficients(g, 4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace edgeshed::analytics
