#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dyn/delta_graph.h"
#include "dyn/versioned_graph.h"
#include "graph/mutation_io.h"
#include "testing/test_graphs.h"

namespace edgeshed::dyn {
namespace {

using graph::Edge;
using graph::MutationBatch;
using graph::NodeId;

MutationBatch Batch(std::vector<Edge> inserts, std::vector<Edge> deletes) {
  MutationBatch batch;
  batch.inserts = std::move(inserts);
  batch.deletes = std::move(deletes);
  return batch;
}

TEST(DynMutationIo, ValidateRejectsSelfLoopNamingPair) {
  MutationBatch batch = Batch({{3, 3}}, {});
  const Status status = graph::ValidateAndCanonicalizeBatch(&batch);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("{3, 3}"), std::string::npos)
      << status.message();
}

TEST(DynMutationIo, ValidateRejectsDuplicateInsertNamingPair) {
  // Same undirected pair in both orientations.
  MutationBatch batch = Batch({{1, 2}, {2, 1}}, {});
  const Status status = graph::ValidateAndCanonicalizeBatch(&batch);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("{1, 2}"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("inserts"), std::string::npos)
      << status.message();
}

TEST(DynMutationIo, ValidateRejectsDuplicateDelete) {
  MutationBatch batch = Batch({}, {{4, 5}, {4, 5}});
  const Status status = graph::ValidateAndCanonicalizeBatch(&batch);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("deletes"), std::string::npos)
      << status.message();
}

TEST(DynMutationIo, ValidateRejectsInsertDeleteConflict) {
  MutationBatch batch = Batch({{1, 2}}, {{2, 1}});
  const Status status = graph::ValidateAndCanonicalizeBatch(&batch);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("both insert and delete"),
            std::string::npos)
      << status.message();
}

TEST(DynMutationIo, ValidateCanonicalizes) {
  MutationBatch batch = Batch({{7, 2}}, {{9, 4}});
  ASSERT_TRUE(graph::ValidateAndCanonicalizeBatch(&batch).ok());
  EXPECT_EQ(batch.inserts[0], (Edge{2, 7}));
  EXPECT_EQ(batch.deletes[0], (Edge{4, 9}));
}

TEST(DynMutationIo, ParseTextBatchesAndComments) {
  const auto parsed = graph::ParseMutationText(
      "# header\n"
      "+ 1 2\n"
      "- 3 4\n"
      "---\n"
      "% second batch\n"
      "+ 5 0\n"
      "---\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].inserts, (std::vector<Edge>{{1, 2}}));
  EXPECT_EQ((*parsed)[0].deletes, (std::vector<Edge>{{3, 4}}));
  EXPECT_EQ((*parsed)[1].inserts, (std::vector<Edge>{{0, 5}}));
  EXPECT_TRUE((*parsed)[1].deletes.empty());
}

TEST(DynMutationIo, ParseTextRejectsBadLineWithLineNumber) {
  const auto parsed = graph::ParseMutationText("+ 1 2\nok nope\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status().message();
}

TEST(DynMutationIo, ParseTextRejectsSelfLoopNamingPairAndBatch) {
  const auto parsed = graph::ParseMutationText("+ 1 2\n---\n+ 6 6\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("{6, 6}"), std::string::npos)
      << parsed.status().message();
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos)
      << parsed.status().message();
}

TEST(DynDeltaGraph, ApplyBatchVersionsAreMonotone) {
  VersionedGraph vg(testing::Cycle(6));
  EXPECT_EQ(vg.CurrentVersion(), 0u);
  auto v1 = vg.ApplyBatch(Batch({{0, 2}}, {}));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1u);
  auto v2 = vg.ApplyBatch(Batch({}, {{0, 1}}));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(vg.CurrentVersion(), 2u);
}

TEST(DynDeltaGraph, RejectsNonLiveDeleteAndLiveInsertNamingPair) {
  VersionedGraph vg(testing::Cycle(6));
  auto missing = vg.ApplyBatch(Batch({}, {{0, 3}}));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.status().message().find("{0, 3}"), std::string::npos);

  auto dup = vg.ApplyBatch(Batch({{1, 0}}, {}));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().message().find("{0, 1}"), std::string::npos);

  auto range = vg.ApplyBatch(Batch({{0, 17}}, {}));
  ASSERT_FALSE(range.ok());
  EXPECT_EQ(range.status().code(), StatusCode::kInvalidArgument);

  // A rejected batch leaves the head untouched.
  EXPECT_EQ(vg.CurrentVersion(), 0u);
  EXPECT_EQ(vg.Snapshot()->NumEdges(), 6u);
}

TEST(DynDeltaGraph, OverlayAccessorsMatchMutatedGraph) {
  VersionedGraph vg(testing::Path(5));  // 0-1-2-3-4
  ASSERT_TRUE(vg.ApplyBatch(Batch({{0, 4}, {1, 3}}, {{1, 2}})).ok());
  auto snap = vg.Snapshot();
  EXPECT_EQ(snap->NumNodes(), 5u);
  EXPECT_EQ(snap->NumEdges(), 5u);
  EXPECT_EQ(snap->Degree(0), 2u);  // 1 and 4
  EXPECT_EQ(snap->Degree(1), 2u);  // 0 and 3 (1-2 deleted)
  EXPECT_EQ(snap->Degree(2), 1u);  // 3
  EXPECT_TRUE(snap->HasEdge(0, 4));
  EXPECT_TRUE(snap->HasEdge(3, 1));
  EXPECT_FALSE(snap->HasEdge(1, 2));
  std::vector<NodeId> nbrs;
  snap->ForEachNeighbor(1, [&](NodeId n) { nbrs.push_back(n); });
  EXPECT_EQ(nbrs, (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(snap->LiveEdges(),
            (std::vector<Edge>{{0, 1}, {0, 4}, {1, 3}, {2, 3}, {3, 4}}));
}

TEST(DynDeltaGraph, SnapshotIsolationAcrossMutationsAndCompaction) {
  VersionedGraphOptions options;
  options.auto_compact = false;
  VersionedGraph vg(testing::Cycle(4), options);
  auto before = vg.Snapshot();
  ASSERT_TRUE(vg.ApplyBatch(Batch({{0, 2}}, {{0, 1}})).ok());
  ASSERT_TRUE(vg.Compact().ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({{1, 3}}, {})).ok());
  // The pinned snapshot still sees version 0 exactly.
  EXPECT_EQ(before->version(), 0u);
  EXPECT_EQ(before->NumEdges(), 4u);
  EXPECT_TRUE(before->HasEdge(0, 1));
  EXPECT_FALSE(before->HasEdge(0, 2));
  auto after = vg.Snapshot();
  EXPECT_EQ(after->version(), 2u);
  EXPECT_TRUE(after->HasEdge(1, 3));
  EXPECT_FALSE(after->HasEdge(0, 1));
}

TEST(DynDeltaGraph, UnDeleteAndDeleteOfInsertCancelOut) {
  // Overlay-algebra assertions need a stable base: a background compaction
  // landing mid-sequence would re-base the overlay and make OverlaySize
  // timing-dependent (LiveEdges would still be right).
  VersionedGraphOptions options;
  options.auto_compact = false;
  VersionedGraph vg(testing::Cycle(4), options);
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{0, 1}})).ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({{1, 0}}, {})).ok());  // un-delete
  ASSERT_TRUE(vg.ApplyBatch(Batch({{0, 2}}, {})).ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{0, 2}})).ok());  // delete the insert
  auto snap = vg.Snapshot();
  EXPECT_EQ(snap->OverlaySize(), 0u);
  EXPECT_EQ(snap->LiveEdges(),
            (std::vector<Edge>{{0, 1}, {0, 3}, {1, 2}, {2, 3}}));
}

TEST(DynDeltaGraph, MaterializeMatchesFromScratchBitIdentically) {
  VersionedGraphOptions options;
  options.auto_compact = false;
  VersionedGraph vg(testing::TwoTrianglesWithBridge(), options);
  ASSERT_TRUE(vg.ApplyBatch(Batch({{0, 3}, {1, 5}}, {{2, 3}})).ok());
  auto snap = vg.Snapshot();
  auto materialized = snap->Materialize();
  ASSERT_TRUE(materialized.ok());
  auto scratch = graph::Graph::FromEdges(
      6, {{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {0, 3}, {1, 5}});
  ASSERT_TRUE(scratch.ok());
  EXPECT_TRUE(materialized->edges() == scratch->edges());
  EXPECT_EQ(std::vector<uint64_t>(materialized->RawOffsets().begin(),
                                  materialized->RawOffsets().end()),
            std::vector<uint64_t>(scratch->RawOffsets().begin(),
                                  scratch->RawOffsets().end()));
  EXPECT_EQ(std::vector<NodeId>(materialized->RawAdjacency().begin(),
                                materialized->RawAdjacency().end()),
            std::vector<NodeId>(scratch->RawAdjacency().begin(),
                                scratch->RawAdjacency().end()));
  EXPECT_EQ(std::vector<graph::EdgeId>(materialized->RawIncident().begin(),
                                       materialized->RawIncident().end()),
            std::vector<graph::EdgeId>(scratch->RawIncident().begin(),
                                       scratch->RawIncident().end()));
}

TEST(DynDeltaGraph, BackgroundCompactionPreservesVersionsAndEdges) {
  VersionedGraphOptions options;
  options.compact_ratio = 0.01;  // compact after every batch
  VersionedGraph vg(testing::Cycle(8), options);
  ASSERT_TRUE(vg.ApplyBatch(Batch({{0, 4}}, {{0, 1}})).ok());
  vg.WaitForCompaction();
  auto snap = vg.Snapshot();
  EXPECT_EQ(snap->version(), 1u);
  // Compaction folded the overlay into the base.
  EXPECT_EQ(snap->OverlaySize(), 0u);
  EXPECT_TRUE(snap->HasEdge(0, 4));
  EXPECT_FALSE(snap->HasEdge(0, 1));
  // Mutations after compaction keep the version sequence.
  auto v2 = vg.ApplyBatch(Batch({{0, 1}}, {}));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
}

TEST(DynDeltaGraph, BatchesSinceReturnsSuffixOrNulloptWhenTrimmed) {
  VersionedGraphOptions options;
  options.auto_compact = false;
  options.history_limit = 2;
  VersionedGraph vg(testing::Clique(5), options);
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{0, 1}})).ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{0, 2}})).ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{0, 3}})).ok());

  auto since1 = vg.BatchesSince(1);
  ASSERT_TRUE(since1.has_value());
  ASSERT_EQ(since1->size(), 2u);
  EXPECT_EQ((*since1)[0].deletes, (std::vector<Edge>{{0, 2}}));
  EXPECT_EQ((*since1)[1].deletes, (std::vector<Edge>{{0, 3}}));
  auto current = vg.BatchesSince(3);
  ASSERT_TRUE(current.has_value());
  EXPECT_TRUE(current->empty());
  // Future versions are unknown.
  EXPECT_FALSE(vg.BatchesSince(9).has_value());

  // History trimming only happens for batches already folded into the
  // base; compact, then push the limit.
  ASSERT_TRUE(vg.Compact().ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{0, 4}})).ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{1, 2}})).ok());
  ASSERT_TRUE(vg.ApplyBatch(Batch({}, {{1, 3}})).ok());
  EXPECT_FALSE(vg.BatchesSince(1).has_value());  // trimmed
  auto tail = vg.BatchesSince(4);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 2u);
}

}  // namespace
}  // namespace edgeshed::dyn
