#include "common/strings.h"

#include <gtest/gtest.h>

namespace edgeshed {
namespace {

TEST(StrSplitTest, BasicSplit) {
  auto pieces = StrSplit("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StrSplitTest, DropsEmptyPieces) {
  auto pieces = StrSplit(",,a,,b,", ',');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(StrSplitTest, EmptyInput) {
  EXPECT_TRUE(StrSplit("", ',').empty());
}

TEST(StrSplitTest, NoDelimiter) {
  auto pieces = StrSplit("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\r\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
}

TEST(StrFormatTest, EmptyResult) {
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(34681189), "34,681,189");
}

}  // namespace
}  // namespace edgeshed
