#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "testing/test_graphs.h"

namespace edgeshed::graph {
namespace {

using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::PaperExampleGraph;
using ::edgeshed::testing::Star;

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphTest, NodesWithoutEdges) {
  auto g = MustBuild(5, {});
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.Degree(u), 0u);
}

TEST(GraphTest, TriangleBasics) {
  auto g = MustBuild(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.TotalDegree(), 6u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.Degree(u), 2u);
}

TEST(GraphTest, EdgesAreCanonicalized) {
  auto g = MustBuild(3, {{2, 0}, {1, 0}});
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, e.v);
  }
}

TEST(GraphTest, NeighborsSortedAscending) {
  auto g = MustBuild(6, {{3, 0}, {3, 5}, {3, 1}, {3, 4}, {3, 2}});
  auto nbrs = g.Neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 5u);
}

TEST(GraphTest, IncidentEdgesAlignWithNeighbors) {
  auto g = PaperExampleGraph();
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto inc = g.IncidentEdges(u);
    ASSERT_EQ(nbrs.size(), inc.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const Edge& e = g.edge(inc[i]);
      EXPECT_TRUE((e.u == u && e.v == nbrs[i]) ||
                  (e.v == u && e.u == nbrs[i]));
    }
  }
}

TEST(GraphTest, RejectsSelfLoop) {
  auto result = Graph::FromEdges(3, {{1, 1}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsDuplicateEdges) {
  auto result = Graph::FromEdges(3, {{0, 1}, {1, 0}});
  EXPECT_FALSE(result.ok());
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  auto result = Graph::FromEdges(3, {{0, 3}});
  EXPECT_FALSE(result.ok());
}

TEST(GraphTest, FindEdgePresentAndAbsent) {
  auto g = PaperExampleGraph();
  EdgeId found = g.FindEdge(0, 6);  // u1 - u7
  ASSERT_NE(found, kInvalidEdge);
  EXPECT_EQ(g.edge(found).u, 0u);
  EXPECT_EQ(g.edge(found).v, 6u);
  // Symmetric lookup.
  EXPECT_EQ(g.FindEdge(6, 0), found);
  // Absent pairs.
  EXPECT_EQ(g.FindEdge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 0), kInvalidEdge);
}

TEST(GraphTest, HasEdgeMatchesFindEdge) {
  auto g = PaperExampleGraph();
  EXPECT_TRUE(g.HasEdge(7, 9));   // u8 - u10
  EXPECT_FALSE(g.HasEdge(7, 6));  // u8 - u7
}

TEST(GraphTest, PaperExampleShape) {
  auto g = PaperExampleGraph();
  EXPECT_EQ(g.NumNodes(), 11u);
  EXPECT_EQ(g.NumEdges(), 11u);
  EXPECT_EQ(g.Degree(6), 7u);   // u7 hub
  EXPECT_EQ(g.Degree(8), 4u);   // u9
  EXPECT_EQ(g.Degree(7), 2u);   // u8
  EXPECT_EQ(g.Degree(9), 2u);   // u10
  for (NodeId leaf : {0u, 1u, 2u, 3u, 4u, 5u, 10u}) {
    EXPECT_EQ(g.Degree(leaf), 1u) << "leaf " << leaf;
  }
}

TEST(GraphTest, StarDegrees) {
  auto g = Star(10);
  EXPECT_EQ(g.Degree(0), 9u);
  for (NodeId u = 1; u < 10; ++u) EXPECT_EQ(g.Degree(u), 1u);
}

TEST(SubgraphTest, KeepsVertexSetDropsEdges) {
  auto g = PaperExampleGraph();
  Graph reduced = SubgraphFromEdgeIds(g, {0, 2, 6});
  EXPECT_EQ(reduced.NumNodes(), g.NumNodes());
  EXPECT_EQ(reduced.NumEdges(), 3u);
}

TEST(SubgraphTest, EmptySelectionGivesEdgelessGraph) {
  auto g = PaperExampleGraph();
  Graph reduced = SubgraphFromEdgeIds(g, {});
  EXPECT_EQ(reduced.NumNodes(), 11u);
  EXPECT_EQ(reduced.NumEdges(), 0u);
  for (NodeId u = 0; u < reduced.NumNodes(); ++u) {
    EXPECT_EQ(reduced.Degree(u), 0u);
  }
}

TEST(SubgraphTest, FullSelectionReproducesGraph) {
  auto g = PaperExampleGraph();
  std::vector<EdgeId> all(g.NumEdges());
  std::iota(all.begin(), all.end(), EdgeId{0});
  Graph copy = SubgraphFromEdgeIds(g, all);
  EXPECT_EQ(copy.NumEdges(), g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(copy.Degree(u), g.Degree(u));
  }
}

TEST(SubgraphTest, SubgraphEdgesExistInParent) {
  auto g = PaperExampleGraph();
  Graph reduced = SubgraphFromEdgeIds(g, {1, 3, 5, 7});
  for (const Edge& e : reduced.edges()) {
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
  }
}

TEST(EdgeTest, OrderingAndEquality) {
  Edge a{0, 1};
  Edge b{0, 2};
  Edge c{0, 1};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == c);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace edgeshed::graph
