#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace edgeshed::eval {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "bench");
  std::vector<char*> argv;
  for (auto& arg : storage) argv.push_back(arg.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchConfigTest, Defaults) {
  BenchConfig config = ParseBenchConfig(MakeFlags({}));
  EXPECT_DOUBLE_EQ(config.scale, 1.0);
  EXPECT_FALSE(config.full);
  EXPECT_EQ(config.seed, 20210419u);
  EXPECT_TRUE(config.data_dir.empty());
}

TEST(BenchConfigTest, ParsesFlags) {
  BenchConfig config = ParseBenchConfig(
      MakeFlags({"--scale=0.25", "--full", "--seed=7", "--data_dir=/tmp/x"}));
  EXPECT_DOUBLE_EQ(config.scale, 0.25);
  EXPECT_TRUE(config.full);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.data_dir, "/tmp/x");
}

TEST(DefaultDatasetScaleTest, FullModeIsPaperScale) {
  for (graph::DatasetId id : graph::AllDatasets()) {
    EXPECT_DOUBLE_EQ(DefaultDatasetScale(id, true), 1.0);
  }
}

TEST(DefaultDatasetScaleTest, LiveJournalShrinksByDefault) {
  EXPECT_DOUBLE_EQ(
      DefaultDatasetScale(graph::DatasetId::kComLiveJournal, false),
      1.0 / 32.0);
  EXPECT_DOUBLE_EQ(DefaultDatasetScale(graph::DatasetId::kCaGrQc, false),
                   1.0);
}

TEST(LoadBenchGraphTest, ProducesSurrogate) {
  BenchConfig config;
  config.scale = 0.1;
  graph::Graph g = LoadBenchGraph(graph::DatasetId::kCaGrQc, config);
  EXPECT_NEAR(static_cast<double>(g.NumNodes()), 524.0, 5.0);
}

TEST(LoadBenchGraphTest, MissingDataDirFallsBackToSurrogate) {
  BenchConfig config;
  config.scale = 0.1;
  config.data_dir = "/no/such/dir";
  graph::Graph g = LoadBenchGraph(graph::DatasetId::kCaGrQc, config);
  EXPECT_GT(g.NumNodes(), 0u);
}

TEST(PaperPreservationRatiosTest, NineValuesDescending) {
  auto ratios = PaperPreservationRatios();
  ASSERT_EQ(ratios.size(), 9u);
  EXPECT_DOUBLE_EQ(ratios.front(), 0.9);
  EXPECT_DOUBLE_EQ(ratios.back(), 0.1);
  for (size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_LT(ratios[i], ratios[i - 1]);
  }
}

}  // namespace
}  // namespace edgeshed::eval
