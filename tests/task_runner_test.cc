#include "eval/task_runner.h"

#include <gtest/gtest.h>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::eval {
namespace {

TaskOptions FastTaskOptions() {
  TaskOptions options;
  options.link_prediction.walks.walks_per_node = 2;
  options.link_prediction.walks.walk_length = 5;
  options.link_prediction.skipgram.dimensions = 8;
  options.link_prediction.skipgram.epochs = 1;
  return options;
}

TEST(TaskRunnerTest, AllTasksListedOnce) {
  auto tasks = AllTasks();
  EXPECT_EQ(tasks.size(), 7u);
}

TEST(TaskRunnerTest, NamesAreUnique) {
  std::set<std::string> names;
  for (Task task : AllTasks()) names.insert(TaskName(task));
  EXPECT_EQ(names.size(), 7u);
}

TEST(TaskRunnerTest, PaperTableLabels) {
  EXPECT_EQ(TaskName(Task::kSpDistance), "SP distance");
  EXPECT_EQ(TaskName(Task::kTopK), "Top-k");
  EXPECT_EQ(TaskName(Task::kVertexDegree), "Vertex degree");
  EXPECT_EQ(TaskName(Task::kLinkPrediction), "Link prediction");
  EXPECT_EQ(TaskName(Task::kBetweenness), "Betweenness centrality");
  EXPECT_EQ(TaskName(Task::kClusteringCoefficient), "Clustering coefficient");
  EXPECT_EQ(TaskName(Task::kHopPlot), "Hop-plot");
}

TEST(TaskRunnerTest, EveryTaskRunsAndReturnsTime) {
  Rng rng(121);
  auto g = graph::BarabasiAlbert(100, 3, rng);
  for (Task task : AllTasks()) {
    double seconds = RunTaskTimed(g, task, FastTaskOptions());
    EXPECT_GE(seconds, 0.0) << TaskName(task);
    EXPECT_LT(seconds, 60.0) << TaskName(task);
  }
}

TEST(TaskRunnerTest, RunsOnEdgelessGraph) {
  auto g = edgeshed::testing::MustBuild(20, {});
  for (Task task : AllTasks()) {
    EXPECT_GE(RunTaskTimed(g, task, FastTaskOptions()), 0.0)
        << TaskName(task);
  }
}

}  // namespace
}  // namespace edgeshed::eval
