// Property-style parameterized sweeps over (graph family x preservation
// ratio): the paper's core invariants must hold everywhere, not just on
// hand-picked fixtures.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/b_matching.h"
#include "core/bm2.h"
#include "core/bounds.h"
#include "core/crr.h"
#include "core/discrepancy.h"
#include "core/random_shedding.h"
#include "graph/generators/generators.h"

namespace edgeshed::core {
namespace {

enum class Family { kErdosRenyi, kBarabasiAlbert, kPowerlawCluster, kRMat };

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      return "ErdosRenyi";
    case Family::kBarabasiAlbert:
      return "BarabasiAlbert";
    case Family::kPowerlawCluster:
      return "PowerlawCluster";
    case Family::kRMat:
      return "RMat";
  }
  return "?";
}

graph::Graph MakeFamilyGraph(Family family, uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case Family::kErdosRenyi:
      return graph::ErdosRenyi(300, 900, rng);
    case Family::kBarabasiAlbert:
      return graph::BarabasiAlbert(300, 3, rng);
    case Family::kPowerlawCluster:
      return graph::PowerlawCluster(300, 3, 0.6, rng);
    case Family::kRMat:
      return graph::RMat(8, 6, 0.57, 0.19, 0.19, rng);
  }
  return graph::Graph();
}

class SheddingPropertyTest
    : public ::testing::TestWithParam<std::tuple<Family, double>> {
 protected:
  Family family() const { return std::get<0>(GetParam()); }
  double p() const { return std::get<1>(GetParam()); }
  graph::Graph MakeGraph() const { return MakeFamilyGraph(family(), 1234); }
};

TEST_P(SheddingPropertyTest, CrrKeepsExactTargetCount) {
  auto g = MakeGraph();
  auto result = Crr().Reduce(g, p());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), TargetEdgeCount(g, p()));
}

TEST_P(SheddingPropertyTest, CrrMeetsTheoremOneBound) {
  auto g = MakeGraph();
  auto result = Crr().Reduce(g, p());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->average_delta, CrrAverageDeltaBound(g, p()));
}

TEST_P(SheddingPropertyTest, CrrDeltaMatchesRecomputation) {
  auto g = MakeGraph();
  auto result = Crr().Reduce(g, p());
  ASSERT_TRUE(result.ok());
  DegreeDiscrepancy d(g, p());
  for (graph::EdgeId e : result->kept_edges) {
    d.AddEdge(g.edge(e).u, g.edge(e).v);
  }
  EXPECT_NEAR(result->total_delta, d.RecomputeTotalDelta(), 1e-6);
}

TEST_P(SheddingPropertyTest, Bm2MeetsTheoremTwoBound) {
  auto g = MakeGraph();
  auto result = Bm2().Reduce(g, p());
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->average_delta, Bm2AverageDeltaBound(g, p()));
}

TEST_P(SheddingPropertyTest, Bm2Phase1IsMaximalBMatching) {
  auto g = MakeGraph();
  Bm2Options phase1_only;
  phase1_only.run_phase2 = false;
  auto result = Bm2(phase1_only).Reduce(g, p());
  ASSERT_TRUE(result.ok());
  auto capacities = Bm2::Capacities(g, p());
  EXPECT_TRUE(IsMaximalBMatching(g, result->kept_edges, capacities));
}

TEST_P(SheddingPropertyTest, Bm2NodesNeverExceedExpectationPlusOne) {
  auto g = MakeGraph();
  auto result = Bm2().Reduce(g, p());
  ASSERT_TRUE(result.ok());
  std::vector<uint32_t> load(g.NumNodes(), 0);
  for (graph::EdgeId e : result->kept_edges) {
    ++load[g.edge(e).u];
    ++load[g.edge(e).v];
  }
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(static_cast<double>(load[u]),
              p() * static_cast<double>(g.Degree(u)) + 1.0 + 1e-9)
        << "node " << u;
  }
}

TEST_P(SheddingPropertyTest, KeptEdgesAreUniqueSubsets) {
  auto g = MakeGraph();
  Crr crr;
  Bm2 bm2;
  RandomShedding random;
  for (const EdgeShedder* shedder :
       {static_cast<const EdgeShedder*>(&crr),
        static_cast<const EdgeShedder*>(&bm2),
        static_cast<const EdgeShedder*>(&random)}) {
    auto result = shedder->Reduce(g, p());
    ASSERT_TRUE(result.ok()) << shedder->name();
    std::set<graph::EdgeId> unique(result->kept_edges.begin(),
                                   result->kept_edges.end());
    EXPECT_EQ(unique.size(), result->kept_edges.size()) << shedder->name();
    for (graph::EdgeId e : result->kept_edges) {
      EXPECT_LT(e, g.NumEdges()) << shedder->name();
    }
  }
}

TEST_P(SheddingPropertyTest, ReducedGraphDegreesNeverExceedOriginal) {
  auto g = MakeGraph();
  auto result = Bm2().Reduce(g, p());
  ASSERT_TRUE(result.ok());
  auto reduced = result->BuildReducedGraph(g);
  ASSERT_EQ(reduced.NumNodes(), g.NumNodes());
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(reduced.Degree(u), g.Degree(u));
  }
}

TEST_P(SheddingPropertyTest, CrrNotWorseThanRandomOnDelta) {
  auto g = MakeGraph();
  auto crr_result = Crr().Reduce(g, p());
  auto random_result = RandomShedding().Reduce(g, p());
  ASSERT_TRUE(crr_result.ok());
  ASSERT_TRUE(random_result.ok());
  EXPECT_LE(crr_result->total_delta, random_result->total_delta + 1e-9);
}

TEST_P(SheddingPropertyTest, Bm2CompetitiveWithRandomOnDelta) {
  // BM2 usually beats uniform sampling on Δ, but not always: integer
  // capacity rounding costs up to 0.5 per vertex, and on heavy-tailed
  // graphs at large p binomial concentration makes random sampling a
  // strong Δ baseline. Assert BM2 stays within 30% — the paper's claims
  // are about beating UDS, not random sampling on this metric.
  auto g = MakeGraph();
  auto bm2_result = Bm2().Reduce(g, p());
  auto random_result = RandomShedding().Reduce(g, p());
  ASSERT_TRUE(bm2_result.ok());
  ASSERT_TRUE(random_result.ok());
  EXPECT_LE(bm2_result->total_delta,
            random_result->total_delta * 1.3 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndRatios, SheddingPropertyTest,
    ::testing::Combine(::testing::Values(Family::kErdosRenyi,
                                         Family::kBarabasiAlbert,
                                         Family::kPowerlawCluster,
                                         Family::kRMat),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)),
    [](const ::testing::TestParamInfo<std::tuple<Family, double>>& info) {
      return std::string(FamilyName(std::get<0>(info.param))) + "_p" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 10 + 0.5));
    });

}  // namespace
}  // namespace edgeshed::core
