#include "graph/operations.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::graph {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::PaperExampleGraph;
using ::edgeshed::testing::Path;

TEST(InduceByNodesTest, KeepsInternalEdgesOnly) {
  auto g = PaperExampleGraph();
  // u7 (6), u9 (8), u8 (7): edges u7-u9 and u8-u9 survive.
  auto induced = InduceByNodes(g, {6, 8, 7});
  ASSERT_TRUE(induced.ok());
  EXPECT_EQ(induced->graph.NumNodes(), 3u);
  EXPECT_EQ(induced->graph.NumEdges(), 2u);
  EXPECT_EQ(induced->original_of[0], 6u);
  // Dense ids follow input order: 6->0, 8->1, 7->2.
  EXPECT_TRUE(induced->graph.HasEdge(0, 1));
  EXPECT_TRUE(induced->graph.HasEdge(1, 2));
  EXPECT_FALSE(induced->graph.HasEdge(0, 2));
}

TEST(InduceByNodesTest, RejectsOutOfRange) {
  auto g = Path(3);
  EXPECT_FALSE(InduceByNodes(g, {0, 5}).ok());
}

TEST(InduceByNodesTest, RejectsDuplicates) {
  auto g = Path(3);
  EXPECT_FALSE(InduceByNodes(g, {0, 0}).ok());
}

TEST(InduceByNodesTest, EmptySelection) {
  auto g = Path(3);
  auto induced = InduceByNodes(g, {});
  ASSERT_TRUE(induced.ok());
  EXPECT_EQ(induced->graph.NumNodes(), 0u);
}

TEST(GraphUnionTest, CombinesEdges) {
  auto a = MustBuild(4, {{0, 1}, {1, 2}});
  auto b = MustBuild(5, {{1, 2}, {3, 4}});
  Graph u = GraphUnion(a, b);
  EXPECT_EQ(u.NumNodes(), 5u);
  EXPECT_EQ(u.NumEdges(), 3u);
  EXPECT_TRUE(u.HasEdge(0, 1));
  EXPECT_TRUE(u.HasEdge(3, 4));
}

TEST(GraphIntersectionTest, SharedEdgesOnly) {
  auto a = MustBuild(4, {{0, 1}, {1, 2}, {2, 3}});
  auto b = MustBuild(4, {{1, 2}, {2, 3}, {0, 3}});
  Graph inter = GraphIntersection(a, b);
  EXPECT_EQ(inter.NumEdges(), 2u);
  EXPECT_TRUE(inter.HasEdge(1, 2));
  EXPECT_TRUE(inter.HasEdge(2, 3));
  EXPECT_FALSE(inter.HasEdge(0, 1));
}

TEST(GraphDifferenceTest, RemovesSharedEdges) {
  auto a = MustBuild(4, {{0, 1}, {1, 2}, {2, 3}});
  auto b = MustBuild(4, {{1, 2}});
  Graph diff = GraphDifference(a, b);
  EXPECT_EQ(diff.NumEdges(), 2u);
  EXPECT_FALSE(diff.HasEdge(1, 2));
}

TEST(GraphOperationsTest, UnionIntersectionDifferencePartition) {
  // |A ∪ B| = |A ∩ B| + |A \ B| + |B \ A| for any pair.
  auto a = Clique(5);
  auto b = MustBuild(5, {{0, 1}, {0, 2}, {3, 4}, {1, 4}});
  EXPECT_EQ(GraphUnion(a, b).NumEdges(),
            GraphIntersection(a, b).NumEdges() +
                GraphDifference(a, b).NumEdges() +
                GraphDifference(b, a).NumEdges());
}

TEST(DropIsolatedTest, RemovesAndRelabels) {
  auto g = MustBuild(6, {{1, 4}, {4, 5}});
  auto compact = DropIsolated(g);
  EXPECT_EQ(compact.graph.NumNodes(), 3u);
  EXPECT_EQ(compact.graph.NumEdges(), 2u);
  EXPECT_EQ(compact.original_of, (std::vector<NodeId>{1, 4, 5}));
}

TEST(DropIsolatedTest, NoOpOnDenseGraph) {
  auto g = Clique(4);
  auto compact = DropIsolated(g);
  EXPECT_EQ(compact.graph.NumNodes(), 4u);
  EXPECT_EQ(compact.graph.NumEdges(), 6u);
}

TEST(EdgeJaccardTest, Values) {
  auto a = MustBuild(4, {{0, 1}, {1, 2}});
  auto b = MustBuild(4, {{1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, MustBuild(4, {{0, 3}})), 0.0);
  EXPECT_DOUBLE_EQ(EdgeJaccard(Graph(), Graph()), 1.0);
}

TEST(EdgeJaccardTest, Symmetric) {
  auto a = MustBuild(5, {{0, 1}, {1, 2}, {3, 4}});
  auto b = MustBuild(5, {{1, 2}, {0, 4}});
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, b), EdgeJaccard(b, a));
}

}  // namespace
}  // namespace edgeshed::graph
