#include "core/bm2.h"

#include <gtest/gtest.h>

#include <set>

#include "core/bounds.h"
#include "core/discrepancy.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

TEST(Bm2Test, PaperExampleEndToEnd) {
  auto g = PaperExampleGraph();
  auto result = Bm2().Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  // Phase 1 (greedy over canonical edge order) matches (u7,u9) and (u8,u9);
  // Phase 2 then adds two u7-leaf edges, exactly as the Example-2 dynamics
  // dictate for this maximal b-matching.
  EXPECT_EQ(result->kept_edges.size(), 4u);
  std::set<graph::EdgeId> kept(result->kept_edges.begin(),
                               result->kept_edges.end());
  EXPECT_TRUE(kept.contains(g.FindEdge(6, 8)));  // u7-u9
  EXPECT_TRUE(kept.contains(g.FindEdge(7, 8)));  // u8-u9
  EXPECT_TRUE(kept.contains(g.FindEdge(0, 6)));  // u7-u1
  EXPECT_TRUE(kept.contains(g.FindEdge(1, 6)));  // u7-u2
  // Final Δ: u7 +0.2, u9 +0.4, u8 +0.2, u10 -0.8, u1/u2 +0.6 each,
  // u3..u6 and u11 -0.4 each: total 4.8.
  EXPECT_NEAR(result->total_delta, 4.8, 1e-9);
}

TEST(Bm2Test, RejectsInvalidP) {
  auto g = PaperExampleGraph();
  EXPECT_FALSE(Bm2().Reduce(g, 0.0).ok());
  EXPECT_FALSE(Bm2().Reduce(g, 1.0).ok());
}

TEST(Bm2Test, CapacitiesRounding) {
  auto g = PaperExampleGraph();
  auto capacities = Bm2::Capacities(g, 0.5);
  EXPECT_EQ(capacities[6], 4u);  // round(3.5) away from zero
  EXPECT_EQ(capacities[8], 2u);  // round(2.0)
  EXPECT_EQ(capacities[0], 1u);  // round(0.5) away from zero
}

TEST(Bm2Test, KeptEdgesAreValidAndUnique) {
  Rng rng(61);
  auto g = graph::BarabasiAlbert(400, 4, rng);
  auto result = Bm2().Reduce(g, 0.6);
  ASSERT_TRUE(result.ok());
  std::set<graph::EdgeId> unique(result->kept_edges.begin(),
                                 result->kept_edges.end());
  EXPECT_EQ(unique.size(), result->kept_edges.size());
  for (graph::EdgeId e : result->kept_edges) EXPECT_LT(e, g.NumEdges());
}

TEST(Bm2Test, ReportedDeltaMatchesRecomputation) {
  Rng rng(62);
  auto g = graph::ErdosRenyi(300, 900, rng);
  auto result = Bm2().Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  DegreeDiscrepancy d(g, 0.5);
  for (graph::EdgeId e : result->kept_edges) {
    d.AddEdge(g.edge(e).u, g.edge(e).v);
  }
  EXPECT_NEAR(result->total_delta, d.RecomputeTotalDelta(), 1e-6);
}

TEST(Bm2Test, SatisfiesTheoremTwoBound) {
  Rng rng(63);
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto g = graph::BarabasiAlbert(300, 4, rng);
    auto result = Bm2().Reduce(g, p);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->average_delta, Bm2AverageDeltaBound(g, p))
        << "p = " << p;
  }
}

TEST(Bm2Test, Phase2ImprovesOrMatchesPhase1Delta) {
  Rng rng(64);
  auto g = graph::BarabasiAlbert(500, 4, rng);
  for (double p : {0.2, 0.5, 0.8}) {
    Bm2Options phase1_only;
    phase1_only.run_phase2 = false;
    auto without = Bm2(phase1_only).Reduce(g, p);
    auto with = Bm2().Reduce(g, p);
    ASSERT_TRUE(without.ok());
    ASSERT_TRUE(with.ok());
    EXPECT_LE(with->total_delta, without->total_delta + 1e-9) << "p = " << p;
  }
}

TEST(Bm2Test, Phase1RespectsCapacities) {
  Rng rng(65);
  auto g = graph::ErdosRenyi(200, 800, rng);
  Bm2Options phase1_only;
  phase1_only.run_phase2 = false;
  auto result = Bm2(phase1_only).Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  auto capacities = Bm2::Capacities(g, 0.5);
  std::vector<uint32_t> load(g.NumNodes(), 0);
  for (graph::EdgeId e : result->kept_edges) {
    ++load[g.edge(e).u];
    ++load[g.edge(e).v];
  }
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(load[u], capacities[u]);
  }
}

TEST(Bm2Test, Phase2OvershootsByLessThanOnePerNode) {
  // Phase 2 only adds edges at nodes below expectation (A side) or less
  // than 0.5 below (B side); afterwards no node exceeds expected + 1.
  Rng rng(66);
  auto g = graph::BarabasiAlbert(300, 5, rng);
  auto result = Bm2().Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  std::vector<uint32_t> load(g.NumNodes(), 0);
  for (graph::EdgeId e : result->kept_edges) {
    ++load[g.edge(e).u];
    ++load[g.edge(e).v];
  }
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(static_cast<double>(load[u]),
              0.5 * static_cast<double>(g.Degree(u)) + 1.0 + 1e-9);
  }
}

TEST(Bm2Test, EdgeCountTracksExpectedTotal) {
  // BM2 does not pin |E'| to round(p|E|), but it should land close: each
  // vertex ends within ~1 of p*deg, so |E'| is within about |V|/2 of p|E|.
  Rng rng(67);
  auto g = graph::BarabasiAlbert(500, 4, rng);
  for (double p : {0.3, 0.6, 0.9}) {
    auto result = Bm2().Reduce(g, p);
    ASSERT_TRUE(result.ok());
    const double target = p * static_cast<double>(g.NumEdges());
    EXPECT_NEAR(static_cast<double>(result->kept_edges.size()), target,
                static_cast<double>(g.NumNodes()) / 2.0 + 1)
        << "p = " << p;
  }
}

TEST(Bm2Test, DeterministicInInputOrderMode) {
  Rng rng(68);
  auto g = graph::ErdosRenyi(150, 500, rng);
  auto a = Bm2().Reduce(g, 0.5);
  auto b = Bm2().Reduce(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kept_edges, b->kept_edges);
}

TEST(Bm2Test, ShuffledOrderIsValid) {
  Rng rng(69);
  auto g = graph::ErdosRenyi(150, 500, rng);
  Bm2Options options;
  options.edge_order = BMatchingEdgeOrder::kShuffled;
  options.seed = 123;
  auto result = Bm2(options).Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->average_delta, Bm2AverageDeltaBound(g, 0.5));
}

TEST(Bm2Test, StatsArePopulated) {
  auto g = PaperExampleGraph();
  auto result = Bm2().Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  double phase1_edges = -1;
  double phase2_edges = -1;
  for (const auto& [key, value] : result->stats) {
    if (key == "phase1_edges") phase1_edges = value;
    if (key == "phase2_edges") phase2_edges = value;
  }
  EXPECT_DOUBLE_EQ(phase1_edges, 2.0);
  EXPECT_DOUBLE_EQ(phase2_edges, 2.0);
}

TEST(Bm2Test, NameIsStable) {
  EXPECT_EQ(Bm2().name(), "bm2");
}

TEST(Bm2Test, IsolatedVerticesAreHandled) {
  // Graph with isolated vertices: they have expected degree 0 and must
  // simply stay isolated.
  auto g = edgeshed::testing::MustBuild(6, {{0, 1}, {1, 2}, {2, 0}});
  auto result = Bm2().Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  for (graph::EdgeId e : result->kept_edges) {
    EXPECT_LT(g.edge(e).u, 3u);
    EXPECT_LT(g.edge(e).v, 3u);
  }
}

}  // namespace
}  // namespace edgeshed::core
