#include "graph/generators/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analytics/clustering.h"
#include "analytics/degree.h"

namespace edgeshed::graph {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  Graph g = ErdosRenyi(100, 250, rng);
  EXPECT_EQ(g.NumNodes(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(ErdosRenyiTest, CompleteGraphPossible) {
  Rng rng(1);
  Graph g = ErdosRenyi(10, 45, rng);
  EXPECT_EQ(g.NumEdges(), 45u);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(g.Degree(u), 9u);
}

TEST(ErdosRenyiTest, DeterministicGivenSeed) {
  Rng rng1(42);
  Rng rng2(42);
  Graph a = ErdosRenyi(50, 100, rng1);
  Graph b = ErdosRenyi(50, 100, rng2);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(ErdosRenyiTest, ZeroEdges) {
  Rng rng(1);
  Graph g = ErdosRenyi(10, 0, rng);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(BarabasiAlbertTest, EdgeCountFormula) {
  Rng rng(2);
  const NodeId n = 500;
  const uint32_t m = 4;
  Graph g = BarabasiAlbert(n, m, rng);
  EXPECT_EQ(g.NumNodes(), n);
  // Seed clique C(m+1,2) edges plus m per additional node.
  const uint64_t expected =
      static_cast<uint64_t>(m + 1) * m / 2 + static_cast<uint64_t>(n - m - 1) * m;
  EXPECT_EQ(g.NumEdges(), expected);
}

TEST(BarabasiAlbertTest, MinimumDegreeIsM) {
  Rng rng(3);
  Graph g = BarabasiAlbert(300, 3, rng);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_GE(g.Degree(u), 3u);
  }
}

TEST(BarabasiAlbertTest, ProducesHubs) {
  Rng rng(4);
  Graph g = BarabasiAlbert(2000, 2, rng);
  uint64_t max_degree = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  // Preferential attachment produces hubs far above the mean degree (4).
  EXPECT_GT(max_degree, 40u);
}

TEST(BarabasiAlbertTest, Deterministic) {
  Rng rng1(5);
  Rng rng2(5);
  EXPECT_EQ(BarabasiAlbert(200, 3, rng1).edges(),
            BarabasiAlbert(200, 3, rng2).edges());
}

TEST(PowerlawClusterTest, HigherClusteringThanBa) {
  Rng rng1(6);
  Rng rng2(6);
  Graph ba = BarabasiAlbert(1000, 4, rng1);
  Graph pc = PowerlawCluster(1000, 4, 0.9, rng2);
  double cc_ba = analytics::AverageClusteringCoefficient(ba);
  double cc_pc = analytics::AverageClusteringCoefficient(pc);
  EXPECT_GT(cc_pc, cc_ba);
}

TEST(PowerlawClusterTest, ApproximateEdgeCount) {
  Rng rng(7);
  Graph g = PowerlawCluster(1000, 3, 0.5, rng);
  // Allows for the bounded-retry shortfall.
  EXPECT_GE(g.NumEdges(), 2900u);
  EXPECT_LE(g.NumEdges(), 3003u);
}

TEST(WattsStrogatzTest, LatticeWithoutRewiring) {
  Rng rng(8);
  Graph g = WattsStrogatz(20, 4, 0.0, rng);
  EXPECT_EQ(g.NumEdges(), 40u);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(g.Degree(u), 4u);
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeCount) {
  Rng rng(9);
  Graph g = WattsStrogatz(100, 6, 0.3, rng);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(WattsStrogatzTest, FullRewiringBreaksLattice) {
  Rng rng(10);
  Graph g = WattsStrogatz(200, 4, 1.0, rng);
  // Some vertex should deviate from lattice degree 4.
  bool deviates = false;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) != 4) deviates = true;
  }
  EXPECT_TRUE(deviates);
}

TEST(RMatTest, SizeAndSkew) {
  Rng rng(11);
  Graph g = RMat(12, 8, 0.57, 0.19, 0.19, rng);
  EXPECT_EQ(g.NumNodes(), 4096u);
  // Dedup and self-loop removal shave some edges off the nominal count.
  EXPECT_GT(g.NumEdges(), 4096u * 8 / 2);
  EXPECT_LE(g.NumEdges(), 4096u * 8);
  uint64_t max_degree = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  EXPECT_GT(max_degree, 50u);  // hubs from recursive skew
}

TEST(RMatTest, UniformQuadrantsApproximateErdosRenyi) {
  Rng rng(12);
  Graph g = RMat(10, 8, 0.25, 0.25, 0.25, rng);
  uint64_t max_degree = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  EXPECT_LT(max_degree, 50u);  // no hubs without skew
}

TEST(PlantedPartitionTest, IntraDensityExceedsInter) {
  Rng rng(13);
  const NodeId n = 500;
  const uint32_t k = 5;
  Graph g = PlantedPartition(n, k, 0.2, 0.01, rng);
  const NodeId block = (n + k - 1) / k;
  uint64_t intra = 0;
  uint64_t inter = 0;
  for (const Edge& e : g.edges()) {
    if (e.u / block == e.v / block) ++intra;
    else ++inter;
  }
  // Expected intra ≈ 5 * C(100,2) * 0.2 = 4950; inter ≈ C(500,2)*0.8*0.01.
  EXPECT_GT(intra, inter);
  EXPECT_NEAR(static_cast<double>(intra), 4950.0, 4950.0 * 0.25);
}

TEST(PlantedPartitionTest, ZeroProbabilitiesGiveEmptyGraph) {
  Rng rng(14);
  Graph g = PlantedPartition(100, 4, 0.0, 0.0, rng);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumNodes(), 100u);
}

TEST(PlantedPartitionTest, FullIntraProbabilityGivesBlockCliques) {
  Rng rng(15);
  Graph g = PlantedPartition(20, 4, 1.0, 0.0, rng);
  // 4 blocks of 5 nodes: 4 * C(5,2) = 40 edges.
  EXPECT_EQ(g.NumEdges(), 40u);
}

TEST(PlantedPartitionTest, SingleCommunityMatchesGnp) {
  Rng rng(16);
  Graph g = PlantedPartition(200, 1, 0.1, 0.0, rng);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()), expected, expected * 0.2);
}

TEST(GeneratorsTest, AllProduceSimpleGraphs) {
  Rng rng(17);
  std::vector<Graph> graphs;
  graphs.push_back(ErdosRenyi(100, 300, rng));
  graphs.push_back(BarabasiAlbert(100, 3, rng));
  graphs.push_back(PowerlawCluster(100, 3, 0.5, rng));
  graphs.push_back(WattsStrogatz(100, 4, 0.2, rng));
  graphs.push_back(RMat(7, 8, 0.57, 0.19, 0.19, rng));
  graphs.push_back(PlantedPartition(100, 4, 0.3, 0.02, rng));
  for (const Graph& g : graphs) {
    for (const Edge& e : g.edges()) {
      EXPECT_LT(e.u, e.v);  // canonical and no self-loops
    }
    // Graph::FromEdges would have rejected duplicates already; spot-check.
    std::vector<Edge> sorted(g.edges().begin(), g.edges().end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
  }
}

}  // namespace
}  // namespace edgeshed::graph
