#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace edgeshed {
namespace {

TEST(ParallelForTest, CoversWholeRangeExactlyOnce) {
  constexpr uint64_t kSize = 100000;
  std::vector<std::atomic<int>> touched(kSize);
  ParallelForEach(0, kSize, [&](uint64_t i) { touched[i]++; });
  for (uint64_t i = 0; i < kSize; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  ParallelForEach(5, 5, [&](uint64_t) { calls++; });
  ParallelForEach(10, 5, [&](uint64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  std::atomic<uint64_t> sum{0};
  ParallelForEach(0, 10, [&](uint64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelForTest, NonZeroBegin) {
  std::atomic<uint64_t> sum{0};
  ParallelForEach(10, 20, [&](uint64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);
}

TEST(ParallelForTest, ChunkedVariantSeesDisjointRanges) {
  constexpr uint64_t kSize = 50000;
  std::vector<std::atomic<int>> touched(kSize);
  ParallelFor(0, kSize, [&](uint64_t begin, uint64_t end) {
    EXPECT_LE(begin, end);
    for (uint64_t i = begin; i < end; ++i) touched[i]++;
  });
  for (uint64_t i = 0; i < kSize; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ExplicitSingleThread) {
  uint64_t sum = 0;  // no atomics needed with 1 thread
  ParallelForEach(0, 100000, [&](uint64_t i) { sum += i; }, /*threads=*/1);
  EXPECT_EQ(sum, 99999ull * 100000 / 2);
}

TEST(ParallelForTest, SumMatchesSerial) {
  constexpr uint64_t kSize = 1 << 18;
  std::atomic<uint64_t> sum{0};
  ParallelForEach(0, kSize, [&](uint64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kSize * (kSize - 1) / 2);
}

TEST(DefaultThreadCountTest, Positive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace edgeshed
