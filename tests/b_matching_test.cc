#include "core/b_matching.h"

#include <gtest/gtest.h>

#include "core/bm2.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::PaperExampleGraph;
using ::edgeshed::testing::Star;

TEST(BMatchingTest, RespectsCapacities) {
  auto g = Clique(6);
  std::vector<uint32_t> capacities(6, 2);
  auto matched = GreedyMaximalBMatching(g, capacities);
  EXPECT_TRUE(IsBMatching(g, matched, capacities));
}

TEST(BMatchingTest, IsMaximal) {
  auto g = Clique(6);
  std::vector<uint32_t> capacities(6, 2);
  auto matched = GreedyMaximalBMatching(g, capacities);
  EXPECT_TRUE(IsMaximalBMatching(g, matched, capacities));
}

TEST(BMatchingTest, ZeroCapacitiesMatchNothing) {
  auto g = Clique(4);
  std::vector<uint32_t> capacities(4, 0);
  auto matched = GreedyMaximalBMatching(g, capacities);
  EXPECT_TRUE(matched.empty());
  EXPECT_TRUE(IsMaximalBMatching(g, matched, capacities));
}

TEST(BMatchingTest, UnboundedCapacitiesTakeAllEdges) {
  auto g = Clique(5);
  std::vector<uint32_t> capacities(5, 100);
  auto matched = GreedyMaximalBMatching(g, capacities);
  EXPECT_EQ(matched.size(), g.NumEdges());
}

TEST(BMatchingTest, StarLimitedByCenter) {
  auto g = Star(10);
  std::vector<uint32_t> capacities(10, 1);
  capacities[0] = 3;
  auto matched = GreedyMaximalBMatching(g, capacities);
  EXPECT_EQ(matched.size(), 3u);
  EXPECT_TRUE(IsMaximalBMatching(g, matched, capacities));
}

TEST(BMatchingTest, PaperExampleCapacities) {
  auto g = PaperExampleGraph();
  auto capacities = Bm2::Capacities(g, 0.4);
  // round(0.4 * deg): u7 -> 3, u9 -> 2, u8/u10 -> 1, leaves -> 0.
  EXPECT_EQ(capacities[6], 3u);
  EXPECT_EQ(capacities[8], 2u);
  EXPECT_EQ(capacities[7], 1u);
  EXPECT_EQ(capacities[9], 1u);
  for (graph::NodeId leaf : {0u, 1u, 2u, 3u, 4u, 5u, 10u}) {
    EXPECT_EQ(capacities[leaf], 0u);
  }
  auto matched = GreedyMaximalBMatching(g, capacities);
  EXPECT_TRUE(IsMaximalBMatching(g, matched, capacities));
  // Only u7, u8, u9, u10 have nonzero capacity; their induced subgraph has
  // edges (u7,u9),(u8,u9),(u8,u10),(u9,u10). Greedy takes 2 of them.
  EXPECT_EQ(matched.size(), 2u);
}

TEST(BMatchingTest, ShuffledOrderStillValid) {
  auto g = Clique(8);
  std::vector<uint32_t> capacities(8, 3);
  Rng rng(5);
  auto matched = GreedyMaximalBMatching(
      g, capacities, BMatchingEdgeOrder::kShuffled, &rng);
  EXPECT_TRUE(IsMaximalBMatching(g, matched, capacities));
}

TEST(BMatchingTest, LowDegreeFirstStillValid) {
  Rng rng(6);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  auto capacities = Bm2::Capacities(g, 0.5);
  auto matched = GreedyMaximalBMatching(
      g, capacities, BMatchingEdgeOrder::kLowDegreeEndpointFirst);
  EXPECT_TRUE(IsMaximalBMatching(g, matched, capacities));
}

TEST(BMatchingTest, ResultIsSortedUniqueEdgeIds) {
  auto g = Clique(7);
  std::vector<uint32_t> capacities(7, 2);
  Rng rng(9);
  auto matched = GreedyMaximalBMatching(
      g, capacities, BMatchingEdgeOrder::kShuffled, &rng);
  EXPECT_TRUE(std::is_sorted(matched.begin(), matched.end()));
  EXPECT_TRUE(std::adjacent_find(matched.begin(), matched.end()) ==
              matched.end());
}

TEST(BMatchingTest, IsBMatchingDetectsViolation) {
  auto g = Star(4);
  std::vector<uint32_t> capacities(4, 1);
  // Two spokes exceed the center capacity of 1.
  EXPECT_FALSE(IsBMatching(g, {0, 1}, capacities));
}

TEST(BMatchingTest, IsMaximalDetectsNonMaximal) {
  auto g = Clique(4);
  std::vector<uint32_t> capacities(4, 3);
  // Empty matching is valid but not maximal.
  EXPECT_TRUE(IsBMatching(g, {}, capacities));
  EXPECT_FALSE(IsMaximalBMatching(g, {}, capacities));
}

TEST(BMatchingTest, HeterogeneousCapacities) {
  Rng rng(7);
  auto g = graph::ErdosRenyi(100, 300, rng);
  std::vector<uint32_t> capacities(100);
  for (uint32_t i = 0; i < 100; ++i) capacities[i] = i % 4;
  auto matched = GreedyMaximalBMatching(g, capacities);
  EXPECT_TRUE(IsMaximalBMatching(g, matched, capacities));
}

}  // namespace
}  // namespace edgeshed::core
