#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "core/shedder_factory.h"
#include "graph/binary_io.h"
#include "graph/generators/generators.h"
#include "graph/source.h"
#include "service/dataset_registry.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "service/metrics_registry.h"
#include "testing/test_graphs.h"

namespace edgeshed::service {
namespace {

using testing::Clique;
using testing::MustBuild;
using testing::Path;

/// Registers a deterministic in-memory graph under `name`.
void RegisterGraph(GraphStore& store, const std::string& name,
                   graph::Graph g) {
  ASSERT_TRUE(store
                  .Register(name,
                            [g = std::move(g)]() -> StatusOr<graph::Graph> {
                              return g;
                            })
                  .ok());
}

/// Loader that sleeps, to keep a worker busy for scheduling tests.
void RegisterSlowGraph(GraphStore& store, const std::string& name,
                       std::chrono::milliseconds delay) {
  ASSERT_TRUE(store
                  .Register(name,
                            [delay]() -> StatusOr<graph::Graph> {
                              std::this_thread::sleep_for(delay);
                              return Clique(8);
                            })
                  .ok());
}

/// Polls until the job leaves the queue (a worker picked it up), so tests
/// that depend on "this job occupies a worker" are deterministic even on
/// single-core machines where the pool may lag behind Submit.
void WaitUntilDispatched(JobScheduler& scheduler, JobId id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto status = scheduler.GetStatus(id);
    ASSERT_TRUE(status.ok());
    if (status->state != JobState::kQueued) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "job " << id << " was never dispatched";
}

/// Polls until the job is observed kRunning (fails if it goes terminal
/// first), for tests that cancel work mid-kernel.
void WaitUntilRunning(JobScheduler& scheduler, JobId id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto status = scheduler.GetStatus(id);
    ASSERT_TRUE(status.ok());
    if (status->state == JobState::kRunning) return;
    ASSERT_EQ(status->state, JobState::kQueued)
        << "job went terminal before it could be observed running";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "job " << id << " was never observed running";
}

/// A graph big enough that CRR (exact betweenness + swap phase) runs for
/// hundreds of milliseconds — room to cancel it mid-kernel.
graph::Graph BigCrrGraph(graph::NodeId nodes = 3000) {
  Rng rng(5);
  return graph::BarabasiAlbert(nodes, 6, rng);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CountersGaugesLatencies) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.CounterValue("absent"), 0u);
  metrics.IncrementCounter("hits");
  metrics.IncrementCounter("hits", 4);
  EXPECT_EQ(metrics.CounterValue("hits"), 5u);

  EXPECT_EQ(metrics.GaugeValue("depth"), 0);
  metrics.SetGauge("depth", 7);
  metrics.AddToGauge("depth", -3);
  EXPECT_EQ(metrics.GaugeValue("depth"), 4);

  metrics.RecordLatency("lat", 0.002);
  metrics.RecordLatency("lat", 0.004);
  auto lat = metrics.LatencyValue("lat");
  EXPECT_EQ(lat.count, 2u);
  EXPECT_DOUBLE_EQ(lat.sum_seconds, 0.006);
  EXPECT_DOUBLE_EQ(lat.min_seconds, 0.002);
  EXPECT_DOUBLE_EQ(lat.max_seconds, 0.004);
  EXPECT_DOUBLE_EQ(lat.MeanSeconds(), 0.003);
}

TEST(MetricsRegistryTest, LatencyBuckets) {
  // 1024 us = 2^10 us -> bucket 10; sub-microsecond collapses to 0.
  EXPECT_EQ(MetricsRegistry::LatencyBucket(1024e-6), 10);
  EXPECT_EQ(MetricsRegistry::LatencyBucket(1e-9), 0);
}

TEST(MetricsRegistryTest, TextSnapshotListsEveryInstrument) {
  MetricsRegistry metrics;
  metrics.IncrementCounter("a.count", 2);
  metrics.SetGauge("b.depth", -1);
  metrics.RecordLatency("c.lat", 0.5);
  const std::string snapshot = metrics.TextSnapshot();
  EXPECT_NE(snapshot.find("counter a.count 2"), std::string::npos);
  EXPECT_NE(snapshot.find("gauge   b.depth -1"), std::string::npos);
  EXPECT_NE(snapshot.find("latency c.lat count=1"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsDoNotLoseUpdates) {
  MetricsRegistry metrics;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < 1000; ++i) metrics.IncrementCounter("n");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(metrics.CounterValue("n"), 8000u);
}

// ---------------------------------------------------------------------------
// GraphStore

TEST(GraphStoreTest, RegisterRejectsBadArgsAndDuplicates) {
  GraphStore store;
  EXPECT_EQ(store.Register("", [] { return Clique(3); }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Register("g", nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(store.Register("g", [] { return Clique(3); }).ok());
  EXPECT_EQ(store.Register("g", [] { return Clique(4); }).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GraphStoreTest, GetLoadsOnceThenHits) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "clique", Clique(10));
  EXPECT_FALSE(store.IsResident("clique"));

  auto first = store.Get("clique");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->NumEdges(), 45u);
  auto second = store.Get("clique");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same resident instance
  EXPECT_EQ(metrics.CounterValue("store.miss"), 1u);
  EXPECT_EQ(metrics.CounterValue("store.hit"), 1u);
  EXPECT_TRUE(store.IsResident("clique"));
}

TEST(GraphStoreTest, UnknownNameIsNotFound) {
  GraphStore store;
  EXPECT_EQ(store.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(GraphStoreTest, LoaderFailureIsReturnedAndRetried) {
  GraphStore store;
  int calls = 0;
  ASSERT_TRUE(store
                  .Register("flaky",
                            [&calls]() -> StatusOr<graph::Graph> {
                              if (++calls == 1) {
                                return Status::IOError("disk on fire");
                              }
                              return Clique(4);
                            })
                  .ok());
  EXPECT_EQ(store.Get("flaky").status().code(), StatusCode::kIOError);
  EXPECT_TRUE(store.Get("flaky").ok());  // not cached as failed
  EXPECT_EQ(calls, 2);
}

TEST(GraphStoreTest, EvictsLruUnderByteBudgetAndReloadsTransparently) {
  MetricsRegistry metrics;
  GraphStoreOptions options;
  // Fits one Clique(30) (435 edges) but not two.
  options.byte_budget = GraphStore::ApproxBytes(Clique(30)) + 100;
  GraphStore store(options, &metrics);
  RegisterGraph(store, "a", Clique(30));
  RegisterGraph(store, "b", Clique(30));

  ASSERT_TRUE(store.Get("a").ok());
  EXPECT_TRUE(store.IsResident("a"));
  ASSERT_TRUE(store.Get("b").ok());  // loading b evicts a (LRU)
  EXPECT_FALSE(store.IsResident("a"));
  EXPECT_TRUE(store.IsResident("b"));
  EXPECT_EQ(metrics.CounterValue("store.eviction"), 1u);
  EXPECT_LE(store.bytes_resident(), options.byte_budget);
  EXPECT_EQ(metrics.GaugeValue("store.graphs_resident"), 1);

  // The evicted graph reloads transparently on the next request.
  auto again = store.Get("a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->NumEdges(), 435u);
  EXPECT_EQ(metrics.CounterValue("store.miss"), 3u);
  EXPECT_FALSE(store.IsResident("b"));
}

TEST(GraphStoreTest, EvictionKeepsLeasesAlive) {
  GraphStoreOptions options;
  options.byte_budget = 1;  // evict on every insert
  GraphStore store(options);
  RegisterGraph(store, "a", Path(50));
  RegisterGraph(store, "b", Path(60));
  auto a = store.Get("a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(store.Get("b").ok());  // evicts a from the store
  EXPECT_FALSE(store.IsResident("a"));
  EXPECT_EQ((*a)->NumEdges(), 49u);  // the lease still works
}

TEST(GraphStoreTest, ConcurrentMissesLoadOnce) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  std::atomic<int> loads{0};
  ASSERT_TRUE(store
                  .Register("g",
                            [&loads]() -> StatusOr<graph::Graph> {
                              ++loads;
                              std::this_thread::sleep_for(
                                  std::chrono::milliseconds(20));
                              return Clique(12);
                            })
                  .ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&store] {
      auto g = store.Get("g");
      ASSERT_TRUE(g.ok());
      EXPECT_EQ((*g)->NumEdges(), 66u);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(metrics.CounterValue("store.miss"), 1u);
}

// Regression: a failed load used to leave blocked waiters to serially
// re-run the failing loader (a retry stampede). Now every Get blocked on
// the failing wave shares the loader's Status; only *fresh* Gets retry.
TEST(GraphStoreTest, LoadFailurePropagatesToBlockedWaiters) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  std::atomic<int> calls{0};
  std::atomic<int> arrivals{0};
  std::atomic<bool> allow_success{false};
  constexpr int kThreads = 6;
  ASSERT_TRUE(
      store
          .Register("flaky",
                    [&]() -> StatusOr<graph::Graph> {
                      ++calls;
                      if (!allow_success.load()) {
                        // Hold the wave open until every thread has arrived
                        // (plus a beat for the last ones to reach the
                        // condvar), so all six are blocked on this load.
                        while (arrivals.load() < kThreads) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(1));
                        }
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(50));
                        return Status::IOError("disk on fire");
                      }
                      return Clique(4);
                    })
          .ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ++arrivals;
      auto g = store.Get("flaky");
      EXPECT_FALSE(g.ok());
      EXPECT_EQ(g.status().code(), StatusCode::kIOError);
      ++failures;
    });
  }
  for (auto& t : threads) t.join();

  // One loader invocation served the whole failing wave; the five blocked
  // waiters shared its failure instead of retrying.
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_EQ(metrics.CounterValue("store.load_failure"), 1u);
  EXPECT_EQ(metrics.CounterValue("store.wait_failure"),
            static_cast<uint64_t>(kThreads - 1));

  // Failures are not cached: a fresh Get starts a new wave and succeeds.
  allow_success = true;
  EXPECT_TRUE(store.Get("flaky").ok());
  EXPECT_EQ(calls.load(), 2);
}

TEST(GraphStoreTest, ClearDropsResidency) {
  GraphStore store;
  RegisterGraph(store, "g", Clique(5));
  ASSERT_TRUE(store.Get("g").ok());
  store.Clear();
  EXPECT_FALSE(store.IsResident("g"));
  EXPECT_EQ(store.bytes_resident(), 0u);
  EXPECT_TRUE(store.Get("g").ok());  // registration survives
}

TEST(GraphStoreTest, SurrogateRegistryNamesMatchCli) {
  GraphStore store;
  ASSERT_TRUE(RegisterSurrogateDatasets(store).ok());
  EXPECT_EQ(store.RegisteredNames(),
            (std::vector<std::string>{"enron", "grqc", "hepph",
                                      "livejournal"}));
}

TEST(GraphStoreTest, FallbackLoaderFactoryResolvesUnregisteredNames) {
  GraphStore store;
  int factory_calls = 0;
  store.SetFallbackLoaderFactory(
      [&factory_calls](const std::string& name)
          -> std::optional<GraphStore::Loader> {
        ++factory_calls;
        if (name != "lazy") return std::nullopt;
        return GraphStore::Loader(
            [] { return StatusOr<graph::Graph>(Clique(5)); });
      });

  // Declined names still miss.
  EXPECT_EQ(store.Get("nope").status().code(), StatusCode::kNotFound);

  // Accepted names register on the spot and behave like a normal miss:
  // loaded once, then served from residency without consulting the factory.
  auto first = store.Get("lazy");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ((*first)->NumNodes(), 5u);
  const int calls_after_first = factory_calls;
  auto second = store.Get("lazy");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(factory_calls, calls_after_first);

  // Uninstalling restores plain NotFound behaviour for new names.
  store.SetFallbackLoaderFactory(nullptr);
  EXPECT_EQ(store.Get("other").status().code(), StatusCode::kNotFound);
}

TEST(GraphStoreTest, ShardDirFallbackServesSnapshotsByName) {
  const std::string dir = ::testing::TempDir();
  const graph::Graph g = Clique(6);
  ASSERT_TRUE(graph::SaveBinaryGraph(g, dir + "/shard_snap.esg").ok());

  GraphStore store;
  InstallShardDirFallback(store, dir);
  auto loaded = store.Get("shard_snap");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->NumNodes(), g.NumNodes());
  EXPECT_EQ((*loaded)->NumEdges(), g.NumEdges());

  // Unsafe names never touch the filesystem; a safe name whose snapshot is
  // absent surfaces the loader's IOError instead of being swallowed.
  EXPECT_EQ(store.Get("../etc/passwd").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Get("no_such_snap").status().code(), StatusCode::kIOError);
}

TEST(GraphStoreTest, ReplaceKeepsMmapBackingAliveForPinnedReaders) {
  // Regression: Replace on an mmap-backed (v3 zero-copy) dataset must keep
  // the old mapping alive until the last pinned reader drops it. The reader
  // holds FromCsrView spans (through the mapped Graph) across the Replace,
  // a store-wide residency drop, and deletion of the snapshot file; the
  // refcounted backing handle is then the mapping's only owner.
  const std::string path = ::testing::TempDir() + "/replace_keepalive.esg";
  const graph::Graph original = Clique(12);
  ASSERT_TRUE(
      graph::SaveBinaryGraph(original, path, graph::SnapshotOptions{}).ok());

  GraphStore store;
  ASSERT_TRUE(store
                  .Register("g",
                            [path]() -> StatusOr<graph::Graph> {
                              graph::GraphSource source;
                              source.path = path;
                              source.format = graph::GraphFormat::kSnapshot;
                              EDGESHED_ASSIGN_OR_RETURN(
                                  graph::LoadedGraph loaded,
                                  graph::LoadGraph(source, {}));
                              return std::move(loaded.graph);
                            })
                  .ok());

  auto pinned = store.Get("g");
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  ASSERT_TRUE((*pinned)->IsMapped());  // really zero-copy, not a heap load
  const auto adjacency = (*pinned)->RawAdjacency();
  const std::vector<graph::NodeId> expected(adjacency.begin(),
                                            adjacency.end());

  ASSERT_TRUE(store
                  .Replace("g",
                           []() -> StatusOr<graph::Graph> { return Path(4); })
                  .ok());
  store.Clear();
  std::filesystem::remove(path);
  auto replaced = store.Get("g");
  ASSERT_TRUE(replaced.ok()) << replaced.status();
  EXPECT_EQ((*replaced)->NumNodes(), 4u);

  // Every page of the pinned spans must still be mapped and unchanged.
  ASSERT_EQ(adjacency.size(), expected.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                         adjacency.begin()));
  uint64_t degree_sum = 0;
  for (graph::NodeId u = 0; u < (*pinned)->NumNodes(); ++u) {
    degree_sum += (*pinned)->Degree(u);
  }
  EXPECT_EQ(degree_sum, 2 * original.NumEdges());
}

// ---------------------------------------------------------------------------
// JobScheduler

TEST(JobSchedulerTest, SubmitValidatesSpecs) {
  GraphStore store;
  RegisterGraph(store, "g", Clique(10));
  JobScheduler scheduler(&store, nullptr, {.workers = 1});
  EXPECT_EQ(scheduler.Submit({"g", "crr", 1.5}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(scheduler.Submit({"g", "crr", std::nan("")}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(scheduler.Submit({"g", "definitely-not-a-method", 0.5})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(scheduler.Submit({"", "crr", 0.5}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JobSchedulerTest, UnknownDatasetFailsTheJobNotTheSubmit) {
  GraphStore store;
  JobScheduler scheduler(&store, nullptr, {.workers = 1});
  auto id = scheduler.Submit({"missing", "random", 0.5});
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  auto status = scheduler.GetStatus(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
}

TEST(JobSchedulerTest, UnknownIdsAreNotFound) {
  GraphStore store;
  JobScheduler scheduler(&store, nullptr, {.workers = 1});
  EXPECT_EQ(scheduler.Wait(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.Cancel(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.GetStatus(999).status().code(), StatusCode::kNotFound);
}

// Acceptance: >= 32 jobs submitted from >= 4 threads all complete, with
// results identical to direct EdgeShedder::Reduce calls.
TEST(JobSchedulerTest, ConcurrentSubmissionsMatchDirectReduce) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  const graph::Graph clique = Clique(24);
  const graph::Graph paper = testing::PaperExampleGraph();
  RegisterGraph(store, "clique", clique);
  RegisterGraph(store, "paper", paper);
  JobScheduler scheduler(&store, &metrics, {.workers = 4});

  struct Case {
    JobSpec spec;
    JobId id = 0;
  };
  // 2 datasets x 2 methods x 3 p x 2 seeds = 24 distinct specs; thread t of
  // 4 submits a rotated copy of all of them (96 submissions, 32+ unique-ish
  // ids per run).
  std::vector<JobSpec> specs;
  for (const char* dataset : {"clique", "paper"}) {
    for (const char* method : {"random", "bm2", "crr"}) {
      for (double p : {0.25, 0.5, 0.75}) {
        for (uint64_t seed : {1u, 2u}) {
          specs.push_back({dataset, method, p, seed});
        }
      }
    }
  }
  ASSERT_GE(specs.size() * 4, 32u);

  std::vector<std::vector<Case>> per_thread(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&specs, &scheduler, &per_thread, t] {
      auto& mine = per_thread[t];
      for (size_t i = 0; i < specs.size(); ++i) {
        Case c;
        c.spec = specs[(i + static_cast<size_t>(t) * 7) % specs.size()];
        auto id = scheduler.Submit(c.spec);
        ASSERT_TRUE(id.ok()) << id.status();
        c.id = *id;
        mine.push_back(c);
      }
      for (const Case& c : mine) {
        ASSERT_TRUE(scheduler.Wait(c.id).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& thread_cases : per_thread) {
    for (const Case& c : thread_cases) {
      auto result = scheduler.Wait(c.id);
      ASSERT_TRUE(result.ok()) << result.status();
      auto shedder = core::MakeShedderByName(c.spec.method, c.spec.seed);
      ASSERT_TRUE(shedder.ok());
      const graph::Graph& g = c.spec.dataset == "clique" ? clique : paper;
      auto direct = (*shedder)->Reduce(g, c.spec.p);
      ASSERT_TRUE(direct.ok()) << direct.status();
      EXPECT_EQ((*result)->kept_edges, direct->kept_edges)
          << c.spec.dataset << " " << c.spec.method << " p=" << c.spec.p
          << " seed=" << c.spec.seed;
      EXPECT_DOUBLE_EQ((*result)->total_delta, direct->total_delta);
    }
  }
  // Every submission terminated, and all of them succeeded.
  EXPECT_EQ(metrics.CounterValue("scheduler.jobs_done"), specs.size() * 4);
  EXPECT_EQ(metrics.CounterValue("scheduler.jobs_failed"), 0u);
  // 4x duplication means at least 3/4 of submissions were deduplicated.
  EXPECT_GE(metrics.CounterValue("scheduler.result_cache_hit") +
                metrics.CounterValue("scheduler.coalesced"),
            specs.size() * 3);
}

// Acceptance: duplicate submissions hit the result cache, observed through
// MetricsRegistry counters.
TEST(JobSchedulerTest, DuplicateSubmissionHitsResultCache) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Clique(16));
  JobScheduler scheduler(&store, &metrics, {.workers = 2});

  JobSpec spec{"g", "random", 0.5, 77};
  auto first = scheduler.Submit(spec);
  ASSERT_TRUE(first.ok());
  auto first_result = scheduler.Wait(*first);
  ASSERT_TRUE(first_result.ok());
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 0u);

  auto second = scheduler.Submit(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*second, *first);  // a new job id...
  auto second_result = scheduler.Wait(*second);
  ASSERT_TRUE(second_result.ok());
  // ...but the same cached result object, no second execution.
  EXPECT_EQ(first_result->get(), second_result->get());
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 1u);
  auto status = scheduler.GetStatus(*second);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->deduplicated);
  EXPECT_EQ(status->state, JobState::kDone);

  // A different seed is a different key: it must run, not hit the cache.
  JobSpec other = spec;
  other.seed = 78;
  auto third = scheduler.Submit(other);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(scheduler.Wait(*third).ok());
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 1u);
}

TEST(JobSchedulerTest, InFlightDuplicatesCoalesce) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterSlowGraph(store, "sleepy", std::chrono::milliseconds(100));
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  JobSpec spec{"sleepy", "random", 0.5, 1};
  auto first = scheduler.Submit(spec);
  auto second = scheduler.Submit(spec);  // first is still loading the graph
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto r1 = scheduler.Wait(*first);
  auto r2 = scheduler.Wait(*second);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->get(), r2->get());
  EXPECT_EQ(metrics.CounterValue("scheduler.coalesced"), 1u);
}

// Acceptance: a job whose deadline expired while queued reports kCancelled
// without blocking the pool.
TEST(JobSchedulerTest, ExpiredDeadlineCancelsWithoutBlockingPool) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterSlowGraph(store, "sleepy", std::chrono::milliseconds(150));
  RegisterGraph(store, "fast", Clique(10));
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  // Occupy the only worker, then queue a job that can only start after its
  // 1 ms deadline has long passed.
  auto blocker = scheduler.Submit({"sleepy", "random", 0.5, 1});
  ASSERT_TRUE(blocker.ok());
  JobSpec doomed{"fast", "random", 0.5, 2, std::chrono::milliseconds(1)};
  auto doomed_id = scheduler.Submit(doomed);
  ASSERT_TRUE(doomed_id.ok());
  auto follow_up = scheduler.Submit({"fast", "random", 0.5, 3});
  ASSERT_TRUE(follow_up.ok());

  auto doomed_result = scheduler.Wait(*doomed_id);
  EXPECT_FALSE(doomed_result.ok());
  EXPECT_EQ(doomed_result.status().code(), StatusCode::kDeadlineExceeded);
  auto doomed_status = scheduler.GetStatus(*doomed_id);
  ASSERT_TRUE(doomed_status.ok());
  EXPECT_EQ(doomed_status->state, JobState::kCancelled);
  EXPECT_EQ(metrics.CounterValue("scheduler.deadline_expired"), 1u);

  // The pool kept going: the jobs around the doomed one both completed.
  EXPECT_TRUE(scheduler.Wait(*blocker).ok());
  EXPECT_TRUE(scheduler.Wait(*follow_up).ok());
}

TEST(JobSchedulerTest, CancelQueuedJobIsImmediate) {
  GraphStore store;
  RegisterSlowGraph(store, "sleepy", std::chrono::milliseconds(100));
  RegisterGraph(store, "fast", Clique(10));
  JobScheduler scheduler(&store, nullptr, {.workers = 1});

  auto blocker = scheduler.Submit({"sleepy", "random", 0.5, 1});
  ASSERT_TRUE(blocker.ok());
  auto queued = scheduler.Submit({"fast", "random", 0.5, 2});
  ASSERT_TRUE(queued.ok());
  EXPECT_TRUE(scheduler.Cancel(*queued).ok());
  auto result = scheduler.Wait(*queued);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Cancelling a terminal job is a FailedPrecondition.
  EXPECT_EQ(scheduler.Cancel(*queued).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(scheduler.Wait(*blocker).ok());
}

// Acceptance: Cancel on a running job trips its token and the kernel
// actually stops — observed through scheduler.cancelled_while_running.
TEST(JobSchedulerTest, CancelStopsRunningKernel) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "big", BigCrrGraph());
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  auto id = scheduler.Submit({"big", "crr", 0.5, 1});
  ASSERT_TRUE(id.ok());
  WaitUntilRunning(scheduler, *id);
  ASSERT_TRUE(scheduler.Cancel(*id).ok());

  auto result = scheduler.Wait(*id);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  auto status = scheduler.GetStatus(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_GE(metrics.CounterValue("scheduler.cancelled_while_running"), 1u);
}

// Acceptance: a deadline that expires mid-kernel terminates the running job
// (not just queued ones) with kDeadlineExceeded.
TEST(JobSchedulerTest, DeadlineInterruptsRunningJob) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  // The slow loader guarantees the job is dispatched (passes the queue-side
  // deadline check) before the deadline fires inside the kernel.
  graph::Graph big = BigCrrGraph();
  ASSERT_TRUE(store
                  .Register("big",
                            [big = std::move(big)]() -> StatusOr<graph::Graph> {
                              std::this_thread::sleep_for(
                                  std::chrono::milliseconds(50));
                              return big;
                            })
                  .ok());
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  JobSpec spec{"big", "crr", 0.5, 1, std::chrono::milliseconds(100)};
  auto id = scheduler.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  auto status = scheduler.GetStatus(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kCancelled);
  // run_seconds > 0 proves the job was dispatched and the deadline fired
  // inside Execute, not at the queue-side check.
  EXPECT_GT(status->run_seconds, 0.0);
  // ...and far below what an untimed CRR run on this graph would take.
  EXPECT_LT(status->run_seconds, 5.0);
  EXPECT_GE(metrics.CounterValue("scheduler.deadline_expired"), 1u);
}

// Acceptance: terminal job records are garbage collected once the retained
// count exceeds max_retained_jobs — scheduler memory stays bounded.
TEST(JobSchedulerTest, TerminalJobsAreGarbageCollectedByCount) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Clique(12));
  JobSchedulerOptions options;
  options.workers = 1;
  options.max_retained_jobs = 4;
  options.job_retention = std::chrono::milliseconds(0);  // count limit only
  JobScheduler scheduler(&store, &metrics, options);

  std::vector<JobId> ids;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    auto id = scheduler.Submit({"g", "random", 0.5, 100 + seed});
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(scheduler.Wait(*id).ok());
    ids.push_back(*id);
  }

  EXPECT_LE(scheduler.TrackedJobs(), 4u);
  EXPECT_GE(metrics.CounterValue("scheduler.jobs_gc"), 8u);
  EXPECT_LE(metrics.GaugeValue("scheduler.jobs_tracked"), 4);
  // The oldest job is gone entirely; the newest is still queryable.
  EXPECT_EQ(scheduler.GetStatus(ids.front()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(scheduler.Wait(ids.front()).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(scheduler.GetStatus(ids.back()).ok());
}

// Acceptance: terminal records also age out after job_retention, even when
// the count limit is far away.
TEST(JobSchedulerTest, TerminalJobsExpireAfterRetentionWindow) {
  GraphStore store;
  RegisterGraph(store, "g", Clique(10));
  JobSchedulerOptions options;
  options.workers = 1;
  options.job_retention = std::chrono::milliseconds(50);
  JobScheduler scheduler(&store, nullptr, options);

  auto first = scheduler.Submit({"g", "random", 0.5, 1});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(scheduler.Wait(*first).ok());
  EXPECT_TRUE(scheduler.GetStatus(*first).ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // GC is piggybacked on scheduler activity; the next submit sweeps.
  auto second = scheduler.Submit({"g", "random", 0.5, 2});
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(scheduler.Wait(*second).ok());
  EXPECT_EQ(scheduler.GetStatus(*first).status().code(),
            StatusCode::kNotFound);
}

// Acceptance: the result cache is a byte-budgeted LRU — it evicts under
// pressure, stays under budget, and evicted entries simply re-execute
// (deterministically) instead of failing.
TEST(JobSchedulerTest, ResultCacheIsByteBoundedLru) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  const graph::Graph g = Clique(16);
  RegisterGraph(store, "g", g);
  JobSchedulerOptions options;
  options.workers = 1;
  // Roughly two Clique(16) random-shed results' worth of bytes: four
  // distinct jobs must force at least one eviction.
  options.result_cache_byte_budget = 2048;
  JobScheduler scheduler(&store, &metrics, options);

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto id = scheduler.Submit({"g", "random", 0.5, seed});
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(scheduler.Wait(*id).ok());
  }
  EXPECT_GE(metrics.CounterValue("scheduler.result_cache_evicted"), 1u);
  EXPECT_LE(metrics.GaugeValue("scheduler.result_cache_bytes"), 2048);

  // Seed 1 was the least recently used and is gone: resubmitting re-runs
  // the job (no cache hit) and reproduces the exact result.
  auto again = scheduler.Submit({"g", "random", 0.5, 1});
  ASSERT_TRUE(again.ok());
  auto result = scheduler.Wait(*again);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 0u);

  auto shedder = core::MakeShedderByName("random", 1);
  ASSERT_TRUE(shedder.ok());
  auto direct = (*shedder)->Reduce(g, 0.5);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*result)->kept_edges, direct->kept_edges);
}

// Acceptance: cancelling a coalesced primary must not take its followers
// down with it — the first live follower is promoted and re-queued.
TEST(JobSchedulerTest, CancelOfQueuedPrimaryPromotesFollower) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterSlowGraph(store, "sleepy", std::chrono::milliseconds(150));
  const graph::Graph g = Clique(14);
  RegisterGraph(store, "fast", g);
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  auto blocker = scheduler.Submit({"sleepy", "random", 0.5, 1});
  ASSERT_TRUE(blocker.ok());
  WaitUntilDispatched(scheduler, *blocker);

  JobSpec spec{"fast", "random", 0.5, 2};
  auto primary = scheduler.Submit(spec);
  ASSERT_TRUE(primary.ok());
  auto follower = scheduler.Submit(spec);  // coalesces onto primary
  ASSERT_TRUE(follower.ok());
  EXPECT_EQ(metrics.CounterValue("scheduler.coalesced"), 1u);

  ASSERT_TRUE(scheduler.Cancel(*primary).ok());
  EXPECT_EQ(scheduler.Wait(*primary).status().code(), StatusCode::kCancelled);

  auto result = scheduler.Wait(*follower);
  ASSERT_TRUE(result.ok()) << result.status();
  auto status = scheduler.GetStatus(*follower);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  // The promoted follower ran on its own, it did not piggyback.
  EXPECT_FALSE(status->deduplicated);
  EXPECT_GE(metrics.CounterValue("scheduler.follower_promoted"), 1u);

  auto shedder = core::MakeShedderByName(spec.method, spec.seed);
  ASSERT_TRUE(shedder.ok());
  auto direct = (*shedder)->Reduce(g, spec.p);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*result)->kept_edges, direct->kept_edges);
  EXPECT_TRUE(scheduler.Wait(*blocker).ok());
}

// Same guarantee when the primary is already running: the token trips, the
// kernel aborts, and the follower re-runs the spec to completion.
TEST(JobSchedulerTest, CancelOfRunningPrimaryPromotesFollower) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  const graph::Graph big = BigCrrGraph(1500);
  RegisterGraph(store, "big", big);
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  JobSpec spec{"big", "crr", 0.5, 1};
  auto primary = scheduler.Submit(spec);
  ASSERT_TRUE(primary.ok());
  WaitUntilRunning(scheduler, *primary);
  auto follower = scheduler.Submit(spec);  // coalesces onto the running job
  ASSERT_TRUE(follower.ok());

  ASSERT_TRUE(scheduler.Cancel(*primary).ok());
  EXPECT_EQ(scheduler.Wait(*primary).status().code(), StatusCode::kCancelled);
  EXPECT_GE(metrics.CounterValue("scheduler.cancelled_while_running"), 1u);

  auto result = scheduler.Wait(*follower);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(metrics.CounterValue("scheduler.follower_promoted"), 1u);

  auto shedder = core::MakeShedderByName(spec.method, spec.seed);
  ASSERT_TRUE(shedder.ok());
  auto direct = (*shedder)->Reduce(big, spec.p);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*result)->kept_edges, direct->kept_edges);
}

TEST(JobSchedulerTest, BoundedQueueRejectsWhenFull) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterSlowGraph(store, "sleepy", std::chrono::milliseconds(150));
  RegisterGraph(store, "fast", Clique(10));
  JobScheduler scheduler(&store, &metrics,
                         {.workers = 1, .queue_capacity = 1});

  auto blocker = scheduler.Submit({"sleepy", "random", 0.5, 1});
  ASSERT_TRUE(blocker.ok());
  // Make sure the blocker occupies the single worker rather than the queue;
  // after that at most one extra distinct job fits, and the one after that
  // must be rejected.
  WaitUntilDispatched(scheduler, *blocker);
  auto q1 = scheduler.Submit({"fast", "random", 0.3, 2});
  auto q2 = scheduler.Submit({"fast", "random", 0.4, 3});
  EXPECT_TRUE(q1.ok() || q2.ok());
  StatusOr<JobId>* rejected = q1.ok() ? &q2 : &q1;
  if (q1.ok() && q2.ok()) {
    // Worker drained fast enough to accept both; force a full queue.
    auto q3 = scheduler.Submit({"fast", "random", 0.6, 4});
    auto q4 = scheduler.Submit({"fast", "random", 0.7, 5});
    rejected = !q3.ok() ? &q3 : &q4;
  }
  EXPECT_FALSE(rejected->ok());
  EXPECT_EQ(rejected->status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(metrics.CounterValue("scheduler.rejected_queue_full"), 1u);
  EXPECT_TRUE(scheduler.Wait(*blocker).ok());
}

TEST(JobSchedulerTest, ShutdownCancelsQueuedJobsAndStopsIntake) {
  GraphStore store;
  RegisterSlowGraph(store, "sleepy", std::chrono::milliseconds(100));
  RegisterGraph(store, "fast", Clique(10));
  JobScheduler scheduler(&store, nullptr, {.workers = 1});

  auto running = scheduler.Submit({"sleepy", "random", 0.5, 1});
  ASSERT_TRUE(running.ok());
  WaitUntilDispatched(scheduler, *running);
  auto queued = scheduler.Submit({"fast", "random", 0.5, 2});
  ASSERT_TRUE(queued.ok());
  scheduler.Shutdown();

  // The running job finished; the queued one was cancelled.
  EXPECT_TRUE(scheduler.Wait(*running).ok());
  EXPECT_EQ(scheduler.Wait(*queued).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(scheduler.Submit({"fast", "random", 0.5, 3}).status().code(),
            StatusCode::kFailedPrecondition);
}

// End-to-end: scheduler + store under a tiny budget — evictions and reloads
// happen mid-stream and every job still returns the right answer.
TEST(JobSchedulerTest, JobsSurviveStoreEvictionsMidStream) {
  MetricsRegistry metrics;
  GraphStoreOptions store_options;
  store_options.byte_budget = GraphStore::ApproxBytes(Clique(20)) + 100;
  GraphStore store(store_options, &metrics);
  const graph::Graph a = Clique(20);
  const graph::Graph b = Clique(18);
  RegisterGraph(store, "a", a);
  RegisterGraph(store, "b", b);
  JobScheduler scheduler(&store, &metrics, {.workers = 2});

  std::vector<std::pair<JobId, const graph::Graph*>> jobs;
  for (int round = 0; round < 4; ++round) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      auto ia = scheduler.Submit(
          {"a", "random", 0.5, 1000 + round * 10 + seed});
      auto ib = scheduler.Submit(
          {"b", "random", 0.5, 2000 + round * 10 + seed});
      ASSERT_TRUE(ia.ok());
      ASSERT_TRUE(ib.ok());
      jobs.emplace_back(*ia, &a);
      jobs.emplace_back(*ib, &b);
    }
  }
  for (const auto& [id, g] : jobs) {
    auto result = scheduler.Wait(id);
    ASSERT_TRUE(result.ok()) << result.status();
    // Every kept edge must be a valid id of the right parent graph.
    for (graph::EdgeId e : (*result)->kept_edges) {
      ASSERT_LT(e, g->NumEdges());
    }
  }
  EXPECT_GE(metrics.CounterValue("store.eviction"), 1u);
  EXPECT_GE(metrics.CounterValue("store.miss"), 2u);
}

TEST(JobSchedulerTest, QueueSecondsAndRunSecondsArePopulated) {
  GraphStore store;
  RegisterGraph(store, "g", Clique(12));
  JobScheduler scheduler(&store, nullptr, {.workers = 1});
  auto id = scheduler.Submit({"g", "crr", 0.5, 5});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.Wait(*id).ok());
  auto status = scheduler.GetStatus(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_GT(status->run_seconds, 0.0);
  EXPECT_GE(status->queue_seconds, 0.0);
}

TEST(JobSchedulerTest, PublishesPerPhaseSheddingTimings) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Clique(24));
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  auto id = scheduler.Submit({"g", "crr", 0.5});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(scheduler.Wait(*id).ok());

  // CRR reports phase1_seconds/phase2_seconds in SheddingResult::stats; the
  // scheduler republishes them as latency series.
  const LatencySnapshot phase1 =
      metrics.LatencyValue("scheduler.phase1_seconds");
  const LatencySnapshot phase2 =
      metrics.LatencyValue("scheduler.phase2_seconds");
  EXPECT_EQ(phase1.count, 1u);
  EXPECT_EQ(phase2.count, 1u);
  EXPECT_GE(phase1.sum_seconds, 0.0);
  EXPECT_GE(phase2.sum_seconds, 0.0);

  // A result-cache hit reuses the stored result without re-executing, so the
  // phase series must not double-count.
  auto cached = scheduler.Submit({"g", "crr", 0.5});
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(scheduler.Wait(*cached).ok());
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 1u);
  EXPECT_EQ(metrics.LatencyValue("scheduler.phase1_seconds").count, 1u);
}

TEST(JobSchedulerTest, OutputPathWritesTheKeptSnapshot) {
  const std::string path = ::testing::TempDir() + "/job_out.esg";
  std::filesystem::remove(path);
  GraphStore store;
  RegisterGraph(store, "g", Clique(12));
  JobScheduler scheduler(&store, nullptr, {.workers = 1});

  JobSpec spec;
  spec.dataset = "g";
  spec.method = "crr";
  spec.p = 0.5;
  spec.output_path = path;
  auto id = scheduler.Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status();
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok()) << result.status();

  auto snapshot = graph::LoadBinaryGraph(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->NumNodes(), 12u);
  EXPECT_EQ(snapshot->NumEdges(), (*result)->kept_edges.size());

  // output_path is part of the dedup key: the same shed without an output
  // is a distinct job, not a cache hit that would skip the write.
  JobSpec no_output = spec;
  no_output.output_path.clear();
  auto id2 = scheduler.Submit(no_output);
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(scheduler.Wait(*id2).ok());
  EXPECT_NE(*id2, *id);
}

TEST(JobSchedulerTest, UnwritableOutputPathFailsTheJob) {
  GraphStore store;
  RegisterGraph(store, "g", Clique(6));
  JobScheduler scheduler(&store, nullptr, {.workers = 1});
  JobSpec spec;
  spec.dataset = "g";
  spec.output_path = ::testing::TempDir() + "/no_such_dir/out.esg";
  auto id = scheduler.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  auto status = scheduler.GetStatus(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
}

TEST(JobSchedulerTest, JobStateNames) {
  EXPECT_EQ(JobStateToString(JobState::kQueued), "queued");
  EXPECT_EQ(JobStateToString(JobState::kRunning), "running");
  EXPECT_EQ(JobStateToString(JobState::kDone), "done");
  EXPECT_EQ(JobStateToString(JobState::kFailed), "failed");
  EXPECT_EQ(JobStateToString(JobState::kCancelled), "cancelled");
}

// ---------------------------------------------------------------------------
// JobScheduler QoS: fair-share tenants, priority lane, quotas, degradation

/// Blocks every load of its dataset until Release(), freezing the worker
/// that picked it up so a test can build up a queue deterministically.
struct Plug {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

void RegisterPluggedGraph(GraphStore& store, const std::string& name,
                          std::shared_ptr<Plug> plug) {
  ASSERT_TRUE(store
                  .Register(name,
                            [plug]() -> StatusOr<graph::Graph> {
                              std::unique_lock<std::mutex> lock(plug->mu);
                              plug->cv.wait(lock,
                                            [&] { return plug->released; });
                              return Clique(8);
                            })
                  .ok());
}

/// Records dispatch order: each dataset's loader appends its name to a
/// shared log when the (single) worker starts executing the job. Distinct
/// datasets per job keep the store's load cache out of the picture.
struct DispatchLog {
  std::mutex mu;
  std::vector<std::string> order;
  std::vector<std::string> Snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return order;
  }
};

void RegisterLoggedGraph(GraphStore& store, const std::string& name,
                         std::shared_ptr<DispatchLog> log,
                         std::chrono::milliseconds delay = {}) {
  ASSERT_TRUE(store
                  .Register(name,
                            [name, log, delay]() -> StatusOr<graph::Graph> {
                              {
                                std::lock_guard<std::mutex> lock(log->mu);
                                log->order.push_back(name);
                              }
                              if (delay.count() > 0) {
                                std::this_thread::sleep_for(delay);
                              }
                              return Clique(8);
                            })
                  .ok());
}

size_t CountPrefix(const std::vector<std::string>& order, size_t n,
                   char tenant_tag) {
  size_t hits = 0;
  for (size_t i = 0; i < std::min(n, order.size()); ++i) {
    if (!order[i].empty() && order[i][0] == tenant_tag) ++hits;
  }
  return hits;
}

// Acceptance (ISSUE 8): two tenants with 1:4 weights under saturation see
// dispatch slots split ~4:1. One worker + a plugged job make the deficit-
// round-robin order fully deterministic.
TEST(JobSchedulerQosTest, FairShareDispatchFollowsWeights) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  auto plug = std::make_shared<Plug>();
  auto log = std::make_shared<DispatchLog>();
  RegisterPluggedGraph(store, "plug", plug);

  JobSchedulerOptions options;
  options.workers = 1;
  options.tenants["gold"] = TenantConfig{4, 0};
  options.tenants["bronze"] = TenantConfig{1, 0};
  JobScheduler scheduler(&store, &metrics, options);

  auto blocker = scheduler.Submit({"plug", "random", 0.5, 1});
  ASSERT_TRUE(blocker.ok());
  WaitUntilDispatched(scheduler, *blocker);

  std::vector<JobId> ids;
  for (int i = 0; i < 8; ++i) {
    for (const char* tenant : {"gold", "bronze"}) {
      const std::string dataset =
          StrFormat("%c%d", tenant[0], i);  // g0/b0, g1/b1, ...
      RegisterLoggedGraph(store, dataset, log);
      JobSpec spec;
      spec.dataset = dataset;
      spec.method = "random";
      spec.p = 0.5;
      spec.seed = 1;
      spec.tenant = tenant;
      auto id = scheduler.Submit(spec);
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(*id);
    }
  }
  plug->Release();
  ASSERT_TRUE(scheduler.Wait(*blocker).ok());
  for (JobId id : ids) ASSERT_TRUE(scheduler.Wait(id).ok());

  const auto order = log->Snapshot();
  ASSERT_EQ(order.size(), 16u);
  // Weight 4 vs 1: gold owns ~4/5 of early dispatch slots. Exact DRR order
  // depends on ring phase, so assert the share with +-1 slack.
  EXPECT_GE(CountPrefix(order, 5, 'g'), 3u) << "first 5: gold under-served";
  EXPECT_GE(CountPrefix(order, 10, 'g'), 7u)
      << "first 10: gold under-served";
  EXPECT_GE(CountPrefix(order, 5, 'b'), 1u)
      << "first 5: bronze starved outright";
  EXPECT_EQ(metrics.CounterValue("scheduler.tenant_submitted.gold"), 8u);
  EXPECT_EQ(metrics.CounterValue("scheduler.tenant_done.gold"), 8u);
  EXPECT_EQ(metrics.CounterValue("scheduler.tenant_done.bronze"), 8u);
  EXPECT_EQ(metrics.CounterValue("scheduler.tenant_rejected.gold"), 0u);
}

// Acceptance (ISSUE 8): a priority-lane job dispatches ahead of
// earlier-queued normal-lane work from any tenant.
TEST(JobSchedulerQosTest, PriorityLanePreemptsQueueOrder) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  auto plug = std::make_shared<Plug>();
  auto log = std::make_shared<DispatchLog>();
  RegisterPluggedGraph(store, "plug", plug);
  RegisterLoggedGraph(store, "n0", log);
  RegisterLoggedGraph(store, "n1", log);
  RegisterLoggedGraph(store, "prio", log);
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  auto blocker = scheduler.Submit({"plug", "random", 0.5, 1});
  ASSERT_TRUE(blocker.ok());
  WaitUntilDispatched(scheduler, *blocker);

  std::vector<JobId> ids;
  for (const char* dataset : {"n0", "n1"}) {
    JobSpec spec;
    spec.dataset = dataset;
    spec.method = "random";
    auto id = scheduler.Submit(spec);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  JobSpec urgent;
  urgent.dataset = "prio";
  urgent.method = "random";
  urgent.priority = true;
  auto prio = scheduler.Submit(urgent);
  ASSERT_TRUE(prio.ok());
  ids.push_back(*prio);

  plug->Release();
  for (JobId id : ids) ASSERT_TRUE(scheduler.Wait(id).ok());

  const auto order = log->Snapshot();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "prio") << "priority lane did not preempt";
}

// A priority duplicate of a queued normal-lane job boosts the primary into
// the priority lane instead of forking a second execution.
TEST(JobSchedulerQosTest, PriorityDuplicateBoostsQueuedPrimary) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  auto plug = std::make_shared<Plug>();
  auto log = std::make_shared<DispatchLog>();
  RegisterPluggedGraph(store, "plug", plug);
  RegisterLoggedGraph(store, "x", log);
  RegisterLoggedGraph(store, "y", log);
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  auto blocker = scheduler.Submit({"plug", "random", 0.5, 1});
  ASSERT_TRUE(blocker.ok());
  WaitUntilDispatched(scheduler, *blocker);

  JobSpec x{"x", "random", 0.5, 1};
  auto first = scheduler.Submit(x);
  ASSERT_TRUE(first.ok());
  auto other = scheduler.Submit({"y", "random", 0.5, 1});
  ASSERT_TRUE(other.ok());
  JobSpec boosted = x;
  boosted.priority = true;
  auto dup = scheduler.Submit(boosted);
  ASSERT_TRUE(dup.ok());

  plug->Release();
  ASSERT_TRUE(scheduler.Wait(*first).ok());
  ASSERT_TRUE(scheduler.Wait(*other).ok());
  auto dup_result = scheduler.Wait(*dup);
  ASSERT_TRUE(dup_result.ok());

  const auto order = log->Snapshot();
  ASSERT_EQ(order.size(), 2u);  // the duplicate never executed separately
  EXPECT_EQ(order[0], "x") << "boosted primary did not jump the queue";
  EXPECT_EQ(metrics.CounterValue("scheduler.coalesced"), 1u);
  EXPECT_EQ(metrics.CounterValue("scheduler.priority_boosted"), 1u);
}

// A tenant at its max_running quota is skipped — other tenants keep the
// spare worker — and resumes once one of its jobs finishes.
TEST(JobSchedulerQosTest, TenantQuotaCapsConcurrency) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  auto log = std::make_shared<DispatchLog>();
  RegisterLoggedGraph(store, "c0", log, std::chrono::milliseconds(150));
  RegisterLoggedGraph(store, "c1", log);
  RegisterLoggedGraph(store, "f0", log);

  JobSchedulerOptions options;
  options.workers = 2;
  options.tenants["capped"] = TenantConfig{1, 1};
  JobScheduler scheduler(&store, &metrics, options);

  JobSpec slow;
  slow.dataset = "c0";
  slow.method = "random";
  slow.tenant = "capped";
  auto c0 = scheduler.Submit(slow);
  ASSERT_TRUE(c0.ok());
  WaitUntilDispatched(scheduler, *c0);

  JobSpec second = slow;
  second.dataset = "c1";
  auto c1 = scheduler.Submit(second);
  ASSERT_TRUE(c1.ok());
  JobSpec free_spec;
  free_spec.dataset = "f0";
  free_spec.method = "random";
  free_spec.tenant = "other";
  auto f0 = scheduler.Submit(free_spec);
  ASSERT_TRUE(f0.ok());

  ASSERT_TRUE(scheduler.Wait(*c0).ok());
  ASSERT_TRUE(scheduler.Wait(*c1).ok());
  ASSERT_TRUE(scheduler.Wait(*f0).ok());

  const auto order = log->Snapshot();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "c0");
  // c1 was quota-blocked behind c0, so the other tenant's job took the
  // second worker despite arriving later.
  EXPECT_EQ(order[1], "f0");
  EXPECT_EQ(order[2], "c1");
}

// Acceptance (ISSUE 8): under pressure an opted-in CRR request is served by
// a cheaper ladder tier, and the applied tier is recorded — never silent.
TEST(JobSchedulerQosTest, DegradationTierIsRecordedNeverSilent) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  const graph::Graph g = Clique(16);
  RegisterGraph(store, "g", g);

  JobSchedulerOptions options;
  options.workers = 1;
  options.degrade.enabled = true;
  JobScheduler scheduler(&store, &metrics, options);

  JobSpec spec;
  spec.dataset = "g";
  spec.method = "crr";
  spec.p = 0.5;
  spec.seed = 7;
  spec.allow_degrade = true;
  spec.pressure = 0.8;  // tier1 band: one step down the ladder
  auto id = scheduler.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());

  auto status = scheduler.GetStatus(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->requested_method, "crr");
  EXPECT_EQ(status->applied_method, "bm2");
  EXPECT_EQ(status->degrade_kind,
            static_cast<uint8_t>(DegradeKind::kCheaperTier));
  // p is never silently changed by tier degradation.
  EXPECT_DOUBLE_EQ(status->requested_p, 0.5);
  EXPECT_DOUBLE_EQ(status->applied_p, 0.5);
  EXPECT_EQ(metrics.CounterValue("scheduler.degraded_tier"), 1u);

  // The answer really is the cheaper tier's answer.
  auto shedder = core::MakeShedderByName("bm2", spec.seed);
  ASSERT_TRUE(shedder.ok());
  auto direct = (*shedder)->Reduce(g, spec.p);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*result)->kept_edges, direct->kept_edges);

  // Deeper pressure bands step further down the ladder.
  JobSpec drowning = spec;
  drowning.seed = 8;
  drowning.pressure = 1.6;  // tier3 band: crr -> random
  auto deep = scheduler.Submit(drowning);
  ASSERT_TRUE(deep.ok());
  ASSERT_TRUE(scheduler.Wait(*deep).ok());
  auto deep_status = scheduler.GetStatus(*deep);
  ASSERT_TRUE(deep_status.ok());
  EXPECT_EQ(deep_status->applied_method, "random");
}

// Acceptance (ISSUE 8): past the pressure threshold a cached coarser-p
// result for the requested method is served instead of computing anything,
// with the applied p recorded (requested p untouched).
TEST(JobSchedulerQosTest, DegradationServesCachedCoarserP) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Clique(16));

  JobSchedulerOptions options;
  options.workers = 1;
  options.degrade.enabled = true;
  JobScheduler scheduler(&store, &metrics, options);

  // Prime the cache with the coarser run (no pressure, no degradation).
  JobSpec coarse;
  coarse.dataset = "g";
  coarse.method = "bm2";
  coarse.p = 0.4;
  coarse.seed = 9;
  auto primed = scheduler.Submit(coarse);
  ASSERT_TRUE(primed.ok());
  auto primed_result = scheduler.Wait(*primed);
  ASSERT_TRUE(primed_result.ok());

  JobSpec wanted = coarse;
  wanted.p = 0.5;
  wanted.allow_degrade = true;
  wanted.pressure = 0.8;
  auto id = scheduler.Submit(wanted);
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());
  // Same shared result object: nothing was computed.
  EXPECT_EQ(result->get(), primed_result->get());

  auto status = scheduler.GetStatus(*id);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->deduplicated);
  EXPECT_EQ(status->applied_method, "bm2");  // requested method kept
  EXPECT_EQ(status->degrade_kind,
            static_cast<uint8_t>(DegradeKind::kCachedCoarserP));
  EXPECT_DOUBLE_EQ(status->requested_p, 0.5);
  EXPECT_DOUBLE_EQ(status->applied_p, 0.4);
  EXPECT_EQ(metrics.CounterValue("scheduler.degraded_cached_p"), 1u);

  // A gap beyond max_p_gap disqualifies the cached result: the request is
  // tier-degraded instead of answered with a wildly coarser p.
  JobSpec far = coarse;
  far.p = 0.8;
  far.allow_degrade = true;
  far.pressure = 0.8;
  auto far_id = scheduler.Submit(far);
  ASSERT_TRUE(far_id.ok());
  ASSERT_TRUE(scheduler.Wait(*far_id).ok());
  auto far_status = scheduler.GetStatus(*far_id);
  ASSERT_TRUE(far_status.ok());
  EXPECT_NE(far_status->degrade_kind,
            static_cast<uint8_t>(DegradeKind::kCachedCoarserP));
  EXPECT_DOUBLE_EQ(far_status->applied_p, 0.8);
}

// No pressure, no opt-in, or a disabled policy: requests run exactly as
// submitted.
TEST(JobSchedulerQosTest, NoDegradationWithoutPressureOrOptIn) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Clique(12));

  JobSchedulerOptions options;
  options.workers = 1;
  options.degrade.enabled = true;
  JobScheduler scheduler(&store, &metrics, options);

  // Opted in but unpressured.
  JobSpec calm;
  calm.dataset = "g";
  calm.method = "crr";
  calm.p = 0.5;
  calm.seed = 3;
  calm.allow_degrade = true;
  auto calm_id = scheduler.Submit(calm);
  ASSERT_TRUE(calm_id.ok());
  ASSERT_TRUE(scheduler.Wait(*calm_id).ok());
  auto calm_status = scheduler.GetStatus(*calm_id);
  ASSERT_TRUE(calm_status.ok());
  EXPECT_EQ(calm_status->applied_method, "crr");
  EXPECT_EQ(calm_status->degrade_kind, 0u);

  // Pressured but not opted in.
  JobSpec opted_out = calm;
  opted_out.seed = 4;
  opted_out.allow_degrade = false;
  opted_out.pressure = 2.0;
  auto out_id = scheduler.Submit(opted_out);
  ASSERT_TRUE(out_id.ok());
  ASSERT_TRUE(scheduler.Wait(*out_id).ok());
  auto out_status = scheduler.GetStatus(*out_id);
  ASSERT_TRUE(out_status.ok());
  EXPECT_EQ(out_status->applied_method, "crr");
  EXPECT_EQ(out_status->degrade_kind, 0u);
  EXPECT_EQ(metrics.CounterValue("scheduler.degraded_tier"), 0u);
}

// Tenants never share dedup: identical specs under different tenants are
// separate executions (QoS isolation beats cross-tenant caching).
TEST(JobSchedulerQosTest, TenantIsPartOfTheDedupKey) {
  MetricsRegistry metrics;
  GraphStore store({}, &metrics);
  RegisterGraph(store, "g", Clique(12));
  JobScheduler scheduler(&store, &metrics, {.workers = 1});

  JobSpec spec;
  spec.dataset = "g";
  spec.method = "random";
  spec.p = 0.5;
  spec.seed = 5;
  spec.tenant = "a";
  auto first = scheduler.Submit(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(scheduler.Wait(*first).ok());

  JobSpec other_tenant = spec;
  other_tenant.tenant = "b";
  auto second = scheduler.Submit(other_tenant);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(scheduler.Wait(*second).ok());
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 0u);
  EXPECT_EQ(metrics.CounterValue("scheduler.coalesced"), 0u);

  // Same tenant does hit the cache.
  auto third = scheduler.Submit(spec);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(scheduler.Wait(*third).ok());
  EXPECT_EQ(metrics.CounterValue("scheduler.result_cache_hit"), 1u);
}

}  // namespace
}  // namespace edgeshed::service
