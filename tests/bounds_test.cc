#include "core/bounds.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

TEST(BoundsTest, CrrBoundFormula) {
  auto g = PaperExampleGraph();  // |E| = 11, |V| = 11
  EXPECT_NEAR(CrrAverageDeltaBound(g, 0.5), 4 * 0.5 * 0.5 * 1.0, 1e-12);
  EXPECT_NEAR(CrrAverageDeltaBound(g, 0.1), 4 * 0.1 * 0.9 * 1.0, 1e-12);
}

TEST(BoundsTest, CrrBoundSymmetricInP) {
  auto g = PaperExampleGraph();
  EXPECT_NEAR(CrrAverageDeltaBound(g, 0.3), CrrAverageDeltaBound(g, 0.7),
              1e-12);
}

TEST(BoundsTest, CrrBoundMaximalAtHalf) {
  auto g = PaperExampleGraph();
  EXPECT_GT(CrrAverageDeltaBound(g, 0.5), CrrAverageDeltaBound(g, 0.4));
  EXPECT_GT(CrrAverageDeltaBound(g, 0.5), CrrAverageDeltaBound(g, 0.6));
}

TEST(BoundsTest, Bm2BoundFormula) {
  auto g = PaperExampleGraph();
  EXPECT_NEAR(Bm2AverageDeltaBound(g, 0.5), 0.5 + 0.5 * 1.0, 1e-12);
  EXPECT_NEAR(Bm2AverageDeltaBound(g, 0.9), 0.5 + 0.1 * 1.0, 1e-12);
}

TEST(BoundsTest, Bm2BoundDecreasesInP) {
  auto g = PaperExampleGraph();
  double previous = 1e100;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double bound = Bm2AverageDeltaBound(g, p);
    EXPECT_LT(bound, previous);
    previous = bound;
  }
}

TEST(BoundsTest, ScalesWithDensity) {
  auto sparse = PaperExampleGraph();                       // |E|/|V| = 1
  auto dense = edgeshed::testing::Clique(11);              // |E|/|V| = 5
  EXPECT_GT(CrrAverageDeltaBound(dense, 0.5),
            CrrAverageDeltaBound(sparse, 0.5));
  EXPECT_GT(Bm2AverageDeltaBound(dense, 0.5),
            Bm2AverageDeltaBound(sparse, 0.5));
}

}  // namespace
}  // namespace edgeshed::core
