#include "embedding/random_walks.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::embedding {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Path;

TEST(RandomWalksTest, CorpusShape) {
  auto g = Clique(10);
  WalkOptions options;
  options.walks_per_node = 4;
  options.walk_length = 10;
  auto corpus = GenerateWalks(g, options);
  EXPECT_EQ(corpus.NumWalks(), 40u);
  EXPECT_EQ(corpus.tokens.size(), 400u);
}

TEST(RandomWalksTest, WalksFollowEdges) {
  auto g = Path(20);
  WalkOptions options;
  options.walks_per_node = 2;
  options.walk_length = 8;
  auto corpus = GenerateWalks(g, options);
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    for (uint64_t i = corpus.offsets[w] + 1; i < corpus.offsets[w + 1]; ++i) {
      EXPECT_TRUE(g.HasEdge(corpus.tokens[i - 1], corpus.tokens[i]));
    }
  }
}

TEST(RandomWalksTest, IsolatedNodesProduceNoWalks) {
  auto g = MustBuild(5, {{0, 1}});
  WalkOptions options;
  options.walks_per_node = 3;
  options.walk_length = 5;
  auto corpus = GenerateWalks(g, options);
  EXPECT_EQ(corpus.NumWalks(), 6u);  // only nodes 0 and 1 walk
  for (graph::NodeId token : corpus.tokens) {
    EXPECT_LE(token, 1u);
  }
}

TEST(RandomWalksTest, EveryConnectedNodeStartsWalks) {
  auto g = Clique(6);
  WalkOptions options;
  options.walks_per_node = 2;
  options.walk_length = 3;
  auto corpus = GenerateWalks(g, options);
  std::set<graph::NodeId> starts;
  for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
    starts.insert(corpus.tokens[corpus.offsets[w]]);
  }
  EXPECT_EQ(starts.size(), 6u);
}

TEST(RandomWalksTest, DeterministicGivenSeed) {
  auto g = Clique(8);
  WalkOptions options;
  options.seed = 77;
  auto a = GenerateWalks(g, options);
  auto b = GenerateWalks(g, options);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.offsets, b.offsets);
}

TEST(RandomWalksTest, ThreadsDoNotChangeCorpus) {
  auto g = Clique(8);
  WalkOptions serial;
  serial.threads = 1;
  WalkOptions parallel;
  parallel.threads = 4;
  EXPECT_EQ(GenerateWalks(g, serial).tokens,
            GenerateWalks(g, parallel).tokens);
}

TEST(RandomWalksTest, HighPDiscouragesBacktracking) {
  // On a cycle, with p huge (returning is unlikely) walks should rarely
  // revisit the previous node; with p tiny they return constantly.
  auto g = edgeshed::testing::Cycle(30);
  WalkOptions discourage;
  discourage.p = 100.0;
  discourage.q = 1.0;
  discourage.walks_per_node = 5;
  discourage.walk_length = 20;
  WalkOptions encourage = discourage;
  encourage.p = 0.01;

  auto count_backtracks = [](const WalkCorpus& corpus) {
    uint64_t backtracks = 0;
    uint64_t steps = 0;
    for (uint64_t w = 0; w < corpus.NumWalks(); ++w) {
      for (uint64_t i = corpus.offsets[w] + 2; i < corpus.offsets[w + 1];
           ++i) {
        ++steps;
        if (corpus.tokens[i] == corpus.tokens[i - 2]) ++backtracks;
      }
    }
    return steps == 0 ? 0.0
                      : static_cast<double>(backtracks) /
                            static_cast<double>(steps);
  };
  double low_return = count_backtracks(GenerateWalks(g, discourage));
  double high_return = count_backtracks(GenerateWalks(g, encourage));
  EXPECT_LT(low_return, 0.2);
  EXPECT_GT(high_return, 0.8);
}

TEST(RandomWalksTest, EmptyGraphProducesEmptyCorpus) {
  graph::Graph g;
  auto corpus = GenerateWalks(g, {});
  EXPECT_EQ(corpus.NumWalks(), 0u);
  EXPECT_TRUE(corpus.tokens.empty());
}

TEST(RandomWalksTest, ZeroLengthProducesEmptyCorpus) {
  auto g = Clique(4);
  WalkOptions options;
  options.walk_length = 0;
  auto corpus = GenerateWalks(g, options);
  EXPECT_EQ(corpus.NumWalks(), 0u);
}

}  // namespace
}  // namespace edgeshed::embedding
