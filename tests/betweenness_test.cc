#include "analytics/betweenness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::Path;
using ::edgeshed::testing::Star;
using ::edgeshed::testing::TwoTrianglesWithBridge;

TEST(BetweennessTest, PathOfThreeNodeScores) {
  auto scores = Betweenness(Path(3), BetweennessOptions::Exact());
  EXPECT_DOUBLE_EQ(scores.node[0], 0.0);
  EXPECT_DOUBLE_EQ(scores.node[1], 1.0);  // the single (0,2) pair
  EXPECT_DOUBLE_EQ(scores.node[2], 0.0);
}

TEST(BetweennessTest, PathOfThreeEdgeScores) {
  auto g = Path(3);
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  // Each edge carries its endpoint pair plus the (0,2) pair.
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(scores.edge[e], 2.0);
  }
}

TEST(BetweennessTest, PathOfFiveMiddleDominates) {
  auto scores = Betweenness(Path(5), BetweennessOptions::Exact());
  // Node 2 mediates pairs (0,3),(0,4),(1,3),(1,4) = 4.
  EXPECT_DOUBLE_EQ(scores.node[2], 4.0);
  EXPECT_DOUBLE_EQ(scores.node[1], 3.0);
  EXPECT_DOUBLE_EQ(scores.node[0], 0.0);
}

TEST(BetweennessTest, StarCenter) {
  const int n = 8;
  auto scores = Betweenness(Star(n), BetweennessOptions::Exact());
  // Center mediates all C(n-1, 2) leaf pairs.
  EXPECT_DOUBLE_EQ(scores.node[0], (n - 1) * (n - 2) / 2.0);
  for (int u = 1; u < n; ++u) EXPECT_DOUBLE_EQ(scores.node[u], 0.0);
}

TEST(BetweennessTest, StarEdges) {
  const int n = 8;
  auto g = Star(n);
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  // Each spoke carries its own pair plus (n-2) leaf pairs.
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(scores.edge[e], static_cast<double>(n - 1));
  }
}

TEST(BetweennessTest, CliqueNodesAreZero) {
  auto scores = Betweenness(Clique(6), BetweennessOptions::Exact());
  for (double s : scores.node) EXPECT_DOUBLE_EQ(s, 0.0);
  // Every edge carries exactly its endpoint pair.
  for (double s : scores.edge) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(BetweennessTest, CycleSplitsPaths) {
  auto scores = Betweenness(Cycle(4), BetweennessOptions::Exact());
  // Each opposite pair has two shortest paths; each mediates 1/2.
  for (double s : scores.node) EXPECT_DOUBLE_EQ(s, 0.5);
}

TEST(BetweennessTest, BridgeHasMaximumEdgeScore) {
  auto g = TwoTrianglesWithBridge();
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  graph::EdgeId bridge = g.FindEdge(2, 3);
  ASSERT_NE(bridge, graph::kInvalidEdge);
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e != bridge) {
      EXPECT_LT(scores.edge[e], scores.edge[bridge]);
    }
  }
  // 3x3 cross pairs all cross the bridge, plus its endpoint pair is (2,3).
  EXPECT_DOUBLE_EQ(scores.edge[bridge], 9.0);
}

TEST(BetweennessTest, BridgeEndpointsHaveMaxNodeScore) {
  auto g = TwoTrianglesWithBridge();
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  EXPECT_GT(scores.node[2], scores.node[0]);
  EXPECT_DOUBLE_EQ(scores.node[2], scores.node[3]);
}

TEST(BetweennessTest, DisconnectedGraphIsFine) {
  auto g = edgeshed::testing::MustBuild(6, {{0, 1}, {1, 2}, {3, 4}});
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  EXPECT_DOUBLE_EQ(scores.node[1], 1.0);
  EXPECT_DOUBLE_EQ(scores.node[4], 0.0);
}

TEST(BetweennessTest, EmptyGraph) {
  graph::Graph g;
  auto scores = Betweenness(g);
  EXPECT_TRUE(scores.node.empty());
  EXPECT_TRUE(scores.edge.empty());
}

TEST(BetweennessTest, ThreadCountDoesNotChangeResult) {
  Rng rng(31);
  graph::Graph g = graph::ErdosRenyi(200, 800, rng);
  BetweennessOptions one = BetweennessOptions::Exact();
  one.threads = 1;
  BetweennessOptions many = BetweennessOptions::Exact();
  many.threads = 4;
  auto a = Betweenness(g, one);
  auto b = Betweenness(g, many);
  for (size_t i = 0; i < a.node.size(); ++i) {
    EXPECT_NEAR(a.node[i], b.node[i], 1e-7);
  }
  for (size_t i = 0; i < a.edge.size(); ++i) {
    EXPECT_NEAR(a.edge[i], b.edge[i], 1e-7);
  }
}

TEST(BetweennessTest, SampledEstimatesRankHubsHighly) {
  Rng rng(32);
  graph::Graph g = graph::BarabasiAlbert(2000, 3, rng);
  auto exact = Betweenness(g, BetweennessOptions::Exact());

  BetweennessOptions sampled_options;
  sampled_options.exact_node_threshold = 1;  // force sampling
  sampled_options.sample_sources = 256;
  auto sampled = Betweenness(g, sampled_options);

  auto top_nodes = [](const std::vector<double>& scores, size_t k) {
    std::vector<uint32_t> ids(scores.size());
    std::iota(ids.begin(), ids.end(), 0u);
    std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                      ids.end(), [&](uint32_t a, uint32_t b) {
                        return scores[a] > scores[b];
                      });
    ids.resize(k);
    return ids;
  };
  auto exact_top = top_nodes(exact.node, 10);
  auto sampled_top = top_nodes(sampled.node, 40);
  std::unordered_set<uint32_t> sampled_set(sampled_top.begin(),
                                           sampled_top.end());
  int hits = 0;
  for (uint32_t u : exact_top) hits += sampled_set.contains(u);
  EXPECT_GE(hits, 6);  // sampled ranking finds most true top nodes
}

TEST(BetweennessTest, SampledMagnitudeIsUnbiasedScale) {
  Rng rng(33);
  graph::Graph g = graph::ErdosRenyi(1000, 4000, rng);
  auto exact = Betweenness(g, BetweennessOptions::Exact());
  BetweennessOptions sampled_options;
  sampled_options.exact_node_threshold = 1;
  sampled_options.sample_sources = 500;
  auto sampled = Betweenness(g, sampled_options);
  double exact_sum = 0;
  double sampled_sum = 0;
  for (double s : exact.node) exact_sum += s;
  for (double s : sampled.node) sampled_sum += s;
  EXPECT_NEAR(sampled_sum / exact_sum, 1.0, 0.15);
}

TEST(EdgesByBetweennessTest, DescendingAndComplete) {
  auto g = TwoTrianglesWithBridge();
  auto order = EdgesByBetweennessDescending(g, BetweennessOptions::Exact());
  EXPECT_EQ(order.size(), g.NumEdges());
  EXPECT_EQ(order[0], g.FindEdge(2, 3));  // bridge first
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(scores.edge[order[i - 1]], scores.edge[order[i]]);
  }
}

TEST(EdgesByBetweennessTest, TiesBrokenByEdgeId) {
  auto g = Clique(5);  // all edges tie
  auto order = EdgesByBetweennessDescending(g, BetweennessOptions::Exact());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace edgeshed::analytics
