#include "analytics/betweenness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::Path;
using ::edgeshed::testing::Star;
using ::edgeshed::testing::TwoTrianglesWithBridge;

TEST(BetweennessTest, PathOfThreeNodeScores) {
  auto scores = Betweenness(Path(3), BetweennessOptions::Exact());
  EXPECT_DOUBLE_EQ(scores.node[0], 0.0);
  EXPECT_DOUBLE_EQ(scores.node[1], 1.0);  // the single (0,2) pair
  EXPECT_DOUBLE_EQ(scores.node[2], 0.0);
}

TEST(BetweennessTest, PathOfThreeEdgeScores) {
  auto g = Path(3);
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  // Each edge carries its endpoint pair plus the (0,2) pair.
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(scores.edge[e], 2.0);
  }
}

TEST(BetweennessTest, PathOfFiveMiddleDominates) {
  auto scores = Betweenness(Path(5), BetweennessOptions::Exact());
  // Node 2 mediates pairs (0,3),(0,4),(1,3),(1,4) = 4.
  EXPECT_DOUBLE_EQ(scores.node[2], 4.0);
  EXPECT_DOUBLE_EQ(scores.node[1], 3.0);
  EXPECT_DOUBLE_EQ(scores.node[0], 0.0);
}

TEST(BetweennessTest, StarCenter) {
  const int n = 8;
  auto scores = Betweenness(Star(n), BetweennessOptions::Exact());
  // Center mediates all C(n-1, 2) leaf pairs.
  EXPECT_DOUBLE_EQ(scores.node[0], (n - 1) * (n - 2) / 2.0);
  for (int u = 1; u < n; ++u) EXPECT_DOUBLE_EQ(scores.node[u], 0.0);
}

TEST(BetweennessTest, StarEdges) {
  const int n = 8;
  auto g = Star(n);
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  // Each spoke carries its own pair plus (n-2) leaf pairs.
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_DOUBLE_EQ(scores.edge[e], static_cast<double>(n - 1));
  }
}

TEST(BetweennessTest, CliqueNodesAreZero) {
  auto scores = Betweenness(Clique(6), BetweennessOptions::Exact());
  for (double s : scores.node) EXPECT_DOUBLE_EQ(s, 0.0);
  // Every edge carries exactly its endpoint pair.
  for (double s : scores.edge) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(BetweennessTest, CycleSplitsPaths) {
  auto scores = Betweenness(Cycle(4), BetweennessOptions::Exact());
  // Each opposite pair has two shortest paths; each mediates 1/2.
  for (double s : scores.node) EXPECT_DOUBLE_EQ(s, 0.5);
}

TEST(BetweennessTest, BridgeHasMaximumEdgeScore) {
  auto g = TwoTrianglesWithBridge();
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  graph::EdgeId bridge = g.FindEdge(2, 3);
  ASSERT_NE(bridge, graph::kInvalidEdge);
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (e != bridge) {
      EXPECT_LT(scores.edge[e], scores.edge[bridge]);
    }
  }
  // 3x3 cross pairs all cross the bridge, plus its endpoint pair is (2,3).
  EXPECT_DOUBLE_EQ(scores.edge[bridge], 9.0);
}

TEST(BetweennessTest, BridgeEndpointsHaveMaxNodeScore) {
  auto g = TwoTrianglesWithBridge();
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  EXPECT_GT(scores.node[2], scores.node[0]);
  EXPECT_DOUBLE_EQ(scores.node[2], scores.node[3]);
}

TEST(BetweennessTest, DisconnectedGraphIsFine) {
  auto g = edgeshed::testing::MustBuild(6, {{0, 1}, {1, 2}, {3, 4}});
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  EXPECT_DOUBLE_EQ(scores.node[1], 1.0);
  EXPECT_DOUBLE_EQ(scores.node[4], 0.0);
}

TEST(BetweennessTest, EmptyGraph) {
  graph::Graph g;
  auto scores = Betweenness(g);
  EXPECT_TRUE(scores.node.empty());
  EXPECT_TRUE(scores.edge.empty());
}

TEST(BetweennessTest, ThreadCountDoesNotChangeResult) {
  Rng rng(31);
  graph::Graph g = graph::ErdosRenyi(200, 800, rng);
  BetweennessOptions one = BetweennessOptions::Exact();
  one.threads = 1;
  BetweennessOptions many = BetweennessOptions::Exact();
  many.threads = 4;
  auto a = Betweenness(g, one);
  auto b = Betweenness(g, many);
  for (size_t i = 0; i < a.node.size(); ++i) {
    EXPECT_NEAR(a.node[i], b.node[i], 1e-7);
  }
  for (size_t i = 0; i < a.edge.size(); ++i) {
    EXPECT_NEAR(a.edge[i], b.edge[i], 1e-7);
  }
}

TEST(BetweennessTest, SampledEstimatesRankHubsHighly) {
  Rng rng(32);
  graph::Graph g = graph::BarabasiAlbert(2000, 3, rng);
  auto exact = Betweenness(g, BetweennessOptions::Exact());

  BetweennessOptions sampled_options;
  sampled_options.exact_node_threshold = 1;  // force sampling
  sampled_options.sample_sources = 256;
  auto sampled = Betweenness(g, sampled_options);

  auto top_nodes = [](const std::vector<double>& scores, size_t k) {
    std::vector<uint32_t> ids(scores.size());
    std::iota(ids.begin(), ids.end(), 0u);
    std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k),
                      ids.end(), [&](uint32_t a, uint32_t b) {
                        return scores[a] > scores[b];
                      });
    ids.resize(k);
    return ids;
  };
  auto exact_top = top_nodes(exact.node, 10);
  auto sampled_top = top_nodes(sampled.node, 40);
  std::unordered_set<uint32_t> sampled_set(sampled_top.begin(),
                                           sampled_top.end());
  int hits = 0;
  for (uint32_t u : exact_top) hits += sampled_set.contains(u);
  EXPECT_GE(hits, 6);  // sampled ranking finds most true top nodes
}

TEST(BetweennessTest, SampledMagnitudeIsUnbiasedScale) {
  Rng rng(33);
  graph::Graph g = graph::ErdosRenyi(1000, 4000, rng);
  auto exact = Betweenness(g, BetweennessOptions::Exact());
  BetweennessOptions sampled_options;
  sampled_options.exact_node_threshold = 1;
  sampled_options.sample_sources = 500;
  auto sampled = Betweenness(g, sampled_options);
  double exact_sum = 0;
  double sampled_sum = 0;
  for (double s : exact.node) exact_sum += s;
  for (double s : sampled.node) sampled_sum += s;
  EXPECT_NEAR(sampled_sum / exact_sum, 1.0, 0.15);
}

TEST(EdgesByBetweennessTest, DescendingAndComplete) {
  auto g = TwoTrianglesWithBridge();
  auto order = EdgesByBetweennessDescending(g, BetweennessOptions::Exact());
  EXPECT_EQ(order.size(), g.NumEdges());
  EXPECT_EQ(order[0], g.FindEdge(2, 3));  // bridge first
  auto scores = Betweenness(g, BetweennessOptions::Exact());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(scores.edge[order[i - 1]], scores.edge[order[i]]);
  }
}

TEST(EdgesByBetweennessTest, TiesBrokenByEdgeId) {
  auto g = Clique(5);  // all edges tie
  auto order = EdgesByBetweennessDescending(g, BetweennessOptions::Exact());
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

// ---- Direction-optimizing hybrid kernel (DESIGN.md §12) ----

void ExpectBitIdentical(const BetweennessScores& a,
                        const BetweennessScores& b) {
  ASSERT_EQ(a.node.size(), b.node.size());
  ASSERT_EQ(a.edge.size(), b.edge.size());
  for (size_t i = 0; i < a.node.size(); ++i) {
    ASSERT_EQ(a.node[i], b.node[i]) << "node " << i;
  }
  for (size_t i = 0; i < a.edge.size(); ++i) {
    ASSERT_EQ(a.edge[i], b.edge[i]) << "edge " << i;
  }
  EXPECT_EQ(a.sources_processed, b.sources_processed);
}

TEST(HybridKernelTest, ExactScoresBitIdenticalToClassic) {
  Rng rng(41);
  std::vector<graph::Graph> graphs;
  graphs.push_back(Path(7));
  graphs.push_back(Star(9));
  graphs.push_back(Clique(6));
  graphs.push_back(Cycle(10));
  graphs.push_back(TwoTrianglesWithBridge());
  graphs.push_back(graph::ErdosRenyi(300, 1200, rng));
  graphs.push_back(graph::BarabasiAlbert(500, 3, rng));
  for (size_t i = 0; i < graphs.size(); ++i) {
    BetweennessOptions classic = BetweennessOptions::Exact();
    classic.kernel = BetweennessOptions::Kernel::kClassic;
    BetweennessOptions hybrid = BetweennessOptions::Exact();
    hybrid.kernel = BetweennessOptions::Kernel::kHybrid;
    SCOPED_TRACE(::testing::Message() << "graph " << i);
    ExpectBitIdentical(Betweenness(graphs[i], classic),
                       Betweenness(graphs[i], hybrid));
  }
}

TEST(HybridKernelTest, SampledScoresBitIdenticalToClassic) {
  Rng rng(42);
  graph::Graph g = graph::BarabasiAlbert(3000, 3, rng);
  BetweennessOptions classic;
  classic.exact_node_threshold = 1;  // force sampling
  classic.sample_sources = 128;
  classic.kernel = BetweennessOptions::Kernel::kClassic;
  BetweennessOptions hybrid = classic;
  hybrid.kernel = BetweennessOptions::Kernel::kHybrid;
  ExpectBitIdentical(Betweenness(g, classic), Betweenness(g, hybrid));
}

TEST(HybridKernelTest, AggressiveSwitchThresholdStaysBitIdentical) {
  // hybrid_alpha only moves the push/pull break-even point; any value must
  // produce the same bits because both directions share one canonical
  // accumulation order.
  Rng rng(43);
  graph::Graph g = graph::ErdosRenyi(800, 6400, rng);
  BetweennessOptions base = BetweennessOptions::Exact();
  base.kernel = BetweennessOptions::Kernel::kClassic;
  for (double alpha : {0.05, 1.0, 20.0}) {
    BetweennessOptions hybrid = BetweennessOptions::Exact();
    hybrid.kernel = BetweennessOptions::Kernel::kHybrid;
    hybrid.hybrid_alpha = alpha;
    SCOPED_TRACE(::testing::Message() << "alpha " << alpha);
    ExpectBitIdentical(Betweenness(g, base), Betweenness(g, hybrid));
  }
}

TEST(HybridKernelTest, CancelledBeforeStartReturnsZeroedScores) {
  Rng rng(44);
  graph::Graph g = graph::BarabasiAlbert(1000, 4, rng);
  CancellationToken token;
  token.Cancel();
  BetweennessOptions options = BetweennessOptions::Exact();
  options.cancel = &token;
  auto scores = Betweenness(g, options);
  ASSERT_EQ(scores.node.size(), g.NumNodes());
  for (double s : scores.node) EXPECT_EQ(s, 0.0);
  for (double s : scores.edge) EXPECT_EQ(s, 0.0);
}

// ---- Adaptive pivot waves (DESIGN.md §12) ----

TEST(AdaptiveWaveTest, NeverStoppingWaveRunMatchesSinglePass) {
  Rng rng(45);
  graph::Graph g = graph::BarabasiAlbert(2500, 3, rng);
  BetweennessOptions single;
  single.exact_node_threshold = 1;
  single.sample_sources = 96;
  BetweennessOptions waves = single;
  waves.wave_size = 16;
  waves.wave_stability = 2.0;  // > 1: never stop early
  auto a = Betweenness(g, single);
  auto b = Betweenness(g, waves);
  ExpectBitIdentical(a, b);
  EXPECT_EQ(a.waves, 1u);
  EXPECT_EQ(b.waves, 6u);  // ceil(96 / 16)
  EXPECT_EQ(b.sources_processed, 96u);
}

TEST(AdaptiveWaveTest, StopsEarlyOnceRankingStabilizes) {
  Rng rng(46);
  graph::Graph g = graph::BarabasiAlbert(4000, 3, rng);
  BetweennessOptions options;
  options.exact_node_threshold = 1;
  options.sample_sources = 256;
  options.wave_size = 32;
  options.wave_stability = 0.9;
  auto scores = Betweenness(g, options);
  EXPECT_LT(scores.sources_processed, 256u);
  EXPECT_LT(scores.waves, 8u);
  EXPECT_GE(scores.waves, 2u);  // the stop needs a previous wave to compare

  // The early stop must not cost ranking quality beyond what sampling
  // already costs: compare the early-stopped ranking against the same
  // sampled run with waves disabled, over the top half of the edges (the
  // slice a p=0.5 CRR reduction consumes, and the auto wave_top_k slice).
  // Sampling noise itself dominates the wave truncation, so the two
  // rankings agree well above chance (~0.5 for a random half).
  BetweennessOptions full = options;
  full.wave_size = 0;
  auto full_rank = EdgesByBetweennessDescending(g, full);
  auto fast = EdgesByBetweennessDescending(g, options);
  const size_t slice = g.NumEdges() / 2;
  std::unordered_set<graph::EdgeId> full_top(full_rank.begin(),
                                             full_rank.begin() + slice);
  size_t hits = 0;
  for (size_t i = 0; i < slice; ++i) hits += full_top.contains(fast[i]);
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(slice), 0.8);
}

TEST(AdaptiveWaveTest, RescaleUsesProcessedSourceCount) {
  // An early-stopped run must rescale by n/processed, not n/sample_sources,
  // to stay an unbiased estimate of the exact magnitudes.
  Rng rng(47);
  graph::Graph g = graph::ErdosRenyi(1500, 6000, rng);
  BetweennessOptions options;
  options.exact_node_threshold = 1;
  options.sample_sources = 512;
  options.wave_size = 64;
  options.wave_stability = 0.85;
  auto sampled = Betweenness(g, options);
  auto exact = Betweenness(g, BetweennessOptions::Exact());
  double exact_sum = 0.0;
  double sampled_sum = 0.0;
  for (double s : exact.node) exact_sum += s;
  for (double s : sampled.node) sampled_sum += s;
  EXPECT_NEAR(sampled_sum / exact_sum, 1.0, 0.2);
}

TEST(AdaptiveWaveTest, WavesOnlyEngageWhenSampling) {
  // Below the exact threshold every source runs; a wave request is ignored.
  auto g = TwoTrianglesWithBridge();
  BetweennessOptions options = BetweennessOptions::FastRanking();
  auto scores = Betweenness(g, options);
  EXPECT_EQ(scores.waves, 1u);
  EXPECT_EQ(scores.sources_processed, g.NumNodes());
  ExpectBitIdentical(scores, Betweenness(g, BetweennessOptions::Exact()));
}

TEST(AdaptiveWaveTest, WaveScheduleIsThreadCountInvariant) {
  Rng rng(48);
  graph::Graph g = graph::BarabasiAlbert(3000, 3, rng);
  BetweennessOptions one;
  one.exact_node_threshold = 1;
  one.sample_sources = 192;
  one.wave_size = 24;
  one.wave_stability = 0.9;
  one.threads = 1;
  BetweennessOptions many = one;
  many.threads = 4;
  auto a = Betweenness(g, one);
  auto b = Betweenness(g, many);
  EXPECT_EQ(a.waves, b.waves);
  ExpectBitIdentical(a, b);
}

}  // namespace
}  // namespace edgeshed::analytics
