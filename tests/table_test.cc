#include "common/table.h"

#include <gtest/gtest.h>

namespace edgeshed {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table("My title");
  table.SetHeader({"p", "UDS", "CRR"});
  table.AddRow({"0.9", "15.2", "14.8"});
  table.AddRow({"0.1", "365.7", "13.2"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("My title"), std::string::npos);
  EXPECT_NE(out.find("UDS"), std::string::npos);
  EXPECT_NE(out.find("365.7"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter table;
  table.SetHeader({"aa", "b"});
  table.AddRow({"x", "yyyyy"});
  std::string out = table.ToString();
  // Both data and header rows contain the separator at the same offset.
  size_t header_bar = out.find('|');
  size_t second_line = out.find('\n');
  size_t row_bar = out.find('|', out.find('\n', second_line + 1) + 1);
  ASSERT_NE(header_bar, std::string::npos);
  ASSERT_NE(row_bar, std::string::npos);
}

TEST(TablePrinterTest, RaggedRowsArePadded) {
  TablePrinter table;
  table.SetHeader({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NO_FATAL_FAILURE({ std::string out = table.ToString(); });
}

TEST(TablePrinterTest, SeparatorLine) {
  TablePrinter table;
  table.SetHeader({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string out = table.ToString();
  // Separator lines are dashes.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, ToCsvBasic) {
  TablePrinter table;
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, CsvEscapesCommasAndQuotes) {
  TablePrinter table;
  table.AddRow({"x,y", "he said \"hi\""});
  EXPECT_EQ(table.ToCsv(), "\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TablePrinterTest, CsvSkipsSeparators) {
  TablePrinter table;
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  EXPECT_EQ(table.ToCsv(), "1\n2\n");
}

TEST(TablePrinterTest, EmptyTable) {
  TablePrinter table;
  EXPECT_EQ(table.ToCsv(), "");
  EXPECT_NO_FATAL_FAILURE({ std::string out = table.ToString(); });
}

}  // namespace
}  // namespace edgeshed
