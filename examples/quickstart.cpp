// Quickstart: generate (or load) a graph, shed edges with CRR and BM2, and
// inspect how well the reduced graphs preserve degree structure.
//
// Usage:
//   quickstart [--p=0.5] [--edge_list=path/to/snap.txt]

#include <cstdio>
#include <iostream>

#include "analytics/degree.h"
#include "common/strings.h"
#include "core/bm2.h"
#include "core/bounds.h"
#include "core/crr.h"
#include "eval/flags.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const double p = flags.GetDouble("p", 0.5);
  const std::string edge_list = flags.GetString("edge_list", "");

  // 1. Get a graph: a real SNAP edge list if provided, otherwise the
  //    built-in ca-GrQc-like surrogate.
  graph::Graph g;
  if (!edge_list.empty()) {
    auto loaded = graph::LoadGraph(edge_list);  // any on-disk format
    if (!loaded.ok()) {
      std::cerr << "failed to load " << edge_list << ": "
                << loaded.status() << "\n";
      return 1;
    }
    g = std::move(loaded)->graph;
  } else {
    g = graph::MakeDataset(graph::DatasetId::kCaGrQc);
  }
  std::printf("graph: %s nodes, %s edges, avg degree %.2f\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str(), g.AverageDegree());

  // 2. Reduce with both methods.
  for (const core::EdgeShedder* shedder :
       {static_cast<const core::EdgeShedder*>(new core::Crr()),
        static_cast<const core::EdgeShedder*>(new core::Bm2())}) {
    auto result = shedder->Reduce(g, p);
    if (!result.ok()) {
      std::cerr << shedder->name() << ": " << result.status() << "\n";
      return 1;
    }
    const double bound = shedder->name() == "crr"
                             ? core::CrrAverageDeltaBound(g, p)
                             : core::Bm2AverageDeltaBound(g, p);
    std::printf(
        "%-4s kept %s edges in %.3fs | avg delta %.4f (theorem bound %.3f)\n",
        shedder->name().c_str(),
        FormatWithCommas(result->kept_edges.size()).c_str(),
        result->reduction_seconds, result->average_delta, bound);

    // 3. Check the degree-distribution estimate against the original.
    graph::Graph reduced = result->BuildReducedGraph(g);
    auto original_degrees = analytics::DegreeDistribution(g);
    auto estimated_degrees = analytics::EstimatedDegreeDistribution(reduced, p);
    std::printf("     degree-distribution KS distance vs original: %.4f\n",
                Histogram::KsDistance(original_degrees, estimated_degrees));
    delete shedder;
  }
  return 0;
}
