// Collaboration-network scenario (the paper's ca-GrQc / ca-HepPh use case):
// a scientist wants the influential authors and community texture of a
// co-authorship graph, but only has a laptop. Shed edges first, then run
// the analyses on the reduced graph and compare with ground truth.
//
// Usage:
//   collaboration_network [--p=0.4] [--dataset=grqc|hepph] [--scale=1.0]

#include <cstdio>
#include <string>

#include "analytics/clustering.h"
#include "analytics/pagerank.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/crr.h"
#include "eval/flags.h"
#include "eval/metrics.h"
#include "graph/datasets.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const double p = flags.GetDouble("p", 0.4);
  const std::string dataset = flags.GetString("dataset", "grqc");

  graph::DatasetOptions options;
  options.scale = flags.GetDouble("scale", 1.0);
  graph::Graph g = graph::MakeDataset(dataset == "hepph"
                                          ? graph::DatasetId::kCaHepPh
                                          : graph::DatasetId::kCaGrQc,
                                      options);
  std::printf("collaboration network: %s authors, %s co-author links\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());

  // Ground truth on the full graph.
  Stopwatch full_watch;
  std::vector<double> full_rank = analytics::PageRank(g);
  const double full_cc = analytics::AverageClusteringCoefficient(g);
  const double full_seconds = full_watch.ElapsedSeconds();

  // Reduce once, reuse for everything after.
  core::Crr crr;
  auto reduction = crr.Reduce(g, p);
  if (!reduction.ok()) {
    std::fprintf(stderr, "reduction failed: %s\n",
                 reduction.status().ToString().c_str());
    return 1;
  }
  graph::Graph reduced = reduction->BuildReducedGraph(g);

  Stopwatch reduced_watch;
  std::vector<double> reduced_rank = analytics::PageRank(reduced);
  const double reduced_cc = analytics::AverageClusteringCoefficient(reduced);
  const double reduced_seconds = reduced_watch.ElapsedSeconds();

  // Top-10% influential authors: how much of the true list survives?
  std::vector<bool> eligible(reduced.NumNodes());
  for (graph::NodeId u = 0; u < reduced.NumNodes(); ++u) {
    eligible[u] = reduced.Degree(u) > 0;
  }
  auto true_top = eval::TopPercentNodes(full_rank, 10.0);
  auto reduced_top = eval::TopPercentNodes(reduced_rank, 10.0, &eligible);
  const double overlap = eval::OverlapUtility(true_top, reduced_top);

  std::printf("\nreduction (CRR, p = %.2f): kept %s links in %.2fs, "
              "avg delta %.3f\n",
              p, FormatWithCommas(reduction->kept_edges.size()).c_str(),
              reduction->reduction_seconds, reduction->average_delta);
  std::printf("\n%-34s %12s %12s\n", "metric", "full graph", "reduced");
  std::printf("%-34s %12.3f %12.3f\n", "analysis wall time (s)", full_seconds,
              reduced_seconds);
  std::printf("%-34s %12.4f %12.4f\n", "average clustering coefficient",
              full_cc, reduced_cc);
  std::printf("%-34s %12s %11.1f%%\n", "top-10%% author overlap", "100%",
              overlap * 100.0);
  std::printf("\n%d of the true top-10 authors survive in the reduced "
              "ranking's top-10:\n",
              static_cast<int>(
                  eval::OverlapUtility(
                      std::vector<uint32_t>(true_top.begin(),
                                            true_top.begin() +
                                                std::min<size_t>(
                                                    10, true_top.size())),
                      reduced_top) *
                  std::min<size_t>(10, true_top.size())));
  for (size_t i = 0; i < std::min<size_t>(10, true_top.size()); ++i) {
    std::printf("  author %u (pagerank %.5f)\n", true_top[i],
                full_rank[true_top[i]]);
  }
  return 0;
}
