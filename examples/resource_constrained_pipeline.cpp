// Resource-constrained pipeline (the paper's motivating setting): pick the
// edge-preservation ratio p from an explicit memory budget, reduce with the
// fast method (BM2), and run a batch of analyses that would be painful on
// the full graph. Demonstrates the "reduce once, analyze many times"
// amortization the paper argues for.
//
// Usage:
//   resource_constrained_pipeline [--budget_mb=8] [--dataset_scale=0.25]

#include <algorithm>
#include <cstdio>

#include "analytics/degree.h"
#include "analytics/pagerank.h"
#include "analytics/shortest_paths.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/bm2.h"
#include "eval/flags.h"
#include "graph/datasets.h"

using namespace edgeshed;

namespace {

/// Rough in-memory footprint of a CSR graph: two 64-bit adjacency/incidence
/// entries per edge direction plus offsets.
double GraphMegabytes(uint64_t nodes, uint64_t edges) {
  const double bytes = 8.0 * (static_cast<double>(nodes) + 1) +
                       (4.0 + 8.0) * 2.0 * static_cast<double>(edges) +
                       8.0 * static_cast<double>(edges);
  return bytes / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const double budget_mb = flags.GetDouble("budget_mb", 8.0);

  graph::DatasetOptions options;
  options.scale = flags.GetDouble("dataset_scale", 0.25);
  graph::Graph g =
      graph::MakeDataset(graph::DatasetId::kEmailEnron, options);

  const double full_mb = GraphMegabytes(g.NumNodes(), g.NumEdges());
  std::printf("input graph: %s nodes, %s edges (~%.1f MiB as CSR)\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str(), full_mb);
  std::printf("memory budget: %.1f MiB\n", budget_mb);

  // Choose p so the reduced graph fits the budget (clamped to the paper's
  // range [0.1, 0.9]).
  double p = std::clamp(budget_mb / full_mb, 0.1, 0.9);
  std::printf("chosen edge preservation ratio p = %.2f\n\n", p);

  core::Bm2 bm2;
  Stopwatch reduce_watch;
  auto reduction = bm2.Reduce(g, p);
  if (!reduction.ok()) {
    std::fprintf(stderr, "%s\n", reduction.status().ToString().c_str());
    return 1;
  }
  graph::Graph reduced = reduction->BuildReducedGraph(g);
  std::printf("BM2 reduced the graph to %s edges (~%.1f MiB) in %.3fs\n\n",
              FormatWithCommas(reduced.NumEdges()).c_str(),
              GraphMegabytes(reduced.NumNodes(), reduced.NumEdges()),
              reduce_watch.ElapsedSeconds());

  // Run the analysis batch on both graphs and compare wall time.
  auto run_batch = [](const graph::Graph& target) {
    Stopwatch watch;
    volatile double sink = 0.0;
    sink += analytics::PageRank(target)[0];
    sink += static_cast<double>(analytics::MaxDegree(target));
    analytics::DistanceProfileOptions distance_options;
    distance_options.sample_sources = 128;
    distance_options.exact_node_threshold = 1024;
    Histogram profile = analytics::DistanceProfile(target, distance_options);
    sink += analytics::HopPlotFraction(profile, 4);
    (void)sink;
    return watch.ElapsedSeconds();
  };

  const double full_seconds = run_batch(g);
  const double reduced_seconds = run_batch(reduced);
  std::printf("analysis batch (PageRank + degrees + distance profile):\n");
  std::printf("  full graph   : %8.3f s\n", full_seconds);
  std::printf("  reduced graph: %8.3f s  (%.1fx faster)\n", reduced_seconds,
              full_seconds / std::max(1e-9, reduced_seconds));
  std::printf("\nreduce once (%.3fs), then every further analysis pass "
              "enjoys the speedup.\n",
              reduction->reduction_seconds);
  return 0;
}
