// Noise filtering (the paper's fourth motivation for graph reduction):
// real datasets carry spurious links; selective shedding drops low-value
// edges first. We plant a community-structured graph, inject random noise
// edges, shed with CRR and BM2, and measure which method sheds the noise —
// an instructive split: betweenness ranking can mistake cross-community
// noise for bridges, while degree-capacity constraints evict it.
//
// Usage:
//   noise_filtering [--nodes=2000] [--noise_fraction=0.3] [--p=0.6]

#include <cstdio>
#include <unordered_set>

#include "common/random.h"
#include "common/strings.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "eval/flags.h"
#include "graph/generators/generators.h"
#include "graph/graph_builder.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const auto nodes =
      static_cast<graph::NodeId>(flags.GetInt("nodes", 2000));
  const double noise_fraction = flags.GetDouble("noise_fraction", 0.3);
  const double p = flags.GetDouble("p", 0.6);

  // Ground truth: 8 dense communities, sparse in between.
  Rng rng(2026);
  graph::Graph clean =
      graph::PlantedPartition(nodes, 8, 24.0 / nodes, 0.0, rng);

  // Inject uniform random noise edges (cross-community, mostly).
  const auto noise_target = static_cast<uint64_t>(
      noise_fraction * static_cast<double>(clean.NumEdges()));
  graph::GraphBuilder builder;
  builder.ReserveNodes(nodes);
  for (const graph::Edge& e : clean.edges()) builder.AddEdge(e.u, e.v);
  std::unordered_set<uint64_t> noise_keys;
  uint64_t injected = 0;
  while (injected < noise_target) {
    auto u = static_cast<graph::NodeId>(rng.UniformU64(nodes));
    auto v = static_cast<graph::NodeId>(rng.UniformU64(nodes));
    if (u == v || clean.HasEdge(u, v)) continue;
    uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) |
                   std::max(u, v);
    if (!noise_keys.insert(key).second) continue;
    builder.AddEdge(u, v);
    ++injected;
  }
  graph::Graph noisy = builder.Build();
  std::printf("clean graph: %s edges; injected %s noise edges (%.0f%%)\n",
              FormatWithCommas(clean.NumEdges()).c_str(),
              FormatWithCommas(injected).c_str(), noise_fraction * 100);

  const double noise_rate_before =
      static_cast<double>(injected) / static_cast<double>(noisy.NumEdges());
  std::printf("noise share before shedding: %5.1f%%\n\n",
              noise_rate_before * 100);

  // Shed with each method and measure the noise share of the kept edges.
  auto noise_share = [&](const core::SheddingResult& result) {
    uint64_t kept_noise = 0;
    for (graph::EdgeId id : result.kept_edges) {
      const graph::Edge& e = noisy.edge(id);
      uint64_t key = (static_cast<uint64_t>(e.u) << 32) | e.v;
      if (noise_keys.contains(key)) ++kept_noise;
    }
    return static_cast<double>(kept_noise) /
           static_cast<double>(result.kept_edges.size());
  };
  core::Crr crr;
  core::Bm2 bm2;
  for (const core::EdgeShedder* shedder :
       {static_cast<const core::EdgeShedder*>(&crr),
        static_cast<const core::EdgeShedder*>(&bm2)}) {
    auto reduction = shedder->Reduce(noisy, p);
    if (!reduction.ok()) {
      std::fprintf(stderr, "%s\n", reduction.status().ToString().c_str());
      return 1;
    }
    const double after = noise_share(*reduction);
    std::printf("%-4s kept %s edges, noise share %5.1f%% (%s)\n",
                shedder->name().c_str(),
                FormatWithCommas(reduction->kept_edges.size()).c_str(),
                after * 100,
                after < noise_rate_before ? "filtered noise" : "kept noise");
  }
  std::printf(
      "\nwhy the methods differ: uniform cross-community noise looks like\n"
      "bridges to betweenness, so CRR's Phase 1 can hold on to it (its\n"
      "rewiring phase only evens out degrees); BM2's capacity constraints\n"
      "b(u) = round(p*deg) evict edges at saturated vertices instead. The\n"
      "paper's noise-filtering motivation (§I) applies to degree-inflating\n"
      "noise, which both methods suppress via expected-degree targets.\n");
  return 0;
}
