// Streaming scenario (extension, DESIGN.md §6 / paper §I edge computing):
// edges arrive one at a time on a constrained device; the StreamingShedder
// maintains a budgeted reduced graph on the fly. We periodically compare
// its degree-discrepancy and degree-distribution fidelity against an
// offline random sample of the same prefix.
//
// Usage:
//   streaming_window [--p=0.3] [--nodes=5000] [--checkpoints=5]

#include <cstdio>

#include "analytics/degree.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/random_shedding.h"
#include "eval/flags.h"
#include "graph/generators/generators.h"
#include "graph/graph_builder.h"
#include "stream/streaming_shedder.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const double p = flags.GetDouble("p", 0.3);
  const auto nodes = static_cast<graph::NodeId>(flags.GetInt("nodes", 5000));
  const auto checkpoints =
      static_cast<uint64_t>(flags.GetInt("checkpoints", 5));

  // The "stream": edges of a preferential-attachment graph in generation
  // order — old hubs keep acquiring new spokes, as in a growing social
  // network.
  Rng rng(14);
  graph::Graph full = graph::BarabasiAlbert(nodes, 4, rng);
  std::vector<graph::Edge> arrivals(full.edges().begin(), full.edges().end());
  rng.Shuffle(&arrivals);

  stream::StreamingShedder shedder(p);
  std::printf("streaming %s edges at p = %.2f "
              "(budget tracks round(p * seen))\n\n",
              FormatWithCommas(arrivals.size()).c_str(), p);
  std::printf("%12s %10s %10s %16s %18s\n", "edges seen", "kept", "budget",
              "stream avgΔ", "offline-rand avgΔ");

  const uint64_t step = arrivals.size() / checkpoints;
  uint64_t next_checkpoint = step;
  graph::GraphBuilder prefix_builder;
  prefix_builder.ReserveNodes(nodes);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    shedder.AddEdge(arrivals[i].u, arrivals[i].v);
    prefix_builder.AddEdge(arrivals[i].u, arrivals[i].v);
    if (i + 1 == next_checkpoint || i + 1 == arrivals.size()) {
      next_checkpoint += step;
      // Offline comparison on the same prefix.
      graph::GraphBuilder copy = prefix_builder;  // builder is copyable
      graph::Graph prefix = copy.Build();
      auto offline = core::RandomShedding(7).Reduce(prefix, p);
      EDGESHED_CHECK(offline.ok());
      std::printf("%12s %10s %10s %16.4f %18.4f\n",
                  FormatWithCommas(shedder.EdgesSeen()).c_str(),
                  FormatWithCommas(shedder.kept_edges().size()).c_str(),
                  FormatWithCommas(shedder.Budget()).c_str(),
                  shedder.AverageDelta(), offline->average_delta);
    }
  }

  // Final fidelity check against the complete graph.
  graph::Graph snapshot = shedder.SnapshotGraph();
  Histogram original = analytics::DegreeDistribution(full);
  Histogram estimated = analytics::EstimatedDegreeDistribution(snapshot, p);
  std::printf("\nfinal degree-distribution KS distance vs full graph: %.4f\n",
              Histogram::KsDistance(original, estimated));
  std::printf("one pass, O(|V| + p|E|) memory — the full graph never had to "
              "exist on this device.\n");
  return 0;
}
