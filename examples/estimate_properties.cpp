// Property estimation (the abstract's workflow): reduce once, then answer
// questions about the ORIGINAL graph from the reduced one via the
// estimate/ module — without ever touching the original again.
//
// Usage:
//   estimate_properties [--p=0.5] [--scale=0.5] [--method=bm2|crr|random]

#include <cstdio>
#include <memory>

#include "analytics/approx_neighborhood.h"
#include "analytics/clustering.h"
#include "analytics/degree.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "core/random_shedding.h"
#include "common/strings.h"
#include "estimate/estimators.h"
#include "eval/flags.h"
#include "graph/datasets.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const double p = flags.GetDouble("p", 0.5);
  const std::string method = flags.GetString("method", "bm2");

  graph::DatasetOptions options;
  options.scale = flags.GetDouble("scale", 0.5);
  graph::Graph g = graph::MakeDataset(graph::DatasetId::kCaGrQc, options);

  std::unique_ptr<core::EdgeShedder> shedder;
  if (method == "crr") {
    shedder = std::make_unique<core::Crr>();
  } else if (method == "random") {
    shedder = std::make_unique<core::RandomShedding>();
  } else {
    shedder = std::make_unique<core::Bm2>();
  }
  auto result = shedder->Reduce(g, p);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  graph::Graph reduced = result->BuildReducedGraph(g);
  std::printf("reduced with %s at p = %.2f: %s of %s edges kept\n\n",
              shedder->name().c_str(), p,
              FormatWithCommas(reduced.NumEdges()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());

  // Ground truth (a user under resource constraints would not compute
  // these — we do, to show the estimators' accuracy).
  auto triangles_of = [](const graph::Graph& target) {
    auto per_node = analytics::TrianglesPerNode(target);
    uint64_t total = 0;
    for (uint64_t t : per_node) total += t;
    return static_cast<double>(total) / 3.0;
  };
  const double true_edges = static_cast<double>(g.NumEdges());
  const double true_avg_degree = g.AverageDegree();
  const double true_triangles = triangles_of(g);
  const double true_diameter =
      analytics::ApproximateNeighborhoodFunction(g).EffectiveDiameter();

  std::printf("%-28s %14s %14s %10s\n", "property", "estimated", "true",
              "ratio");
  auto row = [](const char* name, double estimated, double truth) {
    std::printf("%-28s %14.2f %14.2f %9.3f\n", name, estimated, truth,
                truth == 0 ? 0.0 : estimated / truth);
  };
  row("|E|", estimate::EstimatedEdgeCount(reduced, p), true_edges);
  row("average degree", estimate::EstimatedAverageDegree(reduced, p),
      true_avg_degree);
  row("triangles (p^-3)", estimate::EstimatedTriangleCount(reduced, p),
      true_triangles);
  row("effective diameter (raw G')",
      analytics::ApproximateNeighborhoodFunction(reduced).EffectiveDiameter(),
      true_diameter);

  Histogram truth_hist = analytics::DegreeDistribution(g);
  Histogram smoothed =
      estimate::EstimatedDegreeHistogramSmoothed(reduced, p);
  std::printf("\ndegree-distribution KS distance (smoothed estimator): "
              "%.4f\n",
              Histogram::KsDistance(truth_hist, smoothed));
  std::printf("\nnote: the p^-3 triangle correction assumes independent "
              "edge survival;\nselective shedders (crr/bm2) keep triangles "
              "at above-p^3 rates, so prefer\n--method=random when unbiased "
              "motif counts are the goal.\n");
  return 0;
}
