// Service layer demo: many tenants sharing one shedding server.
//
// Spins up the src/service/ stack — a GraphStore with a deliberately tiny
// byte budget (so evictions happen), a JobScheduler worker pool, and a
// MetricsRegistry — then hammers it from several client threads submitting
// overlapping job batches. Shows result-cache dedup, LRU eviction with
// transparent reload, a deadline expiring in the queue, and the final
// metrics snapshot.
//
// Usage:
//   service_concurrent [--clients=4] [--workers=2] [--budget_kb=256]
//                      [--scale=0.3]

#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "eval/flags.h"
#include "service/dataset_registry.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "service/metrics_registry.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const double scale = flags.GetDouble("scale", 0.3);

  service::MetricsRegistry metrics;

  // A budget this small cannot hold both surrogates at once: serving the
  // batches below forces LRU evictions and transparent reloads.
  service::GraphStoreOptions store_options;
  store_options.byte_budget =
      static_cast<uint64_t>(flags.GetInt("budget_kb", 256)) << 10;
  service::GraphStore store(store_options, &metrics);
  graph::DatasetOptions dataset_options;
  dataset_options.scale = scale;
  if (Status s = service::RegisterSurrogateDatasets(store, dataset_options);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  service::JobSchedulerOptions scheduler_options;
  scheduler_options.workers = static_cast<int>(flags.GetInt("workers", 2));
  service::JobScheduler scheduler(&store, &metrics, scheduler_options);

  // Every client submits the same sweep — methods x p x two datasets — so
  // all but the first submission of each spec dedups against the result
  // cache or coalesces onto the in-flight job.
  std::vector<std::thread> client_threads;
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&scheduler, c] {
      std::vector<service::JobId> ids;
      for (const char* dataset : {"grqc", "hepph"}) {
        for (const char* method : {"crr", "bm2"}) {
          for (double p : {0.3, 0.6}) {
            auto id = scheduler.Submit({dataset, method, p, /*seed=*/7});
            if (id.ok()) ids.push_back(*id);
          }
        }
      }
      size_t done = 0;
      for (service::JobId id : ids) {
        if (scheduler.Wait(id).ok()) ++done;
      }
      std::printf("client %d: %zu/%zu jobs done\n", c, done, ids.size());
    });
  }
  for (std::thread& t : client_threads) t.join();

  // A job whose deadline already passed is cancelled at dispatch instead of
  // occupying a worker.
  service::JobSpec stale{"enron", "crr", 0.5, 42,
                         std::chrono::milliseconds(1)};
  auto stale_id = scheduler.Submit(stale);
  if (stale_id.ok()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto outcome = scheduler.Wait(*stale_id);
    std::printf("stale-deadline job: %s\n",
                outcome.ok() ? "completed (dispatched before expiry)"
                             : outcome.status().ToString().c_str());
  }

  scheduler.Shutdown();
  std::printf("\n--- metrics snapshot ---\n%s",
              metrics.TextSnapshot().c_str());
  return 0;
}
