#!/usr/bin/env python3
"""Compare two BENCH_hotpath.json runs and flag regressions.

Usage:
    tools/compare_bench.py baseline.json candidate.json [--threshold 0.10]
        [--overhead-pair crr_reduce:crr_reduce_traced] [--overhead-threshold 0.10]

Series are keyed by (graph, op) and compared on median_seconds. A series
whose median grew by more than --threshold (default 10%) counts as a
regression; the script prints a table of every shared series and exits
non-zero when any regression is found, so CI can gate on it. Series present
in only one of the two files (a benchmark added or retired between revisions)
are warned about on stderr and otherwise ignored — they never fail the gate.

--overhead-pair BASE:INSTRUMENTED additionally gates *within* the candidate
file: for every graph carrying both ops, the instrumented median must stay
within --overhead-threshold (default 10%) of the base median. This is how CI
keeps the tracer-enabled hot path honest — the observability layer may not
cost more than the regression budget itself. Repeatable.
"""

import argparse
import json
import sys


SCHEMAS = (
    "edgeshed-bench-hotpath-v1",
    "edgeshed-bench-dist-v1",
    "edgeshed-bench-serving-v1",
    "edgeshed-bench-ingest-v1",
    "edgeshed-bench-dynamic-v1",
)


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") not in SCHEMAS:
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--overhead-pair",
        action="append",
        default=[],
        metavar="BASE:INSTRUMENTED",
        help="op pair gated within the candidate file: the INSTRUMENTED "
        "median must stay within --overhead-threshold of the BASE median "
        "on every graph that has both (repeatable)",
    )
    parser.add_argument(
        "--overhead-threshold",
        type=float,
        default=0.10,
        help="fractional overhead allowed for each --overhead-pair "
        "(default 0.10)",
    )
    args = parser.parse_args()

    for pair in args.overhead_pair:
        if pair.count(":") != 1:
            sys.exit(f"--overhead-pair {pair!r}: expected BASE:INSTRUMENTED")

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    if baseline["schema"] != candidate["schema"]:
        sys.exit(
            f"schema mismatch: {args.baseline} is {baseline['schema']!r} but "
            f"{args.candidate} is {candidate['schema']!r}"
        )
    base = {(b["graph"], b["op"]): b for b in baseline["benchmarks"]}
    cand = {(b["graph"], b["op"]): b for b in candidate["benchmarks"]}

    print(
        f"baseline:  rev={baseline.get('git_rev')} threads={baseline.get('threads')}"
    )
    print(
        f"candidate: rev={candidate.get('git_rev')} threads={candidate.get('threads')}"
    )
    header = f"{'graph':<12} {'op':<20} {'base (s)':>10} {'cand (s)':>10} {'ratio':>8}  verdict"
    print(header)
    print("-" * len(header))

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    for g, o in only_base:
        print(f"warning: {g}/{o} only in baseline; ignored", file=sys.stderr)
    for g, o in only_cand:
        print(f"warning: {g}/{o} only in candidate; ignored", file=sys.stderr)

    regressions = []
    for key in sorted(set(base) & set(cand)):
        old = base[key]["median_seconds"]
        new = cand[key]["median_seconds"]
        # Quality-only series (e.g. the dist bench's self-overlap ceilings)
        # carry no timing; a zero median on both sides is not a regression.
        ratio = new / old if old > 0 else 1.0 if new == 0 else float("inf")
        if ratio > 1 + args.threshold:
            verdict = f"REGRESSION (+{(ratio - 1) * 100:.1f}%)"
            regressions.append(key)
        elif ratio < 1 - args.threshold:
            verdict = f"improved ({(1 - ratio) * 100:.1f}%)"
        else:
            verdict = "ok"
        print(
            f"{key[0]:<12} {key[1]:<20} {old:>10.4f} {new:>10.4f} {ratio:>8.2f}  {verdict}"
        )
    overhead_failures = []
    for pair in args.overhead_pair:
        base_op, traced_op = pair.split(":")
        graphs = sorted(
            {g for g, o in cand if o == base_op}
            & {g for g, o in cand if o == traced_op}
        )
        if not graphs:
            print(f"\noverhead pair {pair}: no graph has both ops in candidate")
            overhead_failures.append((pair, "<missing>"))
            continue
        print(f"\noverhead gate {base_op} -> {traced_op} "
              f"(threshold {args.overhead_threshold * 100:.0f}%):")
        for g in graphs:
            base_s = cand[(g, base_op)]["median_seconds"]
            traced_s = cand[(g, traced_op)]["median_seconds"]
            ratio = traced_s / base_s if base_s > 0 else float("inf")
            if ratio > 1 + args.overhead_threshold:
                verdict = f"EXCESS OVERHEAD (+{(ratio - 1) * 100:.1f}%)"
                overhead_failures.append((pair, g))
            else:
                verdict = f"ok ({(ratio - 1) * 100:+.1f}%)"
            print(f"  {g:<12} {base_s:>10.4f} -> {traced_s:>10.4f} "
                  f"{ratio:>8.2f}  {verdict}")

    failed = False
    if regressions:
        print(
            f"\n{len(regressions)} series regressed more than "
            f"{args.threshold * 100:.0f}%: "
            + ", ".join(f"{g}/{o}" for g, o in regressions)
        )
        failed = True
    if overhead_failures:
        print(
            f"{len(overhead_failures)} overhead check(s) failed: "
            + ", ".join(f"{p} on {g}" for p, g in overhead_failures)
        )
        failed = True
    if failed:
        return 1
    skipped = len(only_base) + len(only_cand)
    suffix = f" ({skipped} one-sided series ignored)" if skipped else ""
    print(f"\nno regressions above threshold{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
