#!/usr/bin/env python3
"""Compare two BENCH_hotpath.json runs and flag regressions.

Usage:
    tools/compare_bench.py baseline.json candidate.json [--threshold 0.10]

Series are keyed by (graph, op) and compared on median_seconds. A series
whose median grew by more than --threshold (default 10%) counts as a
regression; the script prints a table of every shared series and exits
non-zero when any regression is found, so CI can gate on it.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "edgeshed-bench-hotpath-v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional slowdown that counts as a regression (default 0.10)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    base = {(b["graph"], b["op"]): b for b in baseline["benchmarks"]}
    cand = {(b["graph"], b["op"]): b for b in candidate["benchmarks"]}

    print(
        f"baseline:  rev={baseline.get('git_rev')} threads={baseline.get('threads')}"
    )
    print(
        f"candidate: rev={candidate.get('git_rev')} threads={candidate.get('threads')}"
    )
    header = f"{'graph':<12} {'op':<20} {'base (s)':>10} {'cand (s)':>10} {'ratio':>8}  verdict"
    print(header)
    print("-" * len(header))

    regressions = []
    for key in sorted(base):
        if key not in cand:
            print(f"{key[0]:<12} {key[1]:<20} {'':>10} {'':>10} {'':>8}  MISSING in candidate")
            continue
        old = base[key]["median_seconds"]
        new = cand[key]["median_seconds"]
        ratio = new / old if old > 0 else float("inf")
        if ratio > 1 + args.threshold:
            verdict = f"REGRESSION (+{(ratio - 1) * 100:.1f}%)"
            regressions.append(key)
        elif ratio < 1 - args.threshold:
            verdict = f"improved ({(1 - ratio) * 100:.1f}%)"
        else:
            verdict = "ok"
        print(
            f"{key[0]:<12} {key[1]:<20} {old:>10.4f} {new:>10.4f} {ratio:>8.2f}  {verdict}"
        )
    for key in sorted(set(cand) - set(base)):
        print(f"{key[0]:<12} {key[1]:<20} {'':>10} {'':>10} {'':>8}  new series")

    if regressions:
        print(
            f"\n{len(regressions)} series regressed more than "
            f"{args.threshold * 100:.0f}%: "
            + ", ".join(f"{g}/{o}" for g, o in regressions)
        )
        return 1
    print("\nno regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
