// edgeshed — command-line front end for the library.
//
// Commands:
//   edgeshed reduce  --input=G.txt --method=crr|bm2|random|local-degree|
//                    spanning-forest --p=0.5 [--output=R.txt] [--seed=42]
//                    [--binary_output=R.esg]
//   edgeshed analyze --input=G.txt [--tasks=degree,components,clustering,
//                    pagerank,distance] [--top=10]
//   edgeshed stats   --input=G.txt
//   edgeshed convert --input=G.any --binary_output=G.esg [--edges_output=
//                    G.ebl] [--output=G.txt] [--snapshot_version=3]
//                    [--page_align=4096] [--chunk_kb=1024]
//                    [--external --budget_mb=256 [--temp_dir=DIR]]
//   edgeshed generate --dataset=grqc|hepph|enron|livejournal --scale=1.0
//                    --output=G.txt [--seed=...]
//   edgeshed service --jobs=jobs.txt [--workers=N] [--queue=K]
//                    [--store_budget_mb=M] [--scale=1.0] [--deadline_ms=D]
//                    [--retention_jobs=N] [--retention_ms=T]
//                    [--result_cache_mb=M] [--stats_port=P] [--linger_ms=T]
//                    [--trace_out=trace.json]
//   edgeshed serve   [--port=P] [--max_connections=N] [--max_inflight=N]
//                    [--dispatch_threads=N] [--workers=N] [--queue=K]
//                    [--scale=S] [--store_budget_mb=M]
//                    [--edge_list=name=path[,name=path...]]
//                    [--shard_dir=DIR]
//                    [--tenants=name:weight[:quota],...] [--degrade]
//                    [--max_pending=N]
//                    [--stats_port=P] [--serve_ms=T] [--public]
//   edgeshed client  --op=ping|shed|wait|status|cancel|list|apply
//                    [--host=H] [--port=P] [--dataset=D] [--method=M]
//                    [--p=0.5] [--seed=N] [--deadline_ms=T] [--job_id=N]
//                    [--tenant=NAME] [--priority]
//                    [--mutations=M.txt] [--insert=u:v,...] [--delete=u:v,...]
//                    [--no_wait] [--timeout_ms=T] [--retries=N]
//   edgeshed mutate  --input=G.any --mutations=M.txt [--reshed] [--p=0.5]
//                    [--seed=42] [--dirty_hops=0] [--decay_half_life=0]
//                    [--compact_ratio=0.1] [--output=K.txt]
//                    [--binary_output=G2.esg]
//   edgeshed coordinate --input=G.txt --shard_dir=DIR
//                    [--workers=host:port,host:port,...] [--shards=K]
//                    [--partitioner=hdrf|dbh|hash] [--method=crr] [--p=0.5]
//                    [--seed=42] [--deadline_ms=T] [--timeout_ms=T]
//                    [--retries=N] [--poll_ms=T] [--job_tag=NAME]
//                    [--no_fallback] [--output=R.txt] [--binary_output=R.esg]
//                    [--stats_port=P] [--linger_ms=T]
//
// Every command that takes --input sniffs the file format (SNAP text edge
// list, "EDGSHEDL" binary edge list, or "EDGSHED1/2/3" snapshot); --format
// pins it and --mmap=false forces v3 snapshots to be copied onto the heap
// instead of served zero-copy from a file mapping (graph/source.h,
// DESIGN.md §14). `convert` re-encodes between all of them; with
// --external it streams a text edge list into a v3 snapshot under a fixed
// memory budget (graph/external_build.h). `service` runs a batch of shedding
// jobs concurrently through src/service/ (GraphStore + JobScheduler) and
// prints the metrics snapshot; each jobs-file line reads
//   dataset method p [seed] [deadline_ms]
// with '#' comments. Without --jobs a built-in demo batch is used.
//
// Observability (src/obs/): --stats_port=P serves GET /metrics (Prometheus
// text), /tracez (chrome://tracing JSON of recent job traces), /statusz (the
// text dump), and /healthz on 127.0.0.1:P (0 = ephemeral port, printed on
// startup; negative = off). --linger_ms keeps the process (and the stats
// server) alive that long after the batch finishes so an external scraper
// can read the final state. --trace_out writes the trace-event JSON to a
// file at exit; tracing is enabled whenever --stats_port >= 0 or
// --trace_out is set.
//
// Remote shedding (src/net/): `serve` runs the binary RPC server (loopback
// by default; --public binds 0.0.0.0) in front of the same GraphStore +
// JobScheduler until SIGINT/SIGTERM (or --serve_ms elapses); `client` issues
// one RPC against a running server. A Shed submitted via `client` returns a
// result identical to the same job run in-process, because the wire layer
// dispatches onto the identical deterministic scheduler.
//
// Dynamic graphs (src/dyn/, DESIGN.md §15): `mutate` replays a mutation
// file (`+ u v` / `- u v` lines, `---` batch separators) against the input
// through a VersionedGraph and, with --reshed, runs one incremental
// re-shedding session across the batch sequence, printing one parseable
// `batch=K version=V kept=N ...` line per batch. `client --op=apply` sends
// one ApplyMutations RPC per batch to a running server — the dataset's
// store generation bumps exactly as if the graph were replaced, so a
// subsequent remote shed sees the mutated graph.
//
// Sharded fleet (src/dist/, DESIGN.md §11): `coordinate` partitions the
// input across K shards, farms each shard's shed out to the --workers fleet
// over RPC (workers must run `serve --shard_dir=DIR` on the same shared
// directory), and merges the kept shards back under the exact global budget.
// Without --workers every shard sheds locally in-process.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analytics/clustering.h"
#include "analytics/components.h"
#include "analytics/degree.h"
#include "analytics/pagerank.h"
#include "analytics/shortest_paths.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/shedder_factory.h"
#include "dist/coordinator.h"
#include "dist/partitioner.h"
#include "dyn/incremental_shed.h"
#include "dyn/versioned_graph.h"
#include "eval/flags.h"
#include "graph/binary_io.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "graph/external_build.h"
#include "graph/mutation_io.h"
#include "graph/source.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/prometheus.h"
#include "obs/stats_server.h"
#include "obs/tracer.h"
#include "service/dataset_registry.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "service/metrics_registry.h"

using namespace edgeshed;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: edgeshed <reduce|analyze|stats|convert|generate|service> "
               "[flags]\n"
               "  reduce   --input=G.txt --method=crr --p=0.5 "
               "[--output=R.txt] [--binary_output=R.esg] [--seed=42]\n"
               "  analyze  --input=G.txt [--tasks=degree,components,"
               "clustering,pagerank,distance] [--top=10]\n"
               "  stats    --input=G.txt\n"
               "  convert  --input=G.any [--binary_output=G.esg] "
               "[--edges_output=G.ebl] [--output=G.txt] "
               "[--snapshot_version=3] [--page_align=4096] [--chunk_kb=1024] "
               "[--external --budget_mb=256 [--temp_dir=DIR]]\n"
               "  generate --dataset=grqc|hepph|enron|livejournal "
               "--scale=1.0 --output=G.txt [--seed=N]\n"
               "  service  [--jobs=jobs.txt] [--workers=N] [--queue=K] "
               "[--store_budget_mb=M] [--scale=1.0] [--deadline_ms=D] "
               "[--retention_jobs=N] [--retention_ms=T] "
               "[--result_cache_mb=M] [--rank_cache_mb=M] [--stats_port=P] "
               "[--linger_ms=T] [--trace_out=trace.json]\n"
               "  serve    [--port=0] [--max_connections=64] "
               "[--max_inflight=8] [--dispatch_threads=4] [--workers=N] "
               "[--queue=K] [--scale=1.0] [--store_budget_mb=M] "
               "[--edge_list=name=path,...] [--shard_dir=DIR] "
               "[--tenants=name:weight[:quota],...] [--degrade] "
               "[--max_pending=N] "
               "[--stats_port=P] [--serve_ms=T] [--public]\n"
               "  client   --op=ping|shed|wait|status|cancel|list|apply "
               "[--host=127.0.0.1] [--port=P] [--dataset=D] [--method=crr] "
               "[--p=0.5] [--seed=42] [--deadline_ms=T] [--job_id=N] "
               "[--tenant=NAME] [--priority] [--mutations=M.txt] "
               "[--insert=u:v,...] [--delete=u:v,...] "
               "[--no_wait] [--timeout_ms=T] [--retries=N]\n"
               "  mutate   --input=G.any --mutations=M.txt [--reshed] "
               "[--p=0.5] [--seed=42] [--dirty_hops=0] "
               "[--decay_half_life=0] [--compact_ratio=0.1] "
               "[--output=K.txt] [--binary_output=G2.esg]\n"
               "  coordinate --input=G.txt --shard_dir=DIR "
               "[--workers=host:port,...] [--shards=2] "
               "[--partitioner=hdrf|dbh|hash] [--method=crr] [--p=0.5] "
               "[--seed=42] [--deadline_ms=T] [--timeout_ms=T] [--retries=N] "
               "[--poll_ms=50] [--job_tag=fleet] [--no_fallback] "
               "[--output=R.txt] [--binary_output=R.esg] [--stats_port=P] "
               "[--linger_ms=T]\n");
  return 2;
}

/// Shared ingest flags: --input takes any format (sniffed by default,
/// pinned by --format), --mmap=false forces copy loads of v3 snapshots,
/// --binary_input is the legacy spelling of an explicit snapshot input.
StatusOr<graph::LoadedGraph> LoadInput(const eval::Flags& flags) {
  graph::GraphSource source;
  source.path = flags.GetString("input", "");
  if (source.path.empty()) {
    source.path = flags.GetString("binary_input", "");
    if (!source.path.empty()) source.format = graph::GraphFormat::kSnapshot;
  }
  if (source.path.empty()) {
    return Status::InvalidArgument("--input (or --binary_input) is required");
  }
  const std::string format = flags.GetString("format", "");
  if (!format.empty()) {
    EDGESHED_ASSIGN_OR_RETURN(source.format, graph::ParseGraphFormat(format));
  }
  graph::IngestOptions options;
  options.mmap = flags.GetBool("mmap", true);
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  return graph::LoadGraph(source, options);
}

/// The snapshot layout CLI output flags select (`--snapshot_version`,
/// `--page_align`, `--chunk_kb`).
graph::SnapshotOptions SnapshotOptionsFromFlags(const eval::Flags& flags) {
  graph::SnapshotOptions options;
  options.version = static_cast<uint32_t>(flags.GetInt("snapshot_version", 3));
  options.page_align =
      static_cast<uint64_t>(flags.GetInt("page_align", 4096));
  options.chunk_bytes =
      static_cast<uint64_t>(flags.GetInt("chunk_kb", 1024)) * 1024;
  return options;
}

int CmdReduce(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const std::string method = flags.GetString("method", "crr");
  const double p = flags.GetDouble("p", 0.5);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto shedder_or = core::MakeShedderByName(method, seed);
  if (!shedder_or.ok()) {
    std::cerr << shedder_or.status() << "\n";
    return Usage();
  }
  std::unique_ptr<core::EdgeShedder> shedder = std::move(shedder_or).value();
  auto result = shedder->Reduce(input->graph, p);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  graph::Graph reduced = result->BuildReducedGraph(input->graph);
  std::printf("%s: kept %s / %s edges in %.3fs (avg delta %.4f)\n",
              shedder->name().c_str(),
              FormatWithCommas(reduced.NumEdges()).c_str(),
              FormatWithCommas(input->graph.NumEdges()).c_str(),
              result->reduction_seconds, result->average_delta);
  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    Status status = graph::SaveEdgeList(reduced, output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  const std::string binary_output = flags.GetString("binary_output", "");
  if (!binary_output.empty()) {
    Status status = graph::SaveBinaryGraph(reduced, binary_output,
                                           SnapshotOptionsFromFlags(flags));
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", binary_output.c_str());
  }
  return 0;
}

int CmdStats(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const graph::Graph& g = input->graph;
  auto components = analytics::ConnectedComponents(g);
  std::printf("nodes:       %s\n", FormatWithCommas(g.NumNodes()).c_str());
  std::printf("edges:       %s\n", FormatWithCommas(g.NumEdges()).c_str());
  std::printf("avg degree:  %.3f\n", g.AverageDegree());
  std::printf("max degree:  %s\n",
              FormatWithCommas(analytics::MaxDegree(g)).c_str());
  std::printf("components:  %u (largest %s)\n", components.NumComponents(),
              components.NumComponents() == 0
                  ? "0"
                  : FormatWithCommas(
                        components.sizes[components.LargestComponent()])
                        .c_str());
  return 0;
}

int CmdAnalyze(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const graph::Graph& g = input->graph;
  const std::string tasks =
      flags.GetString("tasks", "degree,components,clustering,pagerank");
  Stopwatch watch;
  for (std::string_view task : StrSplit(tasks, ',')) {
    Stopwatch task_watch;
    if (task == "degree") {
      auto histogram = analytics::DegreeDistribution(g);
      std::printf("[degree] distinct degrees: %zu (%.3fs)\n",
                  histogram.Keys().size(), task_watch.ElapsedSeconds());
    } else if (task == "components") {
      auto components = analytics::ConnectedComponents(g);
      std::printf("[components] %u components (%.3fs)\n",
                  components.NumComponents(), task_watch.ElapsedSeconds());
    } else if (task == "clustering") {
      double cc = analytics::AverageClusteringCoefficient(g);
      std::printf("[clustering] average coefficient %.4f (%.3fs)\n", cc,
                  task_watch.ElapsedSeconds());
    } else if (task == "pagerank") {
      auto scores = analytics::PageRank(g);
      const auto top = static_cast<uint64_t>(flags.GetInt("top", 10));
      auto indices = analytics::TopKIndices(scores, top);
      std::printf("[pagerank] top-%llu:",
                  static_cast<unsigned long long>(top));
      for (uint32_t u : indices) std::printf(" %u", u);
      std::printf(" (%.3fs)\n", task_watch.ElapsedSeconds());
    } else if (task == "distance") {
      auto profile = analytics::DistanceProfile(g);
      std::printf("[distance] median hop fraction at k=3: %.4f (%.3fs)\n",
                  analytics::HopPlotFraction(profile, 3),
                  task_watch.ElapsedSeconds());
    } else {
      std::fprintf(stderr, "unknown task: %.*s\n",
                   static_cast<int>(task.size()), task.data());
      return Usage();
    }
  }
  std::printf("total %.3fs\n", watch.ElapsedSeconds());
  return 0;
}

int CmdConvert(const eval::Flags& flags) {
  const std::string binary_output = flags.GetString("binary_output", "");
  const std::string edges_output = flags.GetString("edges_output", "");
  const std::string output = flags.GetString("output", "");
  if (binary_output.empty() && output.empty() && edges_output.empty()) {
    std::cerr
        << "convert needs --binary_output, --edges_output or --output\n";
    return Usage();
  }

  // --external streams a text edge list straight into a v3 snapshot with
  // bounded memory — the path for inputs too large to materialize.
  if (flags.GetBool("external", false)) {
    if (binary_output.empty() || !output.empty() || !edges_output.empty()) {
      std::cerr << "--external converts to --binary_output only\n";
      return Usage();
    }
    graph::ExternalBuildOptions options;
    options.memory_budget_bytes =
        static_cast<uint64_t>(flags.GetInt("budget_mb", 256)) << 20;
    options.temp_dir = flags.GetString("temp_dir", "");
    options.snapshot = SnapshotOptionsFromFlags(flags);
    options.threads = static_cast<int>(flags.GetInt("threads", 0));
    Stopwatch watch;
    auto stats = graph::BuildSnapshotExternal(
        flags.GetString("input", ""), binary_output, options);
    if (!stats.ok()) {
      std::cerr << stats.status() << "\n";
      return 1;
    }
    std::printf(
        "wrote %s in %.3fs: %s nodes, %s edges (%s input pairs), "
        "%llu+%llu spill runs, %.1f MiB spilled, %.1f MiB peak buffers\n",
        binary_output.c_str(), watch.ElapsedSeconds(),
        FormatWithCommas(stats->num_nodes).c_str(),
        FormatWithCommas(stats->num_edges).c_str(),
        FormatWithCommas(stats->input_edges).c_str(),
        static_cast<unsigned long long>(stats->edge_runs),
        static_cast<unsigned long long>(stats->reverse_runs),
        static_cast<double>(stats->spilled_bytes) / (1 << 20),
        static_cast<double>(stats->peak_buffer_bytes) / (1 << 20));
    return 0;
  }

  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  if (!binary_output.empty()) {
    graph::SnapshotOptions options = SnapshotOptionsFromFlags(flags);
    options.original_ids = input->original_ids;
    Status status =
        graph::SaveBinaryGraph(input->graph, binary_output, options);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", binary_output.c_str());
  }
  if (!edges_output.empty()) {
    Status status = graph::SaveBinaryEdgeList(input->graph,
                                              input->original_ids,
                                              edges_output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", edges_output.c_str());
  }
  if (!output.empty()) {
    Status status = graph::SaveEdgeList(input->graph, output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  return 0;
}

int CmdGenerate(const eval::Flags& flags) {
  const std::string name = flags.GetString("dataset", "grqc");
  graph::DatasetId id;
  if (name == "grqc") {
    id = graph::DatasetId::kCaGrQc;
  } else if (name == "hepph") {
    id = graph::DatasetId::kCaHepPh;
  } else if (name == "enron") {
    id = graph::DatasetId::kEmailEnron;
  } else if (name == "livejournal") {
    id = graph::DatasetId::kComLiveJournal;
  } else {
    std::cerr << "unknown dataset: " << name << "\n";
    return Usage();
  }
  graph::DatasetOptions options;
  options.scale = flags.GetDouble("scale", 1.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 20210419));
  graph::Graph g = graph::MakeDataset(id, options);
  std::printf("generated %s surrogate: %s nodes, %s edges\n",
              graph::GetDatasetSpec(id).name.c_str(),
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());
  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    Status status = graph::SaveEdgeList(g, output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  return 0;
}

/// Parses one jobs-file line: "dataset method p [seed] [deadline_ms]".
/// Blank lines and '#' comments yield an empty dataset (caller skips them).
StatusOr<service::JobSpec> ParseJobLine(const std::string& line) {
  service::JobSpec spec;
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty() || stripped.front() == '#') {
    spec.dataset.clear();
    return spec;
  }
  std::istringstream in{std::string(stripped)};
  double p = 0.0;
  if (!(in >> spec.dataset >> spec.method >> p)) {
    return Status::InvalidArgument(
        StrFormat("bad job line (want 'dataset method p [seed] "
                  "[deadline_ms]'): %s", line.c_str()));
  }
  spec.p = p;
  uint64_t seed = 42;
  if (in >> seed) spec.seed = seed;
  int64_t deadline_ms = 0;
  if (in >> deadline_ms) spec.deadline = std::chrono::milliseconds(deadline_ms);
  return spec;
}

int CmdService(const eval::Flags& flags) {
  service::MetricsRegistry metrics;

  // Observability: tracing is on whenever anything can consume it (a stats
  // server to query /tracez, or a --trace_out dump); otherwise the tracer
  // stays null and every span hook in the service layer is a no-op.
  const int64_t stats_port = flags.GetInt("stats_port", -1);
  const std::string trace_out = flags.GetString("trace_out", "");
  std::unique_ptr<obs::Tracer> tracer;
  if (stats_port >= 0 || !trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>();
  }

  service::GraphStore::Options store_options;
  store_options.byte_budget =
      static_cast<uint64_t>(flags.GetInt("store_budget_mb", 256)) << 20;
  service::GraphStore store(store_options, &metrics, tracer.get());

  graph::DatasetOptions dataset_options;
  dataset_options.scale = flags.GetDouble("scale", 1.0);
  dataset_options.seed =
      static_cast<uint64_t>(flags.GetInt("dataset_seed", 20210419));
  Status registered = service::RegisterSurrogateDatasets(store,
                                                         dataset_options);
  if (!registered.ok()) {
    std::cerr << registered << "\n";
    return 1;
  }

  std::vector<service::JobSpec> specs;
  const std::string jobs_path = flags.GetString("jobs", "");
  if (!jobs_path.empty()) {
    std::ifstream in(jobs_path);
    if (!in) {
      std::cerr << "cannot open jobs file: " << jobs_path << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      auto spec = ParseJobLine(line);
      if (!spec.ok()) {
        std::cerr << spec.status() << "\n";
        return 1;
      }
      if (!spec->dataset.empty()) specs.push_back(std::move(spec).value());
    }
  } else {
    // Demo batch: a method x p sweep on the smallest dataset, each spec
    // submitted twice to exercise the result cache.
    for (const char* method : {"crr", "bm2", "random"}) {
      for (double p : {0.3, 0.5, 0.7}) {
        service::JobSpec spec;
        spec.dataset = "grqc";
        spec.method = method;
        spec.p = p;
        specs.push_back(spec);
        specs.push_back(spec);
      }
    }
  }
  if (specs.empty()) {
    std::cerr << "no jobs to run\n";
    return 1;
  }

  // --deadline_ms applies to every spec that did not set its own deadline
  // in the jobs file; 0 leaves those specs deadline-free.
  const int64_t default_deadline_ms = flags.GetInt("deadline_ms", 0);
  if (default_deadline_ms > 0) {
    for (service::JobSpec& spec : specs) {
      if (spec.deadline.count() == 0) {
        spec.deadline = std::chrono::milliseconds(default_deadline_ms);
      }
    }
  }

  service::JobScheduler::Options scheduler_options;
  scheduler_options.workers = static_cast<int>(flags.GetInt("workers", 0));
  scheduler_options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 1024));
  // Never below the batch size: this driver submits everything up front and
  // collects results afterwards, so a smaller retention would GC records
  // before their Wait and report phantom failures.
  scheduler_options.max_retained_jobs = std::max(
      specs.size(), static_cast<size_t>(flags.GetInt("retention_jobs", 1024)));
  scheduler_options.job_retention =
      std::chrono::milliseconds(flags.GetInt("retention_ms", 600000));
  scheduler_options.result_cache_byte_budget =
      static_cast<uint64_t>(flags.GetInt("result_cache_mb", 64)) << 20;
  scheduler_options.rank_cache_byte_budget =
      static_cast<uint64_t>(flags.GetInt("rank_cache_mb", 128)) << 20;
  scheduler_options.enable_rank_cache =
      scheduler_options.rank_cache_byte_budget > 0;
  service::JobScheduler scheduler(&store, &metrics, scheduler_options,
                                  tracer.get());

  std::unique_ptr<obs::StatsServer> stats_server;
  if (stats_port >= 0) {
    obs::StatsServerOptions server_options;
    server_options.port = static_cast<int>(stats_port);
    stats_server = std::make_unique<obs::StatsServer>(server_options);
    stats_server->Handle("/metrics", [&metrics] {
      return obs::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               obs::PrometheusText(metrics)};
    });
    stats_server->Handle("/tracez", [&tracer] {
      return obs::HttpResponse{200, "application/json; charset=utf-8",
                               tracer->TraceEventJson()};
    });
    stats_server->Handle("/statusz", [&metrics] {
      return obs::HttpResponse{200, "text/plain; charset=utf-8",
                               metrics.TextSnapshot()};
    });
    Status started = stats_server->Start();
    if (!started.ok()) {
      std::cerr << started << "\n";
      return 1;
    }
    std::printf("stats server on http://127.0.0.1:%d "
                "(/metrics /tracez /statusz /healthz)\n",
                stats_server->port());
  }

  Stopwatch watch;
  std::vector<std::pair<service::JobId, const service::JobSpec*>> submitted;
  submitted.reserve(specs.size());
  int failures = 0;
  int rejected = 0;
  for (const service::JobSpec& spec : specs) {
    auto id = scheduler.Submit(spec);
    if (!id.ok()) {
      std::cerr << "submit failed (" << spec.dataset << " " << spec.method
                << " p=" << spec.p << "): " << id.status() << "\n";
      ++rejected;
      continue;
    }
    submitted.emplace_back(*id, &spec);
  }

  for (const auto& [id, spec] : submitted) {
    auto result = scheduler.Wait(id);
    auto status = scheduler.GetStatus(id);
    if (result.ok()) {
      std::printf("job %3llu %-12s %-15s p=%.2f kept=%8s%s\n",
                  static_cast<unsigned long long>(id),
                  spec->dataset.c_str(), spec->method.c_str(), spec->p,
                  FormatWithCommas((*result)->kept_edges.size()).c_str(),
                  status.ok() && status->deduplicated ? "  (cached)" : "");
    } else {
      ++failures;
      std::printf("job %3llu %-12s %-15s p=%.2f %s\n",
                  static_cast<unsigned long long>(id),
                  spec->dataset.c_str(), spec->method.c_str(), spec->p,
                  result.status().ToString().c_str());
    }
  }
  scheduler.Shutdown();
  std::printf("\n%zu jobs on %d workers in %.3fs (%d failed, %d rejected)\n\n",
              submitted.size(), scheduler.workers(), watch.ElapsedSeconds(),
              failures, rejected);
  std::fputs(metrics.TextSnapshot().c_str(), stdout);

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot write trace file: " << trace_out << "\n";
      return 1;
    }
    out << tracer->TraceEventJson();
    std::printf("wrote %s (load at chrome://tracing)\n", trace_out.c_str());
  }

  // Keep the stats endpoints queryable after the batch so external scrapers
  // (CI smoke, a curl-ing operator) can read the final counters and traces.
  const int64_t linger_ms = flags.GetInt("linger_ms", 0);
  if (linger_ms > 0 && stats_server != nullptr) {
    std::printf("lingering %lld ms for stats scrapes...\n",
                static_cast<long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  if (stats_server != nullptr) stats_server->Stop();
  return failures == 0 && rejected == 0 ? 0 : 1;
}

std::atomic<bool> g_signal_stop{false};

void HandleStopSignal(int) { g_signal_stop.store(true); }

/// Registers --edge_list=name=path[,name=path...] entries in `store`.
Status RegisterEdgeListFlag(service::GraphStore& store,
                            const std::string& edge_lists) {
  for (std::string_view entry : StrSplit(edge_lists, ',')) {
    entry = StripWhitespace(entry);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == entry.size()) {
      return Status::InvalidArgument(
          StrFormat("bad --edge_list entry (want name=path): %.*s",
                    static_cast<int>(entry.size()), entry.data()));
    }
    EDGESHED_RETURN_IF_ERROR(service::RegisterEdgeListDataset(
        store, std::string(entry.substr(0, eq)),
        std::string(entry.substr(eq + 1))));
  }
  return Status::OK();
}

/// Parses --tenants=name:weight[:quota],... into scheduler tenant configs.
Status ParseTenantsFlag(const std::string& tenants,
                        std::map<std::string, service::TenantConfig>* out) {
  for (std::string_view entry : StrSplit(tenants, ',')) {
    entry = StripWhitespace(entry);
    if (entry.empty()) continue;
    std::vector<std::string_view> parts;
    for (std::string_view part : StrSplit(entry, ':')) parts.push_back(part);
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
      return Status::InvalidArgument(
          StrFormat("bad --tenants entry (want name:weight[:quota]): %.*s",
                    static_cast<int>(entry.size()), entry.data()));
    }
    service::TenantConfig config;
    const long weight = std::atol(std::string(parts[1]).c_str());
    if (weight < 1) {
      return Status::InvalidArgument(
          StrFormat("--tenants weight for '%.*s' must be >= 1",
                    static_cast<int>(parts[0].size()), parts[0].data()));
    }
    config.weight = static_cast<uint32_t>(weight);
    if (parts.size() == 3) {
      const long quota = std::atol(std::string(parts[2]).c_str());
      if (quota < 0) {
        return Status::InvalidArgument(
            StrFormat("--tenants quota for '%.*s' must be >= 0",
                      static_cast<int>(parts[0].size()), parts[0].data()));
      }
      config.max_running = static_cast<size_t>(quota);
    }
    (*out)[std::string(parts[0])] = config;
  }
  return Status::OK();
}

int CmdServe(const eval::Flags& flags) {
  service::MetricsRegistry metrics;
  const int64_t stats_port = flags.GetInt("stats_port", -1);
  std::unique_ptr<obs::Tracer> tracer;
  if (stats_port >= 0) tracer = std::make_unique<obs::Tracer>();

  service::GraphStore::Options store_options;
  store_options.byte_budget =
      static_cast<uint64_t>(flags.GetInt("store_budget_mb", 256)) << 20;
  service::GraphStore store(store_options, &metrics, tracer.get());

  graph::DatasetOptions dataset_options;
  dataset_options.scale = flags.GetDouble("scale", 1.0);
  dataset_options.seed =
      static_cast<uint64_t>(flags.GetInt("dataset_seed", 20210419));
  if (Status registered =
          service::RegisterSurrogateDatasets(store, dataset_options);
      !registered.ok()) {
    std::cerr << registered << "\n";
    return 1;
  }
  if (Status registered =
          RegisterEdgeListFlag(store, flags.GetString("edge_list", ""));
      !registered.ok()) {
    std::cerr << registered << "\n";
    return 1;
  }
  // Fleet-worker mode: resolve unknown dataset names to shard snapshots in
  // --shard_dir and allow ShedRequest::output to write kept subgraphs there.
  const std::string shard_dir = flags.GetString("shard_dir", "");
  if (!shard_dir.empty()) {
    service::InstallShardDirFallback(store, shard_dir,
                                     flags.GetBool("mmap", true));
  }

  service::JobScheduler::Options scheduler_options;
  scheduler_options.workers = static_cast<int>(flags.GetInt("workers", 0));
  scheduler_options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 1024));
  scheduler_options.rank_cache_byte_budget =
      static_cast<uint64_t>(flags.GetInt("rank_cache_mb", 128)) << 20;
  scheduler_options.enable_rank_cache =
      scheduler_options.rank_cache_byte_budget > 0;
  if (Status parsed = ParseTenantsFlag(flags.GetString("tenants", ""),
                                       &scheduler_options.tenants);
      !parsed.ok()) {
    std::cerr << parsed << "\n";
    return 1;
  }
  const bool degrade = flags.GetBool("degrade", false);
  scheduler_options.degrade.enabled = degrade;
  service::JobScheduler scheduler(&store, &metrics, scheduler_options,
                                  tracer.get());

  net::RpcServerOptions server_options;
  server_options.port = static_cast<int>(flags.GetInt("port", 0));
  server_options.loopback_only = !flags.GetBool("public", false);
  server_options.max_connections =
      static_cast<size_t>(flags.GetInt("max_connections", 64));
  server_options.max_inflight =
      static_cast<size_t>(flags.GetInt("max_inflight", 8));
  server_options.dispatch_threads =
      static_cast<int>(flags.GetInt("dispatch_threads", 4));
  server_options.idle_timeout =
      std::chrono::milliseconds(flags.GetInt("idle_timeout_ms", 60000));
  server_options.degrade_enabled = degrade;
  server_options.max_pending =
      static_cast<size_t>(flags.GetInt("max_pending", 0));
  server_options.output_dir = shard_dir;
  net::RpcServer server(&store, &scheduler, &metrics, server_options,
                        tracer.get());
  if (Status started = server.Start(); !started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }
  std::printf("rpc server on %s:%d (max_connections=%zu max_inflight=%zu)\n",
              server_options.loopback_only ? "127.0.0.1" : "0.0.0.0",
              server.port(), server_options.max_connections,
              server_options.max_inflight);

  std::unique_ptr<obs::StatsServer> stats_server;
  if (stats_port >= 0) {
    obs::StatsServerOptions http_options;
    http_options.port = static_cast<int>(stats_port);
    stats_server = std::make_unique<obs::StatsServer>(http_options);
    stats_server->Handle("/metrics", [&metrics] {
      return obs::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               obs::PrometheusText(metrics)};
    });
    stats_server->Handle("/tracez", [&tracer] {
      return obs::HttpResponse{200, "application/json; charset=utf-8",
                               tracer->TraceEventJson()};
    });
    stats_server->Handle("/statusz", [&metrics] {
      return obs::HttpResponse{200, "text/plain; charset=utf-8",
                               metrics.TextSnapshot()};
    });
    if (Status started = stats_server->Start(); !started.ok()) {
      std::cerr << started << "\n";
      return 1;
    }
    std::printf("stats server on http://127.0.0.1:%d "
                "(/metrics /tracez /statusz /healthz)\n",
                stats_server->port());
  }
  std::fflush(stdout);

  // Serve until a stop signal (or --serve_ms for bounded runs in scripts).
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  const int64_t serve_ms = flags.GetInt("serve_ms", 0);
  const auto started_at = std::chrono::steady_clock::now();
  while (!g_signal_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (serve_ms > 0 && std::chrono::steady_clock::now() - started_at >=
                            std::chrono::milliseconds(serve_ms)) {
      break;
    }
  }

  std::printf("draining...\n");
  server.Stop();
  scheduler.Shutdown();
  if (stats_server != nullptr) stats_server->Stop();
  std::fputs(metrics.TextSnapshot().c_str(), stdout);
  return 0;
}

/// Parses --insert / --delete flag values: "u:v,u:v,...". Whitespace around
/// entries is tolerated; validation beyond u32 syntax (self-loops,
/// duplicates, liveness) is the server's job so errors name one authority.
Status ParseEdgePairsFlag(const std::string& value, const char* flag,
                          std::vector<std::pair<uint32_t, uint32_t>>* out) {
  for (std::string_view entry : StrSplit(value, ',')) {
    entry = StripWhitespace(entry);
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    unsigned long long u = 0;
    unsigned long long v = 0;
    char trailing = '\0';
    if (colon == std::string_view::npos ||
        std::sscanf(std::string(entry).c_str(), "%llu:%llu%c", &u, &v,
                    &trailing) != 2 ||
        u > UINT32_MAX || v > UINT32_MAX) {
      return Status::InvalidArgument(
          StrFormat("bad --%s entry (want u:v with u32 ids): %.*s", flag,
                    static_cast<int>(entry.size()), entry.data()));
    }
    out->emplace_back(static_cast<uint32_t>(u), static_cast<uint32_t>(v));
  }
  return Status::OK();
}

int CmdClient(const eval::Flags& flags) {
  net::RpcClientOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<int>(flags.GetInt("port", 0));
  if (options.port <= 0) {
    std::cerr << "--port is required\n";
    return Usage();
  }
  options.recv_timeout =
      std::chrono::milliseconds(flags.GetInt("timeout_ms", 600000));
  options.max_attempts = static_cast<int>(flags.GetInt("retries", 3)) + 1;
  net::RpcClient client(options);

  const std::string op = flags.GetString("op", "shed");
  if (op == "ping") {
    auto echoed = client.Ping(20210419);
    if (!echoed.ok()) {
      std::cerr << echoed.status() << "\n";
      return 1;
    }
    std::printf("pong token=%llu\n",
                static_cast<unsigned long long>(*echoed));
    return 0;
  }
  if (op == "list") {
    auto names = client.ListDatasets();
    if (!names.ok()) {
      std::cerr << names.status() << "\n";
      return 1;
    }
    for (const std::string& name : *names) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (op == "shed") {
    net::ShedRequest request;
    request.dataset = flags.GetString("dataset", "grqc");
    request.method = flags.GetString("method", "crr");
    request.p = flags.GetDouble("p", 0.5);
    request.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    request.deadline_ms =
        static_cast<uint64_t>(flags.GetInt("deadline_ms", 0));
    request.wait = !flags.GetBool("no_wait", false);
    request.tenant = flags.GetString("tenant", "");
    request.priority = flags.GetBool("priority", false) ? 1 : 0;
    auto response = client.Shed(request);
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return 1;
    }
    if (!response->has_result) {
      std::printf("submitted job=%llu\n",
                  static_cast<unsigned long long>(response->job_id));
      return 0;
    }
    const net::ResultSummary& r = response->result;
    std::string degraded;
    if (r.degrade_kind != 0) {
      degraded = StrFormat(" (degraded: method=%s p=%.2f)",
                           r.applied_method.c_str(), r.applied_p);
    }
    std::printf("job=%llu kept=%llu total_delta=%.6f avg_delta=%.6f "
                "reduction=%.3fs%s%s\n",
                static_cast<unsigned long long>(response->job_id),
                static_cast<unsigned long long>(r.kept_edges),
                r.total_delta, r.average_delta, r.reduction_seconds,
                r.deduplicated ? " (cached)" : "", degraded.c_str());
    return 0;
  }

  if (op == "apply") {
    // One ApplyMutationsRequest per batch: a mutation file's `---`
    // separators keep their batch-atomicity over the wire, and inline
    // --insert/--delete flags form one extra batch.
    const std::string dataset = flags.GetString("dataset", "grqc");
    std::vector<net::ApplyMutationsRequest> requests;
    const std::string mutations_path = flags.GetString("mutations", "");
    if (!mutations_path.empty()) {
      auto batches = graph::ParseMutationFile(mutations_path);
      if (!batches.ok()) {
        std::cerr << batches.status() << "\n";
        return 1;
      }
      for (const graph::MutationBatch& batch : *batches) {
        net::ApplyMutationsRequest request;
        request.dataset = dataset;
        for (const graph::Edge& e : batch.inserts) {
          request.inserts.emplace_back(e.u, e.v);
        }
        for (const graph::Edge& e : batch.deletes) {
          request.deletes.emplace_back(e.u, e.v);
        }
        requests.push_back(std::move(request));
      }
    }
    net::ApplyMutationsRequest inline_request;
    inline_request.dataset = dataset;
    if (Status parsed = ParseEdgePairsFlag(flags.GetString("insert", ""),
                                           "insert", &inline_request.inserts);
        !parsed.ok()) {
      std::cerr << parsed << "\n";
      return Usage();
    }
    if (Status parsed = ParseEdgePairsFlag(flags.GetString("delete", ""),
                                           "delete", &inline_request.deletes);
        !parsed.ok()) {
      std::cerr << parsed << "\n";
      return Usage();
    }
    if (!inline_request.inserts.empty() || !inline_request.deletes.empty()) {
      requests.push_back(std::move(inline_request));
    }
    if (requests.empty()) {
      std::cerr << "--op=apply needs --mutations and/or --insert/--delete\n";
      return Usage();
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      auto response = client.ApplyMutations(requests[i]);
      if (!response.ok()) {
        std::cerr << "batch " << i + 1 << ": " << response.status() << "\n";
        return 1;
      }
      std::printf("applied batch=%zu version=%llu live=%llu "
                  "overlay=+%llu/-%llu compacting=%u\n",
                  i + 1,
                  static_cast<unsigned long long>(response->version),
                  static_cast<unsigned long long>(response->live_edges),
                  static_cast<unsigned long long>(response->overlay_inserted),
                  static_cast<unsigned long long>(response->overlay_deleted),
                  response->compacting);
    }
    return 0;
  }

  const auto job_id = static_cast<uint64_t>(flags.GetInt("job_id", 0));
  if (op == "wait") {
    auto summary = client.Wait(job_id);
    if (!summary.ok()) {
      std::cerr << summary.status() << "\n";
      return 1;
    }
    std::printf("job=%llu kept=%llu total_delta=%.6f avg_delta=%.6f "
                "reduction=%.3fs%s\n",
                static_cast<unsigned long long>(job_id),
                static_cast<unsigned long long>(summary->kept_edges),
                summary->total_delta, summary->average_delta,
                summary->reduction_seconds,
                summary->deduplicated ? " (cached)" : "");
    return 0;
  }
  if (op == "status") {
    auto status = client.GetJobStatus(job_id);
    if (!status.ok()) {
      std::cerr << status.status() << "\n";
      return 1;
    }
    auto code = net::StatusCodeFromWireCode(status->code);
    std::printf("job=%llu state=%.*s status=%.*s%s%s queue=%.3fs run=%.3fs\n",
                static_cast<unsigned long long>(job_id),
                static_cast<int>(
                    service::JobStateToString(
                        static_cast<service::JobState>(status->state))
                        .size()),
                service::JobStateToString(
                    static_cast<service::JobState>(status->state))
                    .data(),
                static_cast<int>(
                    StatusCodeToString(code.ok() ? *code : StatusCode::kOk)
                        .size()),
                StatusCodeToString(code.ok() ? *code : StatusCode::kOk)
                    .data(),
                status->message.empty() ? "" : ": ",
                status->message.c_str(), status->queue_seconds,
                status->run_seconds);
    return 0;
  }
  if (op == "cancel") {
    if (Status cancelled = client.Cancel(job_id); !cancelled.ok()) {
      std::cerr << cancelled << "\n";
      return 1;
    }
    std::printf("cancelled job=%llu\n",
                static_cast<unsigned long long>(job_id));
    return 0;
  }
  std::cerr << "unknown --op: " << op << "\n";
  return Usage();
}

int CmdMutate(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const std::string mutations_path = flags.GetString("mutations", "");
  if (mutations_path.empty()) {
    std::cerr << "--mutations is required\n";
    return Usage();
  }
  auto batches = graph::ParseMutationFile(mutations_path);
  if (!batches.ok()) {
    std::cerr << batches.status() << "\n";
    return 1;
  }

  dyn::VersionedGraph::Options graph_options;
  graph_options.compact_ratio = flags.GetDouble("compact_ratio", 0.10);
  graph_options.auto_compact = flags.GetBool("auto_compact", true);
  auto versioned = std::make_shared<dyn::VersionedGraph>(
      std::move(input->graph), graph_options);

  std::unique_ptr<dyn::ShedSession> session;
  if (flags.GetBool("reshed", false)) {
    dyn::DynamicShedOptions shed_options;
    shed_options.p = flags.GetDouble("p", 0.5);
    shed_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    shed_options.dirty_hops =
        static_cast<uint32_t>(flags.GetInt("dirty_hops", 0));
    shed_options.decay_half_life = flags.GetDouble("decay_half_life", 0.0);
    shed_options.threads = static_cast<int>(flags.GetInt("threads", 0));
    session = std::make_unique<dyn::ShedSession>(versioned, shed_options);
  }

  // One parseable line per re-shed; `kept=` is what CI smoke compares
  // against the remote path.
  std::vector<graph::Edge> kept;
  auto reshed_once = [&](size_t batch_index) -> int {
    auto result = session->Reshed();
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::printf("batch=%zu version=%llu kept=%zu full_rank=%d dirty=%llu "
                "avg_delta=%.6f reshed=%.3fs\n",
                batch_index,
                static_cast<unsigned long long>(result->version),
                result->kept.size(), result->full_rank ? 1 : 0,
                static_cast<unsigned long long>(result->dirty_vertices),
                result->average_delta, result->seconds);
    kept = std::move(result->kept);
    return 0;
  };
  if (session != nullptr && reshed_once(0) != 0) return 1;

  for (size_t i = 0; i < batches->size(); ++i) {
    auto version = versioned->ApplyBatch(std::move((*batches)[i]));
    if (!version.ok()) {
      std::cerr << "batch " << i + 1 << ": " << version.status() << "\n";
      return 1;
    }
    auto snap = versioned->Snapshot();
    std::printf("applied batch=%zu version=%llu live=%s overlay=+%zu/-%zu "
                "ratio=%.4f\n",
                i + 1, static_cast<unsigned long long>(*version),
                FormatWithCommas(snap->NumEdges()).c_str(),
                snap->inserted().size(), snap->deleted_ids().size(),
                snap->DeltaRatio());
    if (session != nullptr && reshed_once(i + 1) != 0) return 1;
  }
  versioned->WaitForCompaction();
  auto snap = versioned->Snapshot();
  std::printf("final version=%llu live=%s overlay=+%zu/-%zu\n",
              static_cast<unsigned long long>(versioned->CurrentVersion()),
              FormatWithCommas(snap->NumEdges()).c_str(),
              snap->inserted().size(), snap->deleted_ids().size());

  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    if (session == nullptr) {
      std::cerr << "--output writes the kept edge list; it needs --reshed\n";
      return Usage();
    }
    auto reduced = graph::Graph::FromEdges(
        static_cast<graph::NodeId>(snap->NumNodes()), kept);
    if (!reduced.ok()) {
      std::cerr << reduced.status() << "\n";
      return 1;
    }
    if (Status saved = graph::SaveEdgeList(*reduced, output); !saved.ok()) {
      std::cerr << saved << "\n";
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  const std::string binary_output = flags.GetString("binary_output", "");
  if (!binary_output.empty()) {
    auto materialized = snap->Materialize();
    if (!materialized.ok()) {
      std::cerr << materialized.status() << "\n";
      return 1;
    }
    if (Status saved = graph::SaveBinaryGraph(*materialized, binary_output,
                                              SnapshotOptionsFromFlags(flags));
        !saved.ok()) {
      std::cerr << saved << "\n";
      return 1;
    }
    std::printf("wrote %s\n", binary_output.c_str());
  }
  return 0;
}

int CmdCoordinate(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }

  service::MetricsRegistry metrics;
  const int64_t stats_port = flags.GetInt("stats_port", -1);
  const std::string trace_out = flags.GetString("trace_out", "");
  std::unique_ptr<obs::Tracer> tracer;
  if (stats_port >= 0 || !trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>();
  }

  dist::CoordinatorOptions options;
  auto workers = dist::ParseWorkerList(flags.GetString("workers", ""));
  if (!workers.ok()) {
    std::cerr << workers.status() << "\n";
    return Usage();
  }
  options.workers = *std::move(workers);
  auto kind = dist::ParsePartitionerKind(flags.GetString("partitioner",
                                                         "hdrf"));
  if (!kind.ok()) {
    std::cerr << kind.status() << "\n";
    return Usage();
  }
  options.partition.kind = *kind;
  options.partition.shards = static_cast<int>(flags.GetInt("shards", 2));
  options.partition.hdrf_lambda = flags.GetDouble("hdrf_lambda", 1.1);
  options.partition.seed =
      static_cast<uint64_t>(flags.GetInt("partition_seed", 42));
  options.method = flags.GetString("method", "crr");
  options.p = flags.GetDouble("p", 0.5);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.shard_dir = flags.GetString("shard_dir", "");
  if (options.shard_dir.empty()) {
    std::cerr << "--shard_dir is required\n";
    return Usage();
  }
  options.job_tag = flags.GetString("job_tag", "fleet");
  options.deadline_ms = static_cast<uint64_t>(flags.GetInt("deadline_ms", 0));
  options.poll_interval = std::chrono::milliseconds(flags.GetInt("poll_ms",
                                                                 50));
  options.client.recv_timeout =
      std::chrono::milliseconds(flags.GetInt("timeout_ms", 600000));
  options.client.max_attempts =
      static_cast<int>(flags.GetInt("retries", 3)) + 1;
  options.local_fallback = !flags.GetBool("no_fallback", false);
  options.threads = static_cast<int>(flags.GetInt("threads", 0));

  std::unique_ptr<obs::StatsServer> stats_server;
  if (stats_port >= 0) {
    obs::StatsServerOptions http_options;
    http_options.port = static_cast<int>(stats_port);
    stats_server = std::make_unique<obs::StatsServer>(http_options);
    stats_server->Handle("/metrics", [&metrics] {
      return obs::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               obs::PrometheusText(metrics)};
    });
    stats_server->Handle("/tracez", [&tracer] {
      return obs::HttpResponse{200, "application/json; charset=utf-8",
                               tracer->TraceEventJson()};
    });
    stats_server->Handle("/statusz", [&metrics] {
      return obs::HttpResponse{200, "text/plain; charset=utf-8",
                               metrics.TextSnapshot()};
    });
    if (Status started = stats_server->Start(); !started.ok()) {
      std::cerr << started << "\n";
      return 1;
    }
    std::printf("stats server on http://127.0.0.1:%d "
                "(/metrics /tracez /statusz /healthz)\n",
                stats_server->port());
    std::fflush(stdout);
  }

  dist::ShedCoordinator coordinator(options, &metrics, tracer.get());
  Stopwatch watch;
  auto result = coordinator.Run(input->graph);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    if (stats_server != nullptr) stats_server->Stop();
    return 1;
  }

  std::printf("%s x%d over %zu worker(s), method=%s p=%.2f\n",
              std::string(dist::PartitionerKindToString(
                              options.partition.kind)).c_str(),
              options.partition.shards, options.workers.size(),
              options.method.c_str(), options.p);
  std::printf("partition: balance=%.4f replication=%.4f cut_vertices=%s\n",
              result->partition_stats.balance_factor,
              result->partition_stats.replication_factor,
              FormatWithCommas(result->partition_stats.cut_vertices).c_str());
  for (const dist::ShardOutcome& shard : result->shards) {
    std::printf("shard %d: %-21s edges=%-9s kept=%-9s %.3fs%s%s%s\n",
                shard.shard, shard.worker.c_str(),
                FormatWithCommas(shard.shard_edges).c_str(),
                FormatWithCommas(shard.kept_edges).c_str(), shard.seconds,
                shard.remote_ok ? " (remote)" : "",
                shard.fell_back ? " (fell back: " : "",
                shard.fell_back ? (shard.remote_error + ")").c_str() : "");
  }
  std::printf("kept %s / %s edges (target %s) in %.3fs "
              "(partition %.3fs snapshot %.3fs shed %.3fs merge %.3fs)\n",
              FormatWithCommas(result->kept_edges.size()).c_str(),
              FormatWithCommas(input->graph.NumEdges()).c_str(),
              FormatWithCommas(result->target_edges).c_str(),
              watch.ElapsedSeconds(), result->partition_seconds,
              result->snapshot_seconds, result->shed_seconds,
              result->merge_seconds);

  const std::string output = flags.GetString("output", "");
  const std::string binary_output = flags.GetString("binary_output", "");
  if (!output.empty() || !binary_output.empty()) {
    graph::Graph reduced = result->BuildReducedGraph(input->graph);
    if (!output.empty()) {
      if (Status saved = graph::SaveEdgeList(reduced, output); !saved.ok()) {
        std::cerr << saved << "\n";
        return 1;
      }
      std::printf("wrote %s\n", output.c_str());
    }
    if (!binary_output.empty()) {
      if (Status saved = graph::SaveBinaryGraph(
              reduced, binary_output, SnapshotOptionsFromFlags(flags));
          !saved.ok()) {
        std::cerr << saved << "\n";
        return 1;
      }
      std::printf("wrote %s\n", binary_output.c_str());
    }
  }

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot write trace file: " << trace_out << "\n";
      return 1;
    }
    out << tracer->TraceEventJson();
    std::printf("wrote %s (load at chrome://tracing)\n", trace_out.c_str());
  }

  const int64_t linger_ms = flags.GetInt("linger_ms", 0);
  if (linger_ms > 0 && stats_server != nullptr) {
    std::printf("lingering %lld ms for stats scrapes...\n",
                static_cast<long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  if (stats_server != nullptr) stats_server->Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  if (command == "reduce") return CmdReduce(flags);
  if (command == "analyze") return CmdAnalyze(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "service") return CmdService(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "client") return CmdClient(flags);
  if (command == "mutate") return CmdMutate(flags);
  if (command == "coordinate") return CmdCoordinate(flags);
  return Usage();
}
