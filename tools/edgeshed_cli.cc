// edgeshed — command-line front end for the library.
//
// Commands:
//   edgeshed reduce  --input=G.txt --method=crr|bm2|random|local-degree|
//                    spanning-forest --p=0.5 [--output=R.txt] [--seed=42]
//                    [--binary_output=R.esg]
//   edgeshed analyze --input=G.txt [--tasks=degree,components,clustering,
//                    pagerank,distance] [--top=10]
//   edgeshed stats   --input=G.txt
//   edgeshed convert --input=G.txt --binary_output=G.esg   (and back via
//                    --binary_input/--output)
//   edgeshed generate --dataset=grqc|hepph|enron|livejournal --scale=1.0
//                    --output=G.txt [--seed=...]
//
// Text inputs are SNAP-format edge lists; .esg is the library's binary
// snapshot format (graph/binary_io.h).

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "analytics/clustering.h"
#include "analytics/components.h"
#include "analytics/degree.h"
#include "analytics/pagerank.h"
#include "analytics/shortest_paths.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "core/extra_baselines.h"
#include "core/random_shedding.h"
#include "eval/flags.h"
#include "graph/binary_io.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"

using namespace edgeshed;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: edgeshed <reduce|analyze|stats|convert|generate> "
               "[flags]\n"
               "  reduce   --input=G.txt --method=crr --p=0.5 "
               "[--output=R.txt] [--binary_output=R.esg] [--seed=42]\n"
               "  analyze  --input=G.txt [--tasks=degree,components,"
               "clustering,pagerank,distance] [--top=10]\n"
               "  stats    --input=G.txt\n"
               "  convert  --input=G.txt --binary_output=G.esg | "
               "--binary_input=G.esg --output=G.txt\n"
               "  generate --dataset=grqc|hepph|enron|livejournal "
               "--scale=1.0 --output=G.txt [--seed=N]\n");
  return 2;
}

StatusOr<graph::Graph> LoadInput(const eval::Flags& flags) {
  const std::string binary_input = flags.GetString("binary_input", "");
  if (!binary_input.empty()) {
    return graph::LoadBinaryGraph(binary_input);
  }
  const std::string input = flags.GetString("input", "");
  if (input.empty()) {
    return Status::InvalidArgument("--input (or --binary_input) is required");
  }
  auto loaded = graph::LoadEdgeList(input);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded)->graph;
}

std::unique_ptr<core::EdgeShedder> MakeShedder(const std::string& method,
                                               uint64_t seed) {
  if (method == "crr") {
    core::CrrOptions options;
    options.seed = seed;
    return std::make_unique<core::Crr>(options);
  }
  if (method == "bm2") {
    core::Bm2Options options;
    options.seed = seed;
    return std::make_unique<core::Bm2>(options);
  }
  if (method == "random") {
    return std::make_unique<core::RandomShedding>(seed);
  }
  if (method == "local-degree") {
    return std::make_unique<core::LocalDegreeShedding>();
  }
  if (method == "spanning-forest") {
    return std::make_unique<core::SpanningForestShedding>(seed);
  }
  return nullptr;
}

int CmdReduce(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const std::string method = flags.GetString("method", "crr");
  const double p = flags.GetDouble("p", 0.5);
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::unique_ptr<core::EdgeShedder> shedder = MakeShedder(method, seed);
  if (shedder == nullptr) {
    std::cerr << "unknown method: " << method << "\n";
    return Usage();
  }
  auto result = shedder->Reduce(*input, p);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  graph::Graph reduced = result->BuildReducedGraph(*input);
  std::printf("%s: kept %s / %s edges in %.3fs (avg delta %.4f)\n",
              shedder->name().c_str(),
              FormatWithCommas(reduced.NumEdges()).c_str(),
              FormatWithCommas(input->NumEdges()).c_str(),
              result->reduction_seconds, result->average_delta);
  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    Status status = graph::SaveEdgeList(reduced, output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  const std::string binary_output = flags.GetString("binary_output", "");
  if (!binary_output.empty()) {
    Status status = graph::SaveBinaryGraph(reduced, binary_output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", binary_output.c_str());
  }
  return 0;
}

int CmdStats(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const graph::Graph& g = *input;
  auto components = analytics::ConnectedComponents(g);
  std::printf("nodes:       %s\n", FormatWithCommas(g.NumNodes()).c_str());
  std::printf("edges:       %s\n", FormatWithCommas(g.NumEdges()).c_str());
  std::printf("avg degree:  %.3f\n", g.AverageDegree());
  std::printf("max degree:  %s\n",
              FormatWithCommas(analytics::MaxDegree(g)).c_str());
  std::printf("components:  %u (largest %s)\n", components.NumComponents(),
              components.NumComponents() == 0
                  ? "0"
                  : FormatWithCommas(
                        components.sizes[components.LargestComponent()])
                        .c_str());
  return 0;
}

int CmdAnalyze(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const graph::Graph& g = *input;
  const std::string tasks =
      flags.GetString("tasks", "degree,components,clustering,pagerank");
  Stopwatch watch;
  for (std::string_view task : StrSplit(tasks, ',')) {
    Stopwatch task_watch;
    if (task == "degree") {
      auto histogram = analytics::DegreeDistribution(g);
      std::printf("[degree] distinct degrees: %zu (%.3fs)\n",
                  histogram.Keys().size(), task_watch.ElapsedSeconds());
    } else if (task == "components") {
      auto components = analytics::ConnectedComponents(g);
      std::printf("[components] %u components (%.3fs)\n",
                  components.NumComponents(), task_watch.ElapsedSeconds());
    } else if (task == "clustering") {
      double cc = analytics::AverageClusteringCoefficient(g);
      std::printf("[clustering] average coefficient %.4f (%.3fs)\n", cc,
                  task_watch.ElapsedSeconds());
    } else if (task == "pagerank") {
      auto scores = analytics::PageRank(g);
      const auto top = static_cast<uint64_t>(flags.GetInt("top", 10));
      auto indices = analytics::TopKIndices(scores, top);
      std::printf("[pagerank] top-%llu:",
                  static_cast<unsigned long long>(top));
      for (uint32_t u : indices) std::printf(" %u", u);
      std::printf(" (%.3fs)\n", task_watch.ElapsedSeconds());
    } else if (task == "distance") {
      auto profile = analytics::DistanceProfile(g);
      std::printf("[distance] median hop fraction at k=3: %.4f (%.3fs)\n",
                  analytics::HopPlotFraction(profile, 3),
                  task_watch.ElapsedSeconds());
    } else {
      std::fprintf(stderr, "unknown task: %.*s\n",
                   static_cast<int>(task.size()), task.data());
      return Usage();
    }
  }
  std::printf("total %.3fs\n", watch.ElapsedSeconds());
  return 0;
}

int CmdConvert(const eval::Flags& flags) {
  auto input = LoadInput(flags);
  if (!input.ok()) {
    std::cerr << input.status() << "\n";
    return 1;
  }
  const std::string binary_output = flags.GetString("binary_output", "");
  const std::string output = flags.GetString("output", "");
  if (binary_output.empty() && output.empty()) {
    std::cerr << "convert needs --binary_output or --output\n";
    return Usage();
  }
  if (!binary_output.empty()) {
    Status status = graph::SaveBinaryGraph(*input, binary_output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", binary_output.c_str());
  }
  if (!output.empty()) {
    Status status = graph::SaveEdgeList(*input, output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  return 0;
}

int CmdGenerate(const eval::Flags& flags) {
  const std::string name = flags.GetString("dataset", "grqc");
  graph::DatasetId id;
  if (name == "grqc") {
    id = graph::DatasetId::kCaGrQc;
  } else if (name == "hepph") {
    id = graph::DatasetId::kCaHepPh;
  } else if (name == "enron") {
    id = graph::DatasetId::kEmailEnron;
  } else if (name == "livejournal") {
    id = graph::DatasetId::kComLiveJournal;
  } else {
    std::cerr << "unknown dataset: " << name << "\n";
    return Usage();
  }
  graph::DatasetOptions options;
  options.scale = flags.GetDouble("scale", 1.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 20210419));
  graph::Graph g = graph::MakeDataset(id, options);
  std::printf("generated %s surrogate: %s nodes, %s edges\n",
              graph::GetDatasetSpec(id).name.c_str(),
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());
  const std::string output = flags.GetString("output", "");
  if (!output.empty()) {
    Status status = graph::SaveEdgeList(g, output);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::printf("wrote %s\n", output.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  if (command == "reduce") return CmdReduce(flags);
  if (command == "analyze") return CmdAnalyze(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "generate") return CmdGenerate(flags);
  return Usage();
}
