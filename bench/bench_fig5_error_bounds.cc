// Reproduces Fig. 5(a)-(b): measured average delta of CRR and BM2 versus
// the Theorem 1 / Theorem 2 error bounds across p, on ca-GrQc.
//
// Paper shape to reproduce: the bounds are loose; measured average delta
// stays below 1 for every p for both methods.

#include "bench/bench_util.h"
#include "core/bounds.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader(
      "Fig. 5(a)-(b) — measured average delta vs theorem bounds (ca-GrQc)",
      config);

  graph::Graph g = bench::LoadScaled(graph::DatasetId::kCaGrQc, config, 0.5);
  std::printf("ca-GrQc surrogate: %s nodes, %s edges\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());

  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();

  TablePrinter table;
  table.SetHeader({"p", "CRR avg delta", "Thm-1 bound", "BM2 avg delta",
                   "Thm-2 bound"});
  for (double p : eval::PaperPreservationRatios()) {
    auto crr_result = crr.Reduce(g, p);
    auto bm2_result = bm2.Reduce(g, p);
    EDGESHED_CHECK(crr_result.ok());
    EDGESHED_CHECK(bm2_result.ok());
    table.AddRow({FormatDouble(p, 1),
                  FormatDouble(crr_result->average_delta, 4),
                  FormatDouble(core::CrrAverageDeltaBound(g, p), 3),
                  FormatDouble(bm2_result->average_delta, 4),
                  FormatDouble(core::Bm2AverageDeltaBound(g, p), 3)});
  }
  bench::PrintTableWithCsv(table);
  std::printf("expected shape (paper Fig. 5a-b): measured errors stay "
              "below 1 for all p and far below the loose bounds.\n");
  return 0;
}
