// Extension bench (not in the paper): fidelity of *structural* summaries
// beyond the paper's seven tasks — coreness distribution, degeneracy,
// degree assortativity, eigenvector-centrality top-k, and effective
// diameter — across the shedding methods. Degree-preserving shedding
// should keep degree-derived structure (coreness shapes, assortativity
// sign) better than uniform sampling keeps it.

#include "bench/bench_util.h"
#include "analytics/approx_neighborhood.h"
#include "analytics/assortativity.h"
#include "analytics/eigenvector.h"
#include "analytics/kcore.h"
#include "analytics/louvain.h"
#include "core/random_shedding.h"
#include "eval/metrics.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  const double p = flags.GetDouble("p", 0.5);
  bench::PrintBenchHeader(
      "Extension — structural fidelity (k-core / assortativity / "
      "eigenvector / diameter)",
      config);

  graph::Graph g = bench::LoadScaled(graph::DatasetId::kCaGrQc, config, 1.0);
  std::printf("ca-GrQc surrogate: %s nodes, %s edges, p = %.1f\n\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str(), p);

  const Histogram original_coreness = analytics::CorenessDistribution(g);
  const double original_assortativity = analytics::DegreeAssortativity(g);
  const auto original_eigen = analytics::EigenvectorCentrality(g);
  const auto original_top = eval::TopPercentNodes(original_eigen, 10.0);
  const double original_diameter =
      analytics::ApproximateNeighborhoodFunction(g).EffectiveDiameter();

  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  core::RandomShedding random_shedding(7);

  const double original_modularity = analytics::Louvain(g).modularity;

  TablePrinter table;
  table.SetHeader({"method", "degeneracy (orig " +
                       std::to_string(analytics::Degeneracy(g)) + ")",
                   "coreness KS", "assortativity (orig " +
                       FormatDouble(original_assortativity, 3) + ")",
                   "eigen top-10% overlap", "eff. diameter (orig " +
                       FormatDouble(original_diameter, 2) + ")",
                   "community Q on G (orig " +
                       FormatDouble(original_modularity, 3) + ")"});
  for (const core::EdgeShedder* shedder :
       {static_cast<const core::EdgeShedder*>(&crr),
        static_cast<const core::EdgeShedder*>(&bm2),
        static_cast<const core::EdgeShedder*>(&random_shedding)}) {
    auto result = shedder->Reduce(g, p);
    EDGESHED_CHECK(result.ok());
    graph::Graph reduced = result->BuildReducedGraph(g);
    const auto eigen = analytics::EigenvectorCentrality(reduced);
    std::vector<bool> eligible(reduced.NumNodes());
    for (graph::NodeId u = 0; u < reduced.NumNodes(); ++u) {
      eligible[u] = reduced.Degree(u) > 0;
    }
    const auto top = eval::TopPercentNodes(eigen, 10.0, &eligible);
    table.AddRow(
        {shedder->name(),
         std::to_string(analytics::Degeneracy(reduced)),
         FormatDouble(
             Histogram::KsDistance(original_coreness,
                                   analytics::CorenessDistribution(reduced)),
             4),
         FormatDouble(analytics::DegreeAssortativity(reduced), 3),
         FormatDouble(eval::OverlapUtility(original_top, top), 3),
         FormatDouble(analytics::ApproximateNeighborhoodFunction(reduced)
                          .EffectiveDiameter(),
                      2),
         // Communities found on G' scored against G: how much of the
         // original modularity does the reduced graph's structure recover?
         FormatDouble(
             analytics::Modularity(g,
                                   analytics::Louvain(reduced).community),
             3)});
  }
  bench::PrintTableWithCsv(table);
  std::printf(
      "reading: degeneracy and the assortativity regime survive; raw\n"
      "coreness values shift down by ~p (KS reflects the shift, not shape\n"
      "loss — estimate core'/p when comparing levels); eigenvector top-k\n"
      "overlap sits near the PageRank numbers of Tables VIII-IX; distances\n"
      "stretch (diameter up) since G' is a spanning subgraph.\n");
  return 0;
}
