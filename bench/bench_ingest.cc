// Ingest-path benchmark suite (ISSUE 9).
//
// Measures every on-disk route into a served Graph — text edge list parse,
// binary edge list, v2 snapshot, v3 snapshot copy load, v3 snapshot mmap
// load, and the out-of-core text-to-v3 converter — and emits medians plus
// peak RSS to BENCH_ingest.json (schema edgeshed-bench-ingest-v1, diffed by
// tools/compare_bench.py like the hot-path suite).
//
// Unlike the hot-path suite, every sample runs in a forked child so peak
// RSS is per-op, not cumulative: the parent reads the child's elapsed time
// from a pipe and its ru_maxrss from wait4(2). One untimed warm-up fork per
// op primes the page cache, so every format reads warm files — the
// comparison is parse/copy cost, not disk.
//
// Two in-process gates enforce the ISSUE-9 acceptance bars on every run:
//   - mmap-loading the v3 snapshot must be at least 5x faster than text
//     ingest of the same graph, at no more than 3/4 of its peak-RSS delta
//     over an empty child;
//   - the out-of-core converter's snapshot must be byte-identical to the
//     one SaveBinaryGraph writes from the in-memory graph.
//
// Usage:
//   bench_ingest [--out=BENCH_ingest.json] [--repeats=5] [--smoke]
//                [--rev=<git sha>]
//
// --smoke shrinks the graph (~160K edges instead of ~640K) so CI finishes
// in seconds; --rev defaults to $EDGESHED_GIT_REV, then "unknown".

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "eval/flags.h"
#include "graph/binary_io.h"
#include "graph/edge_list_io.h"
#include "graph/external_build.h"
#include "graph/generators/generators.h"
#include "graph/source.h"

namespace edgeshed::bench {
namespace {

struct Sample {
  double seconds = 0.0;
  long rss_kb = 0;
};

/// Runs `body` in a forked child and reports its wall time (written back
/// through a pipe) and peak RSS (wait4's ru_maxrss). Forking isolates the
/// measurement: the child starts from the parent's small baseline, so its
/// ru_maxrss is dominated by what the op itself allocates or touches.
template <typename Body>
Sample RunForked(Body&& body) {
  int fds[2];
  EDGESHED_CHECK(pipe(fds) == 0) << "pipe failed";
  const pid_t pid = fork();
  EDGESHED_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    close(fds[0]);
    Stopwatch watch;
    body();
    const double seconds = watch.ElapsedSeconds();
    const ssize_t wrote = write(fds[1], &seconds, sizeof(seconds));
    _exit(wrote == static_cast<ssize_t>(sizeof(seconds)) ? 0 : 1);
  }
  close(fds[1]);
  Sample sample;
  const ssize_t got = read(fds[0], &sample.seconds, sizeof(sample.seconds));
  close(fds[0]);
  int status = 0;
  struct rusage usage {};
  const pid_t waited = wait4(pid, &status, 0, &usage);
  EDGESHED_CHECK(waited == pid) << "wait4 failed";
  EDGESHED_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "benchmark child died (status " << status << ")";
  EDGESHED_CHECK(got == static_cast<ssize_t>(sizeof(sample.seconds)));
  sample.rss_kb = usage.ru_maxrss;
  return sample;
}

double MedianDouble(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

long MedianLong(std::vector<long> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct BenchResult {
  std::string graph;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  std::string op;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  long peak_rss_kb = 0;
};

/// Forks `repeats` measured children (after one untimed warm-up fork that
/// primes the page cache) and records median/min/max time plus median peak
/// RSS under `op`.
template <typename Body>
BenchResult& TimeOp(const std::string& graph_name, uint64_t nodes,
                    uint64_t edges, const std::string& op, int repeats,
                    Body&& body, std::vector<BenchResult>* results) {
  RunForked(body);  // warm-up, untimed
  std::vector<double> seconds;
  std::vector<long> rss;
  seconds.reserve(static_cast<size_t>(repeats));
  rss.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const Sample sample = RunForked(body);
    seconds.push_back(sample.seconds);
    rss.push_back(sample.rss_kb);
  }
  BenchResult result;
  result.graph = graph_name;
  result.nodes = nodes;
  result.edges = edges;
  result.op = op;
  result.median_seconds = MedianDouble(seconds);
  result.min_seconds = *std::min_element(seconds.begin(), seconds.end());
  result.max_seconds = *std::max_element(seconds.begin(), seconds.end());
  result.peak_rss_kb = MedianLong(rss);
  std::printf("  %-18s %-20s median=%.4fs min=%.4fs max=%.4fs rss=%ldKB\n",
              graph_name.c_str(), op.c_str(), result.median_seconds,
              result.min_seconds, result.max_seconds, result.peak_rss_kb);
  results->push_back(result);
  return results->back();
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EDGESHED_CHECK(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

std::string TempPath(const std::string& leaf) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
         "/edgeshed_bench_ingest_" + leaf;
}

void WriteJson(const std::string& path, const std::string& rev, int repeats,
               long baseline_rss_kb, const std::vector<BenchResult>& results) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  EDGESHED_CHECK(out != nullptr) << "cannot write " << path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"edgeshed-bench-ingest-v1\",\n");
  std::fprintf(out, "  \"git_rev\": \"%s\",\n", rev.c_str());
  std::fprintf(out, "  \"threads\": %d,\n", DefaultThreadCount());
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"baseline_rss_kb\": %ld,\n", baseline_rss_kb);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"graph\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
                 "\"op\": \"%s\", \"median_seconds\": %.6f, "
                 "\"min_seconds\": %.6f, \"max_seconds\": %.6f, "
                 "\"peak_rss_kb\": %ld}%s\n",
                 r.graph.c_str(), static_cast<unsigned long long>(r.nodes),
                 static_cast<unsigned long long>(r.edges), r.op.c_str(),
                 r.median_seconds, r.min_seconds, r.max_seconds,
                 r.peak_rss_kb, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu series, threads=%d, rev=%s)\n", path.c_str(),
              results.size(), DefaultThreadCount(), rev.c_str());
}

int Main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_ingest.json");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const bool smoke = flags.GetBool("smoke", false);
  const char* rev_env = std::getenv("EDGESHED_GIT_REV");
  const std::string rev =
      flags.GetString("rev", rev_env != nullptr ? rev_env : "unknown");

  std::printf("edgeshed ingest suite: threads=%d repeats=%d%s\n",
              DefaultThreadCount(), repeats, smoke ? " (smoke)" : "");

  const std::string graph_name = smoke ? "ba_160k" : "ba_640k";
  const std::string text_path = TempPath(graph_name + ".txt");
  const std::string edges_path = TempPath(graph_name + ".ebl");
  const std::string v2_path = TempPath(graph_name + ".v2.esg");
  const std::string v3_path = TempPath(graph_name + ".v3.esg");
  const std::string converted_path = TempPath(graph_name + ".converted.esg");

  // Prepare every on-disk representation from one graph, then free the
  // in-memory copies so forked children inherit a small baseline RSS.
  // The text reload (not the generator output) is the reference: its node
  // numbering and original-id remap are what every converted artifact must
  // reproduce, so all five loads below deserialize the identical graph.
  uint64_t nodes = 0;
  uint64_t edges = 0;
  {
    Rng rng(9);
    graph::Graph generated = smoke ? graph::BarabasiAlbert(20000, 8, rng)
                                   : graph::BarabasiAlbert(80000, 8, rng);
    Status save = graph::SaveEdgeList(generated, text_path);
    EDGESHED_CHECK(save.ok()) << save.ToString();
    auto ref = graph::LoadGraph(text_path);
    EDGESHED_CHECK(ref.ok()) << ref.status().ToString();
    nodes = ref->graph.NumNodes();
    edges = ref->graph.NumEdges();
    save = graph::SaveBinaryEdgeList(ref->graph, ref->original_ids,
                                     edges_path);
    EDGESHED_CHECK(save.ok()) << save.ToString();
    graph::SnapshotOptions v2;
    v2.version = 2;
    save = graph::SaveBinaryGraph(ref->graph, v2_path, v2);
    EDGESHED_CHECK(save.ok()) << save.ToString();
    graph::SnapshotOptions v3;
    v3.version = 3;
    v3.original_ids = ref->original_ids;
    save = graph::SaveBinaryGraph(ref->graph, v3_path, v3);
    EDGESHED_CHECK(save.ok()) << save.ToString();
  }
  std::printf("%s: %s nodes, %s edges\n", graph_name.c_str(),
              FormatWithCommas(nodes).c_str(), FormatWithCommas(edges).c_str());

  // Empty-child baseline: what a fork costs in RSS before the op runs.
  // Per-op deltas over this baseline are what the RSS gate compares.
  const long baseline_rss_kb = RunForked([] {}).rss_kb;
  std::printf("  forked-child baseline RSS: %ld KB\n", baseline_rss_kb);

  std::vector<BenchResult> results;
  auto check_load = [edges](const graph::GraphSource& source,
                            const graph::IngestOptions& options) {
    auto loaded = graph::LoadGraph(source, options);
    EDGESHED_CHECK(loaded.ok()) << loaded.status().ToString();
    EDGESHED_CHECK_EQ(loaded->graph.NumEdges(), edges);
  };

  TimeOp(graph_name, nodes, edges, "ingest_text", repeats,
         [&] { check_load({text_path, graph::GraphFormat::kText}, {}); },
         &results);
  TimeOp(graph_name, nodes, edges, "ingest_binary_edges", repeats,
         [&] { check_load({edges_path, graph::GraphFormat::kBinaryEdges}, {}); },
         &results);
  TimeOp(graph_name, nodes, edges, "snapshot_v2_load", repeats,
         [&] { check_load({v2_path, graph::GraphFormat::kSnapshot}, {}); },
         &results);
  graph::IngestOptions copy_load;
  copy_load.mmap = false;
  TimeOp(graph_name, nodes, edges, "snapshot_v3_load", repeats,
         [&] {
           check_load({v3_path, graph::GraphFormat::kSnapshot}, copy_load);
         },
         &results);
  TimeOp(graph_name, nodes, edges, "snapshot_v3_mmap", repeats,
         [&] { check_load({v3_path, graph::GraphFormat::kSnapshot}, {}); },
         &results);

  // Out-of-core converter, budget far below the graph's in-memory size so
  // the run always exercises the spill/merge path.
  graph::ExternalBuildOptions external;
  external.memory_budget_bytes = (smoke ? 1ull : 4ull) << 20;
  external.snapshot.version = 3;
  TimeOp(graph_name, nodes, edges, "external_convert", repeats,
         [&] {
           auto stats = graph::BuildSnapshotExternal(text_path, converted_path,
                                                     external);
           EDGESHED_CHECK(stats.ok()) << stats.status().ToString();
           EDGESHED_CHECK_EQ(stats->num_edges, edges);
         },
         &results);

  // --- Gate 1: the converter's output is byte-identical to the in-memory
  // writer's. One cheap untimed comparison; any drift here would also break
  // resumable fleets that mix converted and saved shards. ---
  EDGESHED_CHECK(ReadWholeFile(converted_path) == ReadWholeFile(v3_path))
      << "external converter output drifted from SaveBinaryGraph v3";
  std::printf("  converter output byte-identical to SaveBinaryGraph v3\n");

  // --- Gate 2: the ISSUE-9 acceptance bar — mmap-loading the v3 snapshot
  // beats text ingest by >=5x and stays materially below its peak-RSS
  // delta. RSS is compared as deltas over the empty-child baseline so the
  // shared fork cost cancels out. ---
  auto find = [&](const std::string& op) -> const BenchResult& {
    for (const BenchResult& r : results) {
      if (r.op == op) return r;
    }
    EDGESHED_CHECK(false) << "missing op " << op;
    return results.front();
  };
  const BenchResult& text = find("ingest_text");
  const BenchResult& mmap = find("snapshot_v3_mmap");
  const double speedup = text.median_seconds / mmap.median_seconds;
  const long text_delta = std::max(1L, text.peak_rss_kb - baseline_rss_kb);
  const long mmap_delta = std::max(0L, mmap.peak_rss_kb - baseline_rss_kb);
  std::printf(
      "  mmap v3 vs text ingest: %.1fx faster, RSS delta %ldKB vs %ldKB\n",
      speedup, mmap_delta, text_delta);
  EDGESHED_CHECK_GE(speedup, 5.0)
      << "mmap v3 load lost its >=5x margin over text ingest";
  EDGESHED_CHECK_LE(mmap_delta * 4, text_delta * 3)
      << "mmap v3 load no longer materially below text-ingest peak RSS";

  WriteJson(out, rev, repeats, baseline_rss_kb, results);

  for (const std::string& path :
       {text_path, edges_path, v2_path, v3_path, converted_path}) {
    std::remove(path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace edgeshed::bench

int main(int argc, char** argv) { return edgeshed::bench::Main(argc, argv); }
