// Extension bench (not in the paper): (a) CRR/BM2 against two extra
// simplification-family baselines from the related-work space — local-degree
// sparsification and spanning-forest + uniform fill; (b) accuracy of the
// inverse-p estimators of original-graph properties (estimate/estimators.h).

#include "bench/bench_util.h"
#include "analytics/approx_neighborhood.h"
#include "analytics/degree.h"
#include "analytics/clustering.h"
#include "core/extra_baselines.h"
#include "core/random_shedding.h"
#include "estimate/estimators.h"
#include "eval/metrics.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader(
      "Extension — extra baselines and original-graph estimators", config);

  graph::Graph g = bench::LoadScaled(graph::DatasetId::kCaGrQc, config, 1.0);
  std::printf("ca-GrQc surrogate: %s nodes, %s edges\n\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());

  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  core::RandomShedding random_shedding(7);
  core::LocalDegreeShedding local_degree;
  core::SpanningForestShedding spanning_forest(7);
  const std::vector<const core::EdgeShedder*> shedders = {
      &crr, &bm2, &random_shedding, &local_degree, &spanning_forest};

  {
    TablePrinter table("Method comparison at p = 0.3");
    table.SetHeader({"method", "|E'|", "avg delta", "top-10% utility",
                     "degree KS", "time (s)"});
    Histogram original_degrees = analytics::DegreeDistribution(g);
    for (const core::EdgeShedder* shedder : shedders) {
      auto result = shedder->Reduce(g, 0.3);
      EDGESHED_CHECK(result.ok());
      graph::Graph reduced = result->BuildReducedGraph(g);
      table.AddRow(
          {shedder->name(), FormatWithCommas(reduced.NumEdges()),
           FormatDouble(result->average_delta, 4),
           FormatDouble(eval::TopKUtilityForReduced(g, reduced, 10.0), 3),
           FormatDouble(
               Histogram::KsDistance(
                   original_degrees,
                   analytics::EstimatedDegreeDistribution(reduced, 0.3)),
               4),
           bench::Seconds(result->reduction_seconds)});
    }
    bench::PrintTableWithCsv(table);
  }

  {
    TablePrinter table("Inverse-p estimators from BM2 reductions");
    table.SetHeader({"p", "|E| est/true", "tri est/true", "transitivity "
                     "est vs true", "eff. diameter est vs true"});
    auto triangles_of = [](const graph::Graph& target) {
      auto per_node = analytics::TrianglesPerNode(target);
      uint64_t total = 0;
      for (uint64_t t : per_node) total += t;
      return static_cast<double>(total) / 3.0;
    };
    const double true_edges = static_cast<double>(g.NumEdges());
    const double true_triangles = triangles_of(g);
    auto transitivity_of = [&triangles_of](const graph::Graph& target) {
      double wedges = 0.0;
      for (graph::NodeId u = 0; u < target.NumNodes(); ++u) {
        const double d = static_cast<double>(target.Degree(u));
        wedges += d * (d - 1) / 2.0;
      }
      return wedges == 0.0 ? 0.0 : 3.0 * triangles_of(target) / wedges;
    };
    const double true_transitivity = transitivity_of(g);
    const double true_diameter =
        analytics::ApproximateNeighborhoodFunction(g).EffectiveDiameter();
    for (double p : {0.8, 0.5, 0.3}) {
      auto result = bench::BenchBm2().Reduce(g, p);
      EDGESHED_CHECK(result.ok());
      graph::Graph reduced = result->BuildReducedGraph(g);
      const double est_diameter =
          analytics::ApproximateNeighborhoodFunction(reduced)
              .EffectiveDiameter();
      table.AddRow(
          {FormatDouble(p, 1),
           FormatDouble(estimate::EstimatedEdgeCount(reduced, p) / true_edges,
                        3),
           FormatDouble(
               estimate::EstimatedTriangleCount(reduced, p) / true_triangles,
               3),
           FormatDouble(estimate::EstimatedGlobalClustering(reduced, p), 4) +
               " vs " + FormatDouble(true_transitivity, 4),
           FormatDouble(est_diameter, 2) + " vs " +
               FormatDouble(true_diameter, 2)});
    }
    bench::PrintTableWithCsv(table);
  }
  std::printf(
      "reading: CRR/BM2 dominate the discrepancy metric; local-degree wins\n"
      "connectivity but overshoots |E'|. The |E| estimator is near-exact;\n"
      "the p^-3 triangle estimator assumes *independent* edge retention, so\n"
      "on BM2's selective reductions (which favor structured edges) it\n"
      "overestimates — pair it with random shedding when unbiased motif\n"
      "counts matter.\n");
  return 0;
}
