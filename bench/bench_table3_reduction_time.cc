// Reproduces Table III: graph reduction time (seconds) of UDS, CRR and BM2
// for p in {0.9 ... 0.1} on all four datasets. As in the paper, UDS is not
// run on com-LiveJournal (its cost is prohibitive there).
//
// Paper shape to reproduce:
//  * UDS time explodes as p shrinks (its merge budget grows);
//  * CRR time is nearly flat in p (betweenness dominates);
//  * BM2 is orders of magnitude faster than both and nearly flat;
//  * larger datasets magnify UDS's blow-up (crossover vs CRR moves left).

#include "bench/bench_util.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  const bool run_uds = flags.GetBool("uds", true);
  bench::PrintBenchHeader("Table III — graph reduction time (sec)", config);

  struct Target {
    graph::DatasetId id;
    double scale;  // UDS-friendly default downscale
    bool with_uds;
  };
  const Target targets[] = {
      {graph::DatasetId::kCaGrQc, 0.5, true},
      {graph::DatasetId::kCaHepPh, 0.1, true},
      {graph::DatasetId::kEmailEnron, 0.05, true},
      {graph::DatasetId::kComLiveJournal, 0.5, false},  // paper: no UDS
  };

  for (const Target& target : targets) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    std::printf("\n%s surrogate: %s nodes, %s edges\n", spec.name.c_str(),
                FormatWithCommas(g.NumNodes()).c_str(),
                FormatWithCommas(g.NumEdges()).c_str());

    TablePrinter table;
    table.SetHeader({"p", "UDS", "CRR", "BM2"});
    core::Crr crr = bench::BenchCrr(config.full);
    core::Bm2 bm2 = bench::BenchBm2();
    baseline::Uds uds = bench::BenchUds(config.full);
    for (double p : eval::PaperPreservationRatios()) {
      std::string uds_cell = "-";
      if (run_uds && target.with_uds) {
        auto summary = uds.Summarize(g, p);
        EDGESHED_CHECK(summary.ok());
        uds_cell = bench::Seconds(summary->reduction_seconds);
      }
      auto crr_result = crr.Reduce(g, p);
      auto bm2_result = bm2.Reduce(g, p);
      EDGESHED_CHECK(crr_result.ok());
      EDGESHED_CHECK(bm2_result.ok());
      table.AddRow({FormatDouble(p, 1), uds_cell,
                    bench::Seconds(crr_result->reduction_seconds),
                    bench::Seconds(bm2_result->reduction_seconds)});
    }
    bench::PrintTableWithCsv(table);
  }
  std::printf("expected shape (paper Table III): UDS blows up as p "
              "shrinks; CRR flat in p; BM2 fastest by orders of "
              "magnitude.\n");
  return 0;
}
