// Reproduces Tables IV-V: total processing time (graph reduction + graph
// analysis on the reduced graph) for the seven tasks on ca-GrQc at
// p in {0.9, 0.5, 0.1}, with the "T" row giving the task time on the
// original graph.
//
// Paper shape to reproduce: for cheap tasks (Top-k, Vertex degree,
// Clustering coefficient) reduction does not pay off on a small graph, but
// CRR/BM2 still dominate UDS at small p; for expensive tasks (link
// prediction, SP distance, betweenness, hop-plot) CRR/BM2 beat both UDS and
// the original-graph baseline at small p.

#include "bench/bench_util.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader(
      "Tables IV-V — total processing time on ca-GrQc (sec)", config);

  graph::Graph g =
      bench::LoadScaled(graph::DatasetId::kCaGrQc, config, 0.5);
  std::printf("ca-GrQc surrogate: %s nodes, %s edges\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());
  eval::TaskOptions task_options = bench::BenchTaskOptions(config.full);
  const std::vector<double> ratios = {0.9, 0.5, 0.1};

  // Reduce once per (method, p); remember graph + reduction time.
  struct Reduced {
    graph::Graph graph;
    double reduction_seconds;
  };
  std::map<std::pair<std::string, double>, Reduced> reductions;
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);
  for (double p : ratios) {
    auto crr_result = crr.Reduce(g, p);
    auto bm2_result = bm2.Reduce(g, p);
    EDGESHED_CHECK(crr_result.ok());
    EDGESHED_CHECK(bm2_result.ok());
    reductions[{"CRR", p}] = Reduced{crr_result->BuildReducedGraph(g),
                                     crr_result->reduction_seconds};
    reductions[{"BM2", p}] = Reduced{bm2_result->BuildReducedGraph(g),
                                     bm2_result->reduction_seconds};
    auto summary = uds.Summarize(g, p);
    EDGESHED_CHECK(summary.ok());
    reductions[{"UDS", p}] =
        Reduced{summary->summary_graph, summary->reduction_seconds};
  }

  for (eval::Task task : eval::AllTasks()) {
    const double original_seconds = eval::RunTaskTimed(g, task, task_options);
    TablePrinter table(TaskName(task));
    table.SetHeader({"p", "UDS", "CRR", "BM2"});
    table.AddRow({"T (original)", bench::Seconds(original_seconds), "", ""});
    table.AddSeparator();
    for (double p : ratios) {
      std::vector<std::string> row{FormatDouble(p, 1)};
      for (const std::string method : {"UDS", "CRR", "BM2"}) {
        const Reduced& reduced = reductions.at({method, p});
        const double analysis_seconds =
            eval::RunTaskTimed(reduced.graph, task, task_options);
        row.push_back(
            bench::Seconds(reduced.reduction_seconds + analysis_seconds));
      }
      table.AddRow(std::move(row));
    }
    bench::PrintTableWithCsv(table);
  }
  std::printf("expected shape (paper Tables IV-V): at p = 0.1 UDS's total "
              "time exceeds even the original-graph baseline, while "
              "CRR/BM2 stay far below it on expensive tasks.\n");
  return 0;
}
