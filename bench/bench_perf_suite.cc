// Hot-path performance-regression suite (ISSUE 2, extended by ISSUE 7).
//
// Times the ingest-to-shed pipeline stages — edge-list load, CSR build,
// betweenness ranking (classic and hybrid fast path), CRR and BM2 reduction —
// on generated R-MAT and Barabási–Albert graphs at two sizes, and emits
// machine-readable medians to BENCH_hotpath.json. tools/compare_bench.py
// diffs two such files and flags >10% regressions; .github/workflows/ci.yml
// runs the --smoke variant on every push.
//
// Every op gets one untimed warm-up iteration so the first timed sample does
// not pay one-off costs (page faults, lazy allocations) that later samples
// skip. The (crr_reduce, crr_reduce_traced) observability-overhead pair is
// interleaved within each round — bare, traced, bare, traced — so slow drift
// (frequency scaling, cache pollution from other ops) lands on both series
// equally instead of inverting the pair.
//
// Beyond timings the suite enforces two quality gates in-process:
//   - the hybrid kernel must produce bit-identical exact scores to the
//     classic kernel (cheap, once per run);
//   - the fast-ranking CRR path (hybrid kernel + adaptive waves) must keep a
//     set of edges that overlaps the classic full-ranking CRR at least as
//     well as classic CRR overlaps a reseeded rerun of itself (the
//     self-overlap ceiling, same pattern as bench_dist_fleet), minus a small
//     noise margin.
//
// Usage:
//   bench_perf_suite [--out=BENCH_hotpath.json] [--repeats=5] [--smoke]
//                    [--rev=<git sha>] [--p=0.5]
//
// --smoke shrinks the graphs so the whole suite finishes in seconds (CI);
// --rev defaults to $EDGESHED_GIT_REV, then "unknown".

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "analytics/betweenness.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "eval/flags.h"
#include "graph/edge_list_io.h"
#include "graph/generators/generators.h"
#include "graph/graph_builder.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace edgeshed::bench {
namespace {

struct BenchResult {
  std::string graph;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  std::string op;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  /// Adaptive-wave count for ranking ops; -1 means not applicable.
  int64_t waves = -1;
};

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

BenchResult MakeResult(const std::string& graph_name, const graph::Graph& g,
                       const std::string& op,
                       const std::vector<double>& samples) {
  BenchResult result;
  result.graph = graph_name;
  result.nodes = g.NumNodes();
  result.edges = g.NumEdges();
  result.op = op;
  result.median_seconds = Median(samples);
  result.min_seconds = *std::min_element(samples.begin(), samples.end());
  result.max_seconds = *std::max_element(samples.begin(), samples.end());
  std::printf("  %-24s %-24s median=%.4fs min=%.4fs max=%.4fs\n",
              graph_name.c_str(), op.c_str(), result.median_seconds,
              result.min_seconds, result.max_seconds);
  return result;
}

/// Times `body` `repeats` times (after one untimed warm-up) and records
/// median/min/max under `op`. Returns a reference to the recorded result so
/// callers can annotate it (wave counts).
template <typename Body>
BenchResult& TimeOp(const std::string& graph_name, const graph::Graph& g,
                    const std::string& op, int repeats, Body&& body,
                    std::vector<BenchResult>* results) {
  body();  // warm-up, untimed
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    body();
    samples.push_back(watch.ElapsedSeconds());
  }
  results->push_back(MakeResult(graph_name, g, op, samples));
  return results->back();
}

/// Times an overhead pair by interleaving the two bodies within each round:
/// base, instrumented, base, instrumented. Any monotone environmental drift
/// across the run is shared by both series, so the pair's ratio reflects the
/// instrumentation cost rather than which series happened to run second.
template <typename BaseBody, typename InstrumentedBody>
void TimeOpPair(const std::string& graph_name, const graph::Graph& g,
                const std::string& base_op, const std::string& instrumented_op,
                int repeats, BaseBody&& base, InstrumentedBody&& instrumented,
                std::vector<BenchResult>* results) {
  base();          // warm-up, untimed
  instrumented();  // warm-up, untimed
  std::vector<double> base_samples;
  std::vector<double> instrumented_samples;
  base_samples.reserve(static_cast<size_t>(repeats));
  instrumented_samples.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    {
      Stopwatch watch;
      base();
      base_samples.push_back(watch.ElapsedSeconds());
    }
    {
      Stopwatch watch;
      instrumented();
      instrumented_samples.push_back(watch.ElapsedSeconds());
    }
  }
  results->push_back(MakeResult(graph_name, g, base_op, base_samples));
  results->push_back(
      MakeResult(graph_name, g, instrumented_op, instrumented_samples));
}

/// Raw (shuffled, un-canonicalized) edge soup for the CSR-build benchmark,
/// so GraphBuilder::Build sees realistic messy input.
std::vector<graph::Edge> ShuffledRawEdges(const graph::Graph& g,
                                          uint64_t seed) {
  std::vector<graph::Edge> raw(g.edges().begin(), g.edges().end());
  Rng rng(seed);
  rng.Shuffle(&raw);
  for (size_t i = 0; i < raw.size(); i += 2) {
    std::swap(raw[i].u, raw[i].v);  // exercise canonicalization
  }
  return raw;
}

/// |a ∩ b| / |a| over kept-edge id sets.
double KeptOverlap(const std::vector<graph::EdgeId>& a,
                   const std::vector<graph::EdgeId>& b) {
  if (a.empty()) return 1.0;
  std::unordered_set<graph::EdgeId> set_a(a.begin(), a.end());
  size_t hits = 0;
  for (graph::EdgeId e : b) hits += set_a.count(e);
  return static_cast<double>(hits) / static_cast<double>(a.size());
}

/// The sampling level both ranking ops and both e2e CRR variants share, so
/// classic-vs-hybrid and full-vs-fast comparisons are apples to apples.
analytics::BetweennessOptions BenchSampling() {
  analytics::BetweennessOptions options;
  options.exact_node_threshold = 1024;
  options.sample_sources = 96;
  return options;
}

void BenchGraph(const std::string& name, const graph::Graph& g, int repeats,
                double p, std::vector<BenchResult>* results) {
  std::printf("%s: %llu nodes, %llu edges\n", name.c_str(),
              static_cast<unsigned long long>(g.NumNodes()),
              static_cast<unsigned long long>(g.NumEdges()));

  // --- load_edge_list: full ingest (read + parse + remap + CSR build). ---
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                           "/edgeshed_bench_" + name + ".txt";
  Status save = graph::SaveEdgeList(g, path);
  EDGESHED_CHECK(save.ok()) << save.ToString();
  TimeOp(name, g, "load_edge_list", repeats,
         [&]() {
           auto loaded = graph::LoadEdgeList(path);
           EDGESHED_CHECK(loaded.ok()) << loaded.status().ToString();
           EDGESHED_CHECK_EQ(loaded->graph.NumEdges(), g.NumEdges());
         },
         results);
  std::remove(path.c_str());

  // --- csr_build: GraphBuilder::Build on shuffled raw edges. ---
  const std::vector<graph::Edge> raw = ShuffledRawEdges(g, /*seed=*/7);
  TimeOp(name, g, "csr_build", repeats,
         [&]() {
           graph::GraphBuilder builder;
           builder.ReserveEdges(raw.size());
           for (const graph::Edge& e : raw) builder.AddEdge(e.u, e.v);
           graph::Graph built = builder.Build();
           EDGESHED_CHECK_EQ(built.NumEdges(), g.NumEdges());
         },
         results);

  // --- betweenness_rank: classic single-pass Brandes over every sampled
  // source + full edge ranking sort. The historical baseline series. ---
  analytics::BetweennessOptions classic = BenchSampling();
  classic.kernel = analytics::BetweennessOptions::Kernel::kClassic;
  TimeOp(name, g, "betweenness_rank", repeats,
         [&]() {
           auto ranked = analytics::EdgesByBetweennessDescending(g, classic);
           EDGESHED_CHECK_EQ(ranked.size(), g.NumEdges());
         },
         results);

  // --- betweenness_rank_hybrid: the ranking fast path — direction-
  // optimizing kernel plus adaptive pivot waves — at the same sampling
  // level. CI pairs this against betweenness_rank so the fast path can
  // never silently regress past the classic kernel. ---
  analytics::BetweennessOptions fast = BenchSampling();
  const analytics::BetweennessOptions fast_defaults =
      analytics::BetweennessOptions::FastRanking();
  fast.kernel = fast_defaults.kernel;
  fast.hybrid_alpha = fast_defaults.hybrid_alpha;
  fast.wave_size = fast_defaults.wave_size;
  fast.wave_stability = fast_defaults.wave_stability;
  fast.wave_top_k = fast_defaults.wave_top_k;
  uint64_t hybrid_waves = 0;
  BenchResult& hybrid_result =
      TimeOp(name, g, "betweenness_rank_hybrid", repeats,
             [&]() {
               analytics::BetweennessScores scores =
                   analytics::Betweenness(g, fast);
               EDGESHED_CHECK_EQ(scores.edge.size(), g.NumEdges());
               hybrid_waves = scores.waves;
             },
             results);
  hybrid_result.waves = static_cast<int64_t>(hybrid_waves);

  // --- crr_reduce / crr_reduce_traced: random init isolates the Phase-2
  // swap loop (ranking is timed separately above). The traced variant wraps
  // the same reduction in a live Tracer span and typed-metrics recording,
  // mirroring what the service layer (JobScheduler) adds per job; the pair
  // feeds tools/compare_bench.py --overhead-pair. Interleaved so drift does
  // not invert the comparison. ---
  core::CrrOptions crr_options;
  crr_options.init_mode = core::CrrOptions::InitMode::kRandom;
  crr_options.seed = 42;
  const core::Crr crr(crr_options);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::Counter* traced_jobs = metrics.GetCounter("bench.jobs");
  obs::LatencySeries* traced_seconds = metrics.GetLatency("bench.run_seconds");
  TimeOpPair(name, g, "crr_reduce", "crr_reduce_traced", repeats,
             [&]() {
               auto result = crr.Reduce(g, p);
               EDGESHED_CHECK(result.ok()) << result.status().ToString();
             },
             [&]() {
               obs::Span span = obs::Tracer::StartSpan(&tracer, "run");
               span.Annotate("graph", name);
               auto result = crr.Reduce(g, p);
               EDGESHED_CHECK(result.ok()) << result.status().ToString();
               span.Annotate("ok", "true");
               span.End();
               traced_seconds->Record(result->reduction_seconds);
               traced_jobs->Increment();
             },
             results);

  // --- crr_reduce_e2e: the full reduction a service job pays on a rank-
  // cache miss — Phase-1 betweenness ranking (fast path) plus the Phase-2
  // swap loop. This is the series the ISSUE-7 >5x gate reads. ---
  core::CrrOptions e2e_options;
  e2e_options.seed = 42;
  e2e_options.betweenness = fast;
  const core::Crr crr_e2e(e2e_options);
  std::vector<graph::EdgeId> fast_kept;
  TimeOp(name, g, "crr_reduce_e2e", repeats,
         [&]() {
           auto result = crr_e2e.Reduce(g, p);
           EDGESHED_CHECK(result.ok()) << result.status().ToString();
           fast_kept = std::move(result->kept_edges);
         },
         results);

  // --- bm2_reduce. ---
  const core::Bm2 bm2;
  TimeOp(name, g, "bm2_reduce", repeats,
         [&]() {
           auto result = bm2.Reduce(g, p);
           EDGESHED_CHECK(result.ok()) << result.status().ToString();
         },
         results);

  // --- Preservation-quality gate for the fast path (not a timed series).
  // Classic full-ranking CRR is the reference; a reseeded classic run gives
  // the self-overlap ceiling — CRR's own seed sensitivity. The fast path
  // must overlap the reference at least that well, minus a noise margin. ---
  core::CrrOptions reference_options;
  reference_options.seed = 42;
  reference_options.betweenness = classic;
  auto reference = core::Crr(reference_options).Reduce(g, p);
  EDGESHED_CHECK(reference.ok()) << reference.status().ToString();
  core::CrrOptions reseeded_options = reference_options;
  reseeded_options.seed = 43;
  auto reseeded = core::Crr(reseeded_options).Reduce(g, p);
  EDGESHED_CHECK(reseeded.ok()) << reseeded.status().ToString();
  const double ceiling =
      KeptOverlap(reference->kept_edges, reseeded->kept_edges);
  const double fast_overlap = KeptOverlap(reference->kept_edges, fast_kept);
  std::printf("  %-24s kept-overlap fast=%.4f ceiling=%.4f\n", name.c_str(),
              fast_overlap, ceiling);
  EDGESHED_CHECK_GE(fast_overlap, ceiling - 0.05)
      << "fast-ranking CRR lost preservation quality on " << name;
}

/// The hybrid kernel promises bit-identical scores to the classic kernel;
/// a score drift would silently change every ranking the fast path emits,
/// so the suite re-verifies the contract on every run.
void CheckHybridMatchesClassic() {
  Rng rng(11);
  graph::Graph g = graph::BarabasiAlbert(600, 4, rng);
  analytics::BetweennessOptions classic = analytics::BetweennessOptions::Exact();
  classic.kernel = analytics::BetweennessOptions::Kernel::kClassic;
  analytics::BetweennessOptions hybrid = classic;
  hybrid.kernel = analytics::BetweennessOptions::Kernel::kHybrid;
  const analytics::BetweennessScores a = analytics::Betweenness(g, classic);
  const analytics::BetweennessScores b = analytics::Betweenness(g, hybrid);
  for (size_t i = 0; i < a.node.size(); ++i) {
    EDGESHED_CHECK(a.node[i] == b.node[i]) << "node score drift at " << i;
  }
  for (size_t i = 0; i < a.edge.size(); ++i) {
    EDGESHED_CHECK(a.edge[i] == b.edge[i]) << "edge score drift at " << i;
  }
  std::printf("hybrid kernel bit-identical to classic on BA(600,4)\n");
}

void WriteJson(const std::string& path, const std::string& rev, int repeats,
               const std::vector<BenchResult>& results) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  EDGESHED_CHECK(out != nullptr) << "cannot write " << path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"edgeshed-bench-hotpath-v1\",\n");
  std::fprintf(out, "  \"git_rev\": \"%s\",\n", rev.c_str());
  std::fprintf(out, "  \"threads\": %d,\n", DefaultThreadCount());
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"graph\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
                 "\"op\": \"%s\", \"median_seconds\": %.6f, "
                 "\"min_seconds\": %.6f, \"max_seconds\": %.6f",
                 r.graph.c_str(), static_cast<unsigned long long>(r.nodes),
                 static_cast<unsigned long long>(r.edges), r.op.c_str(),
                 r.median_seconds, r.min_seconds, r.max_seconds);
    if (r.waves >= 0) {
      std::fprintf(out, ", \"waves\": %lld",
                   static_cast<long long>(r.waves));
    }
    std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu series, threads=%d, rev=%s)\n", path.c_str(),
              results.size(), DefaultThreadCount(), rev.c_str());
}

int Main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_hotpath.json");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const bool smoke = flags.GetBool("smoke", false);
  const double p = flags.GetDouble("p", 0.5);
  const char* rev_env = std::getenv("EDGESHED_GIT_REV");
  const std::string rev =
      flags.GetString("rev", rev_env != nullptr ? rev_env : "unknown");

  std::printf("edgeshed hot-path perf suite: threads=%d repeats=%d%s\n",
              DefaultThreadCount(), repeats, smoke ? " (smoke)" : "");

  CheckHybridMatchesClassic();

  // Two families, two sizes each; smoke shrinks everything so CI stays in
  // seconds. R-MAT stands in for skewed social graphs, BA for heavy-tailed
  // collaboration networks (DESIGN.md §3).
  std::vector<BenchResult> results;
  {
    Rng rng(1);
    graph::Graph g = smoke ? graph::RMat(10, 8, 0.57, 0.19, 0.19, rng)
                           : graph::RMat(13, 16, 0.57, 0.19, 0.19, rng);
    BenchGraph(smoke ? "rmat_s10" : "rmat_s13", g, repeats, p, &results);
  }
  {
    Rng rng(2);
    graph::Graph g = smoke ? graph::RMat(12, 8, 0.57, 0.19, 0.19, rng)
                           : graph::RMat(15, 16, 0.57, 0.19, 0.19, rng);
    BenchGraph(smoke ? "rmat_s12" : "rmat_s15", g, repeats, p, &results);
  }
  {
    Rng rng(3);
    graph::Graph g = smoke ? graph::BarabasiAlbert(4000, 6, rng)
                           : graph::BarabasiAlbert(20000, 8, rng);
    BenchGraph(smoke ? "ba_4k" : "ba_20k", g, repeats, p, &results);
  }
  {
    Rng rng(4);
    graph::Graph g = smoke ? graph::BarabasiAlbert(12000, 6, rng)
                           : graph::BarabasiAlbert(80000, 8, rng);
    BenchGraph(smoke ? "ba_12k" : "ba_80k", g, repeats, p, &results);
  }

  WriteJson(out, rev, repeats, results);
  return 0;
}

}  // namespace
}  // namespace edgeshed::bench

int main(int argc, char** argv) { return edgeshed::bench::Main(argc, argv); }
