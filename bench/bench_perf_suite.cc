// Hot-path performance-regression suite (ISSUE 2).
//
// Times the ingest-to-shed pipeline stages — edge-list load, CSR build,
// betweenness ranking, CRR and BM2 reduction — on generated R-MAT and
// Barabási–Albert graphs at two sizes, and emits machine-readable medians to
// BENCH_hotpath.json. tools/compare_bench.py diffs two such files and flags
// >10% regressions; .github/workflows/ci.yml runs the --smoke variant on
// every push.
//
// Usage:
//   bench_perf_suite [--out=BENCH_hotpath.json] [--repeats=5] [--smoke]
//                    [--rev=<git sha>] [--p=0.5]
//
// --smoke shrinks the graphs so the whole suite finishes in seconds (CI);
// --rev defaults to $EDGESHED_GIT_REV, then "unknown".

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analytics/betweenness.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "eval/flags.h"
#include "graph/edge_list_io.h"
#include "graph/generators/generators.h"
#include "graph/graph_builder.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace edgeshed::bench {
namespace {

struct BenchResult {
  std::string graph;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  std::string op;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/// Times `body` `repeats` times and records median/min/max under `op`.
template <typename Body>
void TimeOp(const std::string& graph_name, const graph::Graph& g,
            const std::string& op, int repeats, Body&& body,
            std::vector<BenchResult>* results) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    body();
    samples.push_back(watch.ElapsedSeconds());
  }
  BenchResult result;
  result.graph = graph_name;
  result.nodes = g.NumNodes();
  result.edges = g.NumEdges();
  result.op = op;
  result.median_seconds = Median(samples);
  result.min_seconds = *std::min_element(samples.begin(), samples.end());
  result.max_seconds = *std::max_element(samples.begin(), samples.end());
  results->push_back(result);
  std::printf("  %-24s %-20s median=%.4fs min=%.4fs max=%.4fs\n",
              graph_name.c_str(), op.c_str(), result.median_seconds,
              result.min_seconds, result.max_seconds);
}

/// Raw (shuffled, un-canonicalized) edge soup for the CSR-build benchmark,
/// so GraphBuilder::Build sees realistic messy input.
std::vector<graph::Edge> ShuffledRawEdges(const graph::Graph& g,
                                          uint64_t seed) {
  std::vector<graph::Edge> raw = g.edges();
  Rng rng(seed);
  rng.Shuffle(&raw);
  for (size_t i = 0; i < raw.size(); i += 2) {
    std::swap(raw[i].u, raw[i].v);  // exercise canonicalization
  }
  return raw;
}

void BenchGraph(const std::string& name, const graph::Graph& g, int repeats,
                double p, std::vector<BenchResult>* results) {
  std::printf("%s: %llu nodes, %llu edges\n", name.c_str(),
              static_cast<unsigned long long>(g.NumNodes()),
              static_cast<unsigned long long>(g.NumEdges()));

  // --- load_edge_list: full ingest (read + parse + remap + CSR build). ---
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                           "/edgeshed_bench_" + name + ".txt";
  Status save = graph::SaveEdgeList(g, path);
  EDGESHED_CHECK(save.ok()) << save.ToString();
  TimeOp(name, g, "load_edge_list", repeats,
         [&]() {
           auto loaded = graph::LoadEdgeList(path);
           EDGESHED_CHECK(loaded.ok()) << loaded.status().ToString();
           EDGESHED_CHECK_EQ(loaded->graph.NumEdges(), g.NumEdges());
         },
         results);
  std::remove(path.c_str());

  // --- csr_build: GraphBuilder::Build on shuffled raw edges. ---
  const std::vector<graph::Edge> raw = ShuffledRawEdges(g, /*seed=*/7);
  TimeOp(name, g, "csr_build", repeats,
         [&]() {
           graph::GraphBuilder builder;
           builder.ReserveEdges(raw.size());
           for (const graph::Edge& e : raw) builder.AddEdge(e.u, e.v);
           graph::Graph built = builder.Build();
           EDGESHED_CHECK_EQ(built.NumEdges(), g.NumEdges());
         },
         results);

  // --- betweenness_rank: sampled Brandes + full edge ranking sort. ---
  analytics::BetweennessOptions betweenness;
  betweenness.exact_node_threshold = 1024;
  betweenness.sample_sources = 96;
  TimeOp(name, g, "betweenness_rank", repeats,
         [&]() {
           auto ranked = analytics::EdgesByBetweennessDescending(g, betweenness);
           EDGESHED_CHECK_EQ(ranked.size(), g.NumEdges());
         },
         results);

  // --- crr_reduce: random init isolates the Phase-2 swap loop (betweenness
  // is timed separately above). ---
  core::CrrOptions crr_options;
  crr_options.init_mode = core::CrrOptions::InitMode::kRandom;
  crr_options.seed = 42;
  const core::Crr crr(crr_options);
  TimeOp(name, g, "crr_reduce", repeats,
         [&]() {
           auto result = crr.Reduce(g, p);
           EDGESHED_CHECK(result.ok()) << result.status().ToString();
         },
         results);

  // --- crr_reduce_traced: the same reduction with a live Tracer span and
  // typed-metrics recording wrapped around it, mirroring what the service
  // layer (JobScheduler) adds per job. The (crr_reduce, crr_reduce_traced)
  // pair feeds tools/compare_bench.py --overhead-pair, which gates the
  // observability overhead the same way cross-revision diffs are gated. ---
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::Counter* traced_jobs = metrics.GetCounter("bench.jobs");
  obs::LatencySeries* traced_seconds = metrics.GetLatency("bench.run_seconds");
  TimeOp(name, g, "crr_reduce_traced", repeats,
         [&]() {
           obs::Span span = obs::Tracer::StartSpan(&tracer, "run");
           span.Annotate("graph", name);
           auto result = crr.Reduce(g, p);
           EDGESHED_CHECK(result.ok()) << result.status().ToString();
           span.Annotate("ok", "true");
           span.End();
           traced_seconds->Record(result->reduction_seconds);
           traced_jobs->Increment();
         },
         results);

  // --- bm2_reduce. ---
  const core::Bm2 bm2;
  TimeOp(name, g, "bm2_reduce", repeats,
         [&]() {
           auto result = bm2.Reduce(g, p);
           EDGESHED_CHECK(result.ok()) << result.status().ToString();
         },
         results);
}

void WriteJson(const std::string& path, const std::string& rev, int repeats,
               const std::vector<BenchResult>& results) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  EDGESHED_CHECK(out != nullptr) << "cannot write " << path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"edgeshed-bench-hotpath-v1\",\n");
  std::fprintf(out, "  \"git_rev\": \"%s\",\n", rev.c_str());
  std::fprintf(out, "  \"threads\": %d,\n", DefaultThreadCount());
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"graph\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
                 "\"op\": \"%s\", \"median_seconds\": %.6f, "
                 "\"min_seconds\": %.6f, \"max_seconds\": %.6f}%s\n",
                 r.graph.c_str(), static_cast<unsigned long long>(r.nodes),
                 static_cast<unsigned long long>(r.edges), r.op.c_str(),
                 r.median_seconds, r.min_seconds, r.max_seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu series, threads=%d, rev=%s)\n", path.c_str(),
              results.size(), DefaultThreadCount(), rev.c_str());
}

int Main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_hotpath.json");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const bool smoke = flags.GetBool("smoke", false);
  const double p = flags.GetDouble("p", 0.5);
  const char* rev_env = std::getenv("EDGESHED_GIT_REV");
  const std::string rev =
      flags.GetString("rev", rev_env != nullptr ? rev_env : "unknown");

  std::printf("edgeshed hot-path perf suite: threads=%d repeats=%d%s\n",
              DefaultThreadCount(), repeats, smoke ? " (smoke)" : "");

  // Two families, two sizes each; smoke shrinks everything so CI stays in
  // seconds. R-MAT stands in for skewed social graphs, BA for heavy-tailed
  // collaboration networks (DESIGN.md §3).
  std::vector<BenchResult> results;
  {
    Rng rng(1);
    graph::Graph g = smoke ? graph::RMat(10, 8, 0.57, 0.19, 0.19, rng)
                           : graph::RMat(13, 16, 0.57, 0.19, 0.19, rng);
    BenchGraph(smoke ? "rmat_s10" : "rmat_s13", g, repeats, p, &results);
  }
  {
    Rng rng(2);
    graph::Graph g = smoke ? graph::RMat(12, 8, 0.57, 0.19, 0.19, rng)
                           : graph::RMat(15, 16, 0.57, 0.19, 0.19, rng);
    BenchGraph(smoke ? "rmat_s12" : "rmat_s15", g, repeats, p, &results);
  }
  {
    Rng rng(3);
    graph::Graph g = smoke ? graph::BarabasiAlbert(4000, 6, rng)
                           : graph::BarabasiAlbert(20000, 8, rng);
    BenchGraph(smoke ? "ba_4k" : "ba_20k", g, repeats, p, &results);
  }
  {
    Rng rng(4);
    graph::Graph g = smoke ? graph::BarabasiAlbert(12000, 6, rng)
                           : graph::BarabasiAlbert(80000, 8, rng);
    BenchGraph(smoke ? "ba_12k" : "ba_80k", g, repeats, p, &results);
  }

  WriteJson(out, rev, repeats, results);
  return 0;
}

}  // namespace
}  // namespace edgeshed::bench

int main(int argc, char** argv) { return edgeshed::bench::Main(argc, argv); }
