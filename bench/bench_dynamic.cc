// Dynamic-graph benchmark: incremental re-shedding vs cold shedding
// (ISSUE 10, DESIGN.md §15).
//
// One Barabási–Albert graph (n=40,000 m=8; --smoke shrinks to n=8,000) is
// shed cold, then mutated at rates {0.1%, 1%, 5%} of |E| per batch (half
// deletes of live edges, half inserts of fresh pairs) with an incremental
// ShedSession re-shed after every batch. Emits median latencies for the
// pristine-base cold shed, ApplyBatch, the incremental re-shed, and a cold
// shed of the mutated version (the speedup baseline — it pays overlay
// materialization exactly as a from-scratch job would) into
// BENCH_dynamic.json (schema edgeshed-bench-dynamic-v1, diffed by
// tools/compare_bench.py like the other suites). --verbose additionally
// dumps the last re-shed's per-stage timing stats for each rate.
//
// Quality is reported as kept-set overlap: the incremental kept set vs a
// cold shed of the same mutated graph, against the self-overlap ceiling —
// two cold sheds of that graph differing only in swap seed (42 vs 43). The
// ceiling is the intrinsic noise floor of the phase-2 swap chain; an
// incremental result "inside the ceiling" is as close to the cold answer
// as another cold run would be.
//
// Three in-process gates enforce the ISSUE-10 acceptance bars on every run:
//   - at the 1% rate the incremental re-shed must be >= 10x faster than a
//     cold shed of the same mutated version (medians over --repeats) and
//     must actually take the incremental path (no full-rank fallback);
//   - at the 1% rate the incremental-vs-cold overlap must sit inside the
//     self-overlap ceiling (>= ceiling - 0.02 slack);
//   - compacting the mutated history must produce a base CSR bit-identical
//     to Graph::FromEdges over the live edge list (offsets, adjacency, and
//     incident arrays compared element-wise).
// The 5% rate is expected to cross full_rank_dirty_bound and fall back to
// a full ranking pass — that row documents the escape hatch, not a gate.
//
// Usage:
//   bench_dynamic [--out=BENCH_dynamic.json] [--repeats=5] [--smoke]
//                 [--verbose] [--rev=<git sha>]
//
// --rev defaults to $EDGESHED_GIT_REV, then "unknown".

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "dyn/incremental_shed.h"
#include "dyn/versioned_graph.h"
#include "eval/flags.h"
#include "graph/generators/generators.h"
#include "graph/graph.h"
#include "graph/mutation_io.h"

namespace edgeshed::bench {
namespace {

double Median(std::vector<double> values) {
  EDGESHED_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

uint64_t PackedKey(graph::NodeId u, graph::NodeId v) {
  return (static_cast<uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
}

/// One batch of `count` mutations against `snap`: floor(count/2) deletes of
/// distinct live edges, the rest inserts of distinct non-live pairs. Net
/// edge count stays within one edge of |E|, so the round(p·E) budget is
/// stable across batches.
graph::MutationBatch MakeBatch(const dyn::DeltaGraph& snap, uint64_t count,
                               Rng* rng) {
  graph::MutationBatch batch;
  const std::vector<graph::Edge> live = snap.LiveEdges();
  const auto n = static_cast<graph::NodeId>(snap.NumNodes());
  std::unordered_set<uint64_t> used;
  const uint64_t deletes = count / 2;
  while (batch.deletes.size() < deletes) {
    const graph::Edge& e = live[rng->UniformIndex(live.size())];
    if (used.insert(PackedKey(e.u, e.v)).second) batch.deletes.push_back(e);
  }
  while (batch.inserts.size() + batch.deletes.size() < count) {
    const auto u = static_cast<graph::NodeId>(rng->UniformIndex(n));
    const auto v = static_cast<graph::NodeId>(rng->UniformIndex(n));
    if (u == v) continue;
    const graph::NodeId lo = std::min(u, v);
    const graph::NodeId hi = std::max(u, v);
    if (snap.HasEdge(lo, hi)) continue;
    if (!used.insert(PackedKey(lo, hi)).second) continue;
    batch.inserts.push_back({lo, hi});
  }
  return batch;
}

/// |a ∩ b| / min(|a|, |b|); both sides here carry the same round(p·E)
/// budget, so the denominator choice is cosmetic.
double Overlap(const std::vector<graph::Edge>& a,
               const std::vector<graph::Edge>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_set<uint64_t> keys;
  keys.reserve(a.size());
  for (const graph::Edge& e : a) keys.insert(PackedKey(e.u, e.v));
  uint64_t shared = 0;
  for (const graph::Edge& e : b) shared += keys.count(PackedKey(e.u, e.v));
  return static_cast<double>(shared) /
         static_cast<double>(std::min(a.size(), b.size()));
}

struct BenchResult {
  std::string graph;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  std::string op;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

BenchResult MakeResult(const std::string& graph_name, uint64_t nodes,
                       uint64_t edges, const std::string& op,
                       std::vector<double> seconds) {
  BenchResult result;
  result.graph = graph_name;
  result.nodes = nodes;
  result.edges = edges;
  result.op = op;
  result.median_seconds = Median(seconds);
  result.min_seconds = *std::min_element(seconds.begin(), seconds.end());
  result.max_seconds = *std::max_element(seconds.begin(), seconds.end());
  std::printf("  %-12s %-28s median=%.4fs min=%.4fs max=%.4fs\n",
              graph_name.c_str(), op.c_str(), result.median_seconds,
              result.min_seconds, result.max_seconds);
  return result;
}

struct RateReport {
  double rate = 0.0;
  uint64_t mutations_per_batch = 0;
  bool full_rank = false;  // any re-shed at this rate fell back to full
  double overlap_incremental = 0.0;
  double overlap_self = 0.0;
  double avg_delta_incremental = 0.0;
  double avg_delta_cold = 0.0;
};

std::string RateOp(const char* what, double rate) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s_%.4gpct", what, rate * 100.0);
  return buffer;
}

void WriteJson(const std::string& path, const std::string& rev, int repeats,
               const std::vector<BenchResult>& results,
               const std::vector<RateReport>& reports, double speedup_1pct,
               bool compaction_identical) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  EDGESHED_CHECK(out != nullptr) << "cannot write " << path;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"edgeshed-bench-dynamic-v1\",\n");
  std::fprintf(out, "  \"git_rev\": \"%s\",\n", rev.c_str());
  std::fprintf(out, "  \"threads\": %d,\n", DefaultThreadCount());
  std::fprintf(out, "  \"repeats\": %d,\n", repeats);
  std::fprintf(out, "  \"speedup_at_1pct\": %.2f,\n", speedup_1pct);
  std::fprintf(out, "  \"compaction_identical\": %s,\n",
               compaction_identical ? "true" : "false");
  std::fprintf(out, "  \"rates\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const RateReport& r = reports[i];
    std::fprintf(out,
                 "    {\"rate\": %.4f, \"mutations_per_batch\": %llu, "
                 "\"full_rank\": %s, \"overlap_incremental\": %.4f, "
                 "\"overlap_self\": %.4f, \"avg_delta_incremental\": %.4f, "
                 "\"avg_delta_cold\": %.4f}%s\n",
                 r.rate,
                 static_cast<unsigned long long>(r.mutations_per_batch),
                 r.full_rank ? "true" : "false", r.overlap_incremental,
                 r.overlap_self, r.avg_delta_incremental, r.avg_delta_cold,
                 i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"graph\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
                 "\"op\": \"%s\", \"median_seconds\": %.6f, "
                 "\"min_seconds\": %.6f, \"max_seconds\": %.6f}%s\n",
                 r.graph.c_str(), static_cast<unsigned long long>(r.nodes),
                 static_cast<unsigned long long>(r.edges), r.op.c_str(),
                 r.median_seconds, r.min_seconds, r.max_seconds,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu series, threads=%d, rev=%s)\n", path.c_str(),
              results.size(), DefaultThreadCount(), rev.c_str());
}

int Main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_dynamic.json");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const bool smoke = flags.GetBool("smoke", false);
  const bool verbose = flags.GetBool("verbose", false);
  const char* rev_env = std::getenv("EDGESHED_GIT_REV");
  const std::string rev =
      flags.GetString("rev", rev_env != nullptr ? rev_env : "unknown");
  EDGESHED_CHECK(repeats > 0);

  const graph::NodeId n = smoke ? 8000 : 40000;
  const std::string graph_name = smoke ? "ba_8k" : "ba_40k";
  std::printf("edgeshed dynamic suite: threads=%d repeats=%d%s\n",
              DefaultThreadCount(), repeats, smoke ? " (smoke)" : "");

  Rng gen_rng(9);
  auto base = std::make_shared<const graph::Graph>(
      graph::BarabasiAlbert(n, 8, gen_rng));
  const uint64_t edges = base->NumEdges();
  std::printf("%s: %s nodes, %s edges\n", graph_name.c_str(),
              FormatWithCommas(base->NumNodes()).c_str(),
              FormatWithCommas(edges).c_str());

  // Auto-compaction stays off so re-shed medians measure the session, not
  // a concurrently running compactor; compaction is timed explicitly below.
  dyn::VersionedGraphOptions vg_options;
  vg_options.auto_compact = false;
  dyn::DynamicShedOptions shed_options;
  shed_options.p = 0.5;
  shed_options.seed = 42;

  std::vector<BenchResult> results;

  // Cold shed: a fresh session over the pristine base each repeat.
  std::vector<double> cold_seconds;
  for (int r = 0; r < repeats; ++r) {
    auto vg = std::make_shared<dyn::VersionedGraph>(base, vg_options);
    dyn::ShedSession session(vg, shed_options);
    Stopwatch watch;
    auto cold = session.Reshed();
    EDGESHED_CHECK(cold.ok()) << cold.status().ToString();
    cold_seconds.push_back(watch.ElapsedSeconds());
  }
  results.push_back(
      MakeResult(graph_name, n, edges, "cold_shed", cold_seconds));
  const double cold_median = results.back().median_seconds;

  const double kRates[] = {0.001, 0.01, 0.05};
  std::vector<RateReport> reports;
  double incremental_median_1pct = 0.0;
  double cold_median_1pct = 0.0;
  bool compaction_identical = false;
  for (const double rate : kRates) {
    RateReport report;
    report.rate = rate;
    report.mutations_per_batch = std::max<uint64_t>(
        2, static_cast<uint64_t>(std::llround(rate * static_cast<double>(
                                                         edges))));

    auto vg = std::make_shared<dyn::VersionedGraph>(base, vg_options);
    dyn::ShedSession session(vg, shed_options);
    auto cold = session.Reshed();
    EDGESHED_CHECK(cold.ok()) << cold.status().ToString();

    Rng mutation_rng(static_cast<uint64_t>(rate * 1e6) + 11);
    std::vector<double> apply_seconds;
    std::vector<double> reshed_seconds;
    dyn::DynamicShedResult last;
    for (int r = 0; r < repeats; ++r) {
      graph::MutationBatch batch = MakeBatch(
          *vg->Snapshot(), report.mutations_per_batch, &mutation_rng);
      Stopwatch apply_watch;
      auto version = vg->ApplyBatch(std::move(batch));
      EDGESHED_CHECK(version.ok()) << version.status().ToString();
      apply_seconds.push_back(apply_watch.ElapsedSeconds());
      Stopwatch reshed_watch;
      auto reshed = session.Reshed();
      EDGESHED_CHECK(reshed.ok()) << reshed.status().ToString();
      reshed_seconds.push_back(reshed_watch.ElapsedSeconds());
      report.full_rank = report.full_rank || reshed->full_rank;
      last = *std::move(reshed);
    }
    if (verbose) {
      std::printf("  %-12s stats at rate=%.2f%%:", graph_name.c_str(),
                  rate * 100.0);
      for (const auto& [name, value] : last.stats) {
        std::printf(" %s=%.4f", name.c_str(), value);
      }
      std::printf("\n");
    }
    results.push_back(MakeResult(graph_name, n, edges,
                                 RateOp("apply_batch", rate), apply_seconds));
    results.push_back(MakeResult(graph_name, n, edges,
                                 RateOp("incremental_reshed", rate),
                                 reshed_seconds));
    const double reshed_median = results.back().median_seconds;

    // Cold baseline and quality at the final version: a fresh session over
    // the mutated graph pays what a from-scratch job pays at this exact
    // version — overlay materialization included — which is the honest
    // denominator for the speedup gate (the pristine-base cold_shed series
    // above shows the overlay-free cost for comparison). The session-seed
    // runs double as the overlap yardstick; a perturbed seed gives the
    // self-overlap ceiling it is judged against.
    std::vector<double> rate_cold_seconds;
    dyn::DynamicShedResult kept_42;
    for (int r = 0; r < repeats; ++r) {
      dyn::ShedSession cold_42(vg, shed_options);
      Stopwatch cold_watch;
      auto kept = cold_42.Reshed();
      EDGESHED_CHECK(kept.ok()) << kept.status().ToString();
      rate_cold_seconds.push_back(cold_watch.ElapsedSeconds());
      kept_42 = *std::move(kept);
    }
    results.push_back(MakeResult(graph_name, n, edges,
                                 RateOp("cold_shed", rate),
                                 rate_cold_seconds));
    const double rate_cold_median = results.back().median_seconds;
    dyn::DynamicShedOptions perturbed = shed_options;
    perturbed.seed = 43;
    dyn::ShedSession cold_43(vg, perturbed);
    auto kept_43 = cold_43.Reshed();
    EDGESHED_CHECK(kept_43.ok()) << kept_43.status().ToString();
    report.overlap_incremental = Overlap(last.kept, kept_42.kept);
    report.overlap_self = Overlap(kept_42.kept, kept_43->kept);
    report.avg_delta_incremental = last.average_delta;
    report.avg_delta_cold = kept_42.average_delta;
    std::printf(
        "  %-12s rate=%.2f%% mutations=%llu full_rank=%d "
        "overlap=%.4f ceiling=%.4f avg_delta=%.4f cold=%.4f\n",
        graph_name.c_str(), rate * 100.0,
        static_cast<unsigned long long>(report.mutations_per_batch),
        report.full_rank ? 1 : 0, report.overlap_incremental,
        report.overlap_self, report.avg_delta_incremental,
        report.avg_delta_cold);
    reports.push_back(report);

    if (rate == 0.01) {
      incremental_median_1pct = reshed_median;
      cold_median_1pct = rate_cold_median;

      // Compaction byte-identity on this mutated history: the compacted
      // base CSR must match Graph::FromEdges over the live edge list.
      auto before = vg->Snapshot();
      auto scratch = graph::Graph::FromEdges(
          static_cast<graph::NodeId>(before->NumNodes()),
          before->LiveEdges());
      EDGESHED_CHECK(scratch.ok()) << scratch.status().ToString();
      Stopwatch compact_watch;
      Status compacted = vg->Compact();
      EDGESHED_CHECK(compacted.ok()) << compacted.ToString();
      results.push_back(MakeResult(graph_name, n, edges, "compact",
                                   {compact_watch.ElapsedSeconds()}));
      auto head = vg->Snapshot();
      EDGESHED_CHECK_EQ(head->OverlaySize(), 0u);
      const graph::Graph& compacted_base = *head->base();
      compaction_identical =
          compacted_base.RawOffsets().size() ==
              scratch->RawOffsets().size() &&
          std::equal(compacted_base.RawOffsets().begin(),
                     compacted_base.RawOffsets().end(),
                     scratch->RawOffsets().begin()) &&
          compacted_base.RawAdjacency().size() ==
              scratch->RawAdjacency().size() &&
          std::equal(compacted_base.RawAdjacency().begin(),
                     compacted_base.RawAdjacency().end(),
                     scratch->RawAdjacency().begin()) &&
          compacted_base.RawIncident().size() ==
              scratch->RawIncident().size() &&
          std::equal(compacted_base.RawIncident().begin(),
                     compacted_base.RawIncident().end(),
                     scratch->RawIncident().begin());
    }
  }

  // --- ISSUE-10 acceptance gates -----------------------------------------
  // Speedup compares like for like: the incremental re-shed against a cold
  // shed of the *same mutated version* (which pays overlay materialization,
  // exactly as a from-scratch job would).
  const double speedup =
      incremental_median_1pct > 0.0
          ? cold_median_1pct / incremental_median_1pct
          : 0.0;
  std::printf("gate: incremental speedup at 1%% = %.1fx (cold at version "
              "%.4fs, pristine %.4fs / incremental %.4fs)\n",
              speedup, cold_median_1pct, cold_median,
              incremental_median_1pct);
  EDGESHED_CHECK(speedup >= 10.0)
      << "incremental re-shed at 1% mutation rate must be >= 10x faster "
      << "than a cold shed of the same version, got " << speedup << "x";
  const RateReport& one_pct = reports[1];
  EDGESHED_CHECK(!one_pct.full_rank)
      << "1% mutation rate fell back to a full ranking pass";
  EDGESHED_CHECK(one_pct.overlap_incremental >= one_pct.overlap_self - 0.02)
      << "incremental kept-set overlap " << one_pct.overlap_incremental
      << " fell outside the self-overlap ceiling " << one_pct.overlap_self;
  EDGESHED_CHECK(compaction_identical)
      << "compacted base CSR differs from a from-scratch Graph::FromEdges "
      << "build of the live edge list";
  std::printf("gate: overlap %.4f vs ceiling %.4f, compaction identical\n",
              one_pct.overlap_incremental, one_pct.overlap_self);

  WriteJson(out, rev, repeats, results, reports, speedup,
            compaction_identical);
  return 0;
}

}  // namespace
}  // namespace edgeshed::bench

int main(int argc, char** argv) { return edgeshed::bench::Main(argc, argv); }
