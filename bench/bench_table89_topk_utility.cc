// Reproduces Tables VIII-IX: utility of Top-10% PageRank queries
// (|V_t% ∩ V'_t%| / k) for p in {0.9 ... 0.1} on all four datasets
// (UDS skipped on com-LiveJournal, as in the paper).
//
// Paper shape to reproduce: CRR leads on the small datasets (still ~0.3-0.5
// at p=0.1), BM2 second, UDS collapses below 0.2 by p=0.1; on the
// LiveJournal-scale graph both CRR and BM2 stay above 0.75 even at p=0.1.

#include "bench/bench_util.h"
#include "eval/metrics.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  const double t_percent = flags.GetDouble("t", 10.0);
  bench::PrintBenchHeader("Tables VIII-IX — utility of Top-10% queries",
                          config);

  struct Target {
    graph::DatasetId id;
    double scale;
    bool with_uds;
  };
  const Target targets[] = {
      {graph::DatasetId::kCaGrQc, 0.5, true},
      {graph::DatasetId::kCaHepPh, 0.1, true},
      {graph::DatasetId::kEmailEnron, 0.05, true},
      {graph::DatasetId::kComLiveJournal, 0.5, false},
  };
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);

  for (const Target& target : targets) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    std::printf("\n%s surrogate: %s nodes, %s edges\n", spec.name.c_str(),
                FormatWithCommas(g.NumNodes()).c_str(),
                FormatWithCommas(g.NumEdges()).c_str());

    TablePrinter table;
    table.SetHeader({"p", "UDS", "CRR", "BM2"});
    for (double p : eval::PaperPreservationRatios()) {
      std::string uds_cell = "-";
      if (target.with_uds) {
        auto summary = uds.Summarize(g, p);
        EDGESHED_CHECK(summary.ok());
        uds_cell =
            FormatDouble(eval::TopKUtilityForUds(g, *summary, t_percent), 3);
      }
      auto crr_result = crr.Reduce(g, p);
      auto bm2_result = bm2.Reduce(g, p);
      EDGESHED_CHECK(crr_result.ok());
      EDGESHED_CHECK(bm2_result.ok());
      table.AddRow(
          {FormatDouble(p, 1), uds_cell,
           FormatDouble(eval::TopKUtilityForReduced(
                            g, crr_result->BuildReducedGraph(g), t_percent),
                        3),
           FormatDouble(eval::TopKUtilityForReduced(
                            g, bm2_result->BuildReducedGraph(g), t_percent),
                        3)});
    }
    bench::PrintTableWithCsv(table);
  }
  std::printf("expected shape (paper Tables VIII-IX): CRR > BM2 > UDS with "
              "the gap widening as p shrinks; UDS below 0.2 by p=0.1 on "
              "small datasets; CRR/BM2 strong on the large graph.\n");
  return 0;
}
