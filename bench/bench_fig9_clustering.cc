// Reproduces Fig. 9: clustering coefficient versus vertex degree, original
// vs reduced graphs at p = 0.7 and p = 0.3.
//
// Paper shape to reproduce: at large p both methods approximate the
// original curve; at small p accuracy degrades but stays far ahead of UDS.

#include <map>

#include "bench/bench_util.h"
#include "analytics/clustering.h"

using namespace edgeshed;

namespace {

int64_t Bucket(uint64_t degree) {
  int64_t bucket = 0;
  while (degree > 1) {
    degree >>= 1;
    ++bucket;
  }
  return bucket;
}

std::map<int64_t, double> MeanClusteringByBucket(const graph::Graph& g) {
  auto coefficients = analytics::LocalClusteringCoefficients(g);
  std::map<int64_t, std::pair<double, uint64_t>> sums;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) < 2) continue;
    auto& [sum, count] = sums[Bucket(g.Degree(u))];
    sum += coefficients[u];
    ++count;
  }
  std::map<int64_t, double> means;
  for (const auto& [bucket, entry] : sums) {
    means[bucket] = entry.first / static_cast<double>(entry.second);
  }
  return means;
}

}  // namespace

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader("Fig. 9 — clustering coefficient vs vertex degree",
                          config);

  struct Target {
    graph::DatasetId id;
    double scale;
  };
  const Target targets[] = {
      {graph::DatasetId::kCaGrQc, 0.5},
      {graph::DatasetId::kCaHepPh, 0.1},
      {graph::DatasetId::kEmailEnron, 0.05},
  };
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);

  for (const Target& target : targets) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    auto original_mean = MeanClusteringByBucket(g);
    const double original_avg = analytics::AverageClusteringCoefficient(g);

    for (double p : {0.7, 0.3}) {
      auto crr_result = crr.Reduce(g, p);
      auto bm2_result = bm2.Reduce(g, p);
      auto uds_result = uds.Summarize(g, p);
      EDGESHED_CHECK(crr_result.ok());
      EDGESHED_CHECK(bm2_result.ok());
      EDGESHED_CHECK(uds_result.ok());
      graph::Graph crr_graph = crr_result->BuildReducedGraph(g);
      graph::Graph bm2_graph = bm2_result->BuildReducedGraph(g);
      auto crr_mean = MeanClusteringByBucket(crr_graph);
      auto bm2_mean = MeanClusteringByBucket(bm2_graph);
      auto uds_mean = MeanClusteringByBucket(uds_result->summary_graph);

      TablePrinter table(spec.name + ", p = " + FormatDouble(p, 1) +
                         " — mean clustering coefficient by degree bucket");
      table.SetHeader({"degree bucket", "original", "CRR", "BM2", "UDS"});
      for (const auto& [bucket, value] : original_mean) {
        const int64_t lo = int64_t{1} << bucket;
        const int64_t hi = (int64_t{1} << (bucket + 1)) - 1;
        auto cell = [&](std::map<int64_t, double>& m) {
          return m.contains(bucket) ? FormatDouble(m[bucket], 4)
                                    : std::string("-");
        };
        table.AddRow({std::to_string(lo) + "-" + std::to_string(hi),
                      FormatDouble(value, 4), cell(crr_mean), cell(bm2_mean),
                      cell(uds_mean)});
      }
      bench::PrintTableWithCsv(table);
      std::printf("network average clustering: original %.4f | CRR %.4f | "
                  "BM2 %.4f | UDS %.4f\n\n",
                  original_avg,
                  analytics::AverageClusteringCoefficient(crr_graph),
                  analytics::AverageClusteringCoefficient(bm2_graph),
                  analytics::AverageClusteringCoefficient(
                      uds_result->summary_graph));
    }
  }
  std::printf("expected shape (paper Fig. 9): close tracking at p=0.7, "
              "degraded but UDS-beating estimates at p=0.3.\n");
  return 0;
}
