// Ablation bench (DESIGN.md §6, not in the paper): isolates the design
// choices inside CRR and BM2.
//   1. CRR Phase-1 signal: betweenness ranking vs random initial subset.
//   2. CRR swap acceptance: strict (d1+d2 < 0) vs accepting ties.
//   3. BM2 Phase 2: with vs without the bipartite correction.
//   4. BM2 b-matching scan order: input vs shuffled vs low-degree-first.

#include <set>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "eval/metrics.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  const double p = flags.GetDouble("p", 0.5);
  bench::PrintBenchHeader("Ablation — CRR/BM2 phase and policy choices",
                          config);

  graph::Graph g = bench::LoadScaled(graph::DatasetId::kCaGrQc, config, 0.5);
  std::printf("ca-GrQc surrogate: %s nodes, %s edges, p = %.1f\n\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str(), p);

  auto evaluate = [&](const core::SheddingResult& result) {
    graph::Graph reduced = result.BuildReducedGraph(g);
    return eval::TopKUtilityForReduced(g, reduced, 10.0);
  };

  {
    TablePrinter table("CRR ablation");
    table.SetHeader(
        {"variant", "avg delta", "top-10% utility", "time (s)"});
    struct Variant {
      std::string name;
      core::CrrOptions options;
    };
    std::vector<Variant> variants;
    core::CrrOptions base;
    base.betweenness = bench::BenchBetweenness(config.full);
    variants.push_back({"full (betweenness init + rewiring)", base});
    {
      core::CrrOptions v = base;
      v.steps_override = 0;
      variants.push_back({"phase 1 only (no rewiring)", v});
    }
    {
      core::CrrOptions v = base;
      v.init_mode = core::CrrOptions::InitMode::kRandom;
      variants.push_back({"random init + rewiring", v});
    }
    {
      core::CrrOptions v = base;
      v.init_mode = core::CrrOptions::InitMode::kRandom;
      v.steps_override = 0;
      variants.push_back({"random init only", v});
    }
    {
      core::CrrOptions v = base;
      v.accept_zero_delta_swaps = true;
      variants.push_back({"accept zero-delta swaps", v});
    }
    {
      core::CrrOptions v = base;
      v.steps_multiplier = 30.0;
      variants.push_back({"3x rewiring budget (steps = 30P)", v});
    }
    for (const Variant& variant : variants) {
      auto result = core::Crr(variant.options).Reduce(g, p);
      EDGESHED_CHECK(result.ok());
      table.AddRow({variant.name, FormatDouble(result->average_delta, 4),
                    FormatDouble(evaluate(*result), 3),
                    bench::Seconds(result->reduction_seconds)});
    }
    bench::PrintTableWithCsv(table);
  }

  {
    TablePrinter table("BM2 ablation");
    table.SetHeader(
        {"variant", "avg delta", "top-10% utility", "|E'|", "time (s)"});
    struct Variant {
      std::string name;
      core::Bm2Options options;
    };
    std::vector<Variant> variants;
    variants.push_back({"full (input order + phase 2)", {}});
    {
      core::Bm2Options v;
      v.run_phase2 = false;
      variants.push_back({"phase 1 only (b-matching)", v});
    }
    {
      core::Bm2Options v;
      v.edge_order = core::BMatchingEdgeOrder::kShuffled;
      variants.push_back({"shuffled scan order", v});
    }
    {
      core::Bm2Options v;
      v.edge_order = core::BMatchingEdgeOrder::kLowDegreeEndpointFirst;
      variants.push_back({"low-degree-first scan order", v});
    }
    {
      core::Bm2Options v;
      v.include_zero_gain = false;
      variants.push_back({"exclude zero-gain candidates", v});
    }
    for (const Variant& variant : variants) {
      auto result = core::Bm2(variant.options).Reduce(g, p);
      EDGESHED_CHECK(result.ok());
      table.AddRow({variant.name, FormatDouble(result->average_delta, 4),
                    FormatDouble(evaluate(*result), 3),
                    std::to_string(result->kept_edges.size()),
                    bench::Seconds(result->reduction_seconds)});
    }
    bench::PrintTableWithCsv(table);
  }
  {
    // DESIGN.md §6.4: exact vs pivot-sampled betweenness inside CRR's
    // Phase 1 — how many pivots buy how much of the exact ranking, and
    // does CRR's output quality care?
    analytics::BetweennessOptions exact_options =
        analytics::BetweennessOptions::Exact();
    Stopwatch exact_watch;
    auto exact_ranking = analytics::EdgesByBetweennessDescending(
        g, exact_options);
    const double exact_seconds = exact_watch.ElapsedSeconds();
    const uint64_t top = core::TargetEdgeCount(g, p);
    std::set<graph::EdgeId> exact_top(exact_ranking.begin(),
                                      exact_ranking.begin() +
                                          static_cast<long>(top));

    TablePrinter table("Betweenness estimator ablation (CRR Phase 1)");
    table.SetHeader({"pivots", "top-[P] ranking overlap", "CRR avg delta",
                     "CRR top-10% utility", "centrality time (s)"});
    auto add_row = [&](const std::string& label,
                       const analytics::BetweennessOptions& options,
                       double centrality_seconds,
                       const std::vector<graph::EdgeId>& ranking) {
      uint64_t hits = 0;
      for (uint64_t i = 0; i < top; ++i) {
        if (exact_top.contains(ranking[i])) ++hits;
      }
      core::CrrOptions crr_options;
      crr_options.betweenness = options;
      auto result = core::Crr(crr_options).Reduce(g, p);
      EDGESHED_CHECK(result.ok());
      table.AddRow({label,
                    FormatDouble(static_cast<double>(hits) /
                                     static_cast<double>(top), 3),
                    FormatDouble(result->average_delta, 4),
                    FormatDouble(evaluate(*result), 3),
                    bench::Seconds(centrality_seconds)});
    };
    for (uint64_t pivots : {32ull, 128ull, 512ull}) {
      analytics::BetweennessOptions options;
      options.exact_node_threshold = 1;  // force sampling
      options.sample_sources = pivots;
      Stopwatch watch;
      auto ranking = analytics::EdgesByBetweennessDescending(g, options);
      add_row(std::to_string(pivots), options, watch.ElapsedSeconds(),
              ranking);
    }
    add_row("exact", exact_options, exact_seconds, exact_ranking);
    bench::PrintTableWithCsv(table);
  }

  std::printf("reading: rewiring is what drives CRR's delta down; the\n"
              "bipartite pass is what fixes b-matching's rounding debt;\n"
              "a few hundred pivots recover most of the exact edge ranking\n"
              "at a fraction of the Brandes cost, and CRR's final quality\n"
              "is insensitive to the residual ranking noise.\n");
  return 0;
}
