// Reproduces Fig. 5(c)-(d) and Fig. 6: vertex degree distributions of the
// original email-Enron graph versus the distributions estimated from the
// reduced graphs (deg'/p for CRR/BM2; expected supernode reconstruction for
// UDS), at p = 0.5 and p = 0.1. Degrees above 300 aggregate into one bucket
// (as in the paper), and the Fig. 6 zoom covers degrees 1..18.
//
// Paper shape to reproduce: CRR and BM2 sit on top of the original curve;
// UDS deviates visibly. We also print KS distances as the scalar summary.

#include "bench/bench_util.h"
#include "analytics/degree.h"

using namespace edgeshed;

namespace {

void PrintSeries(const std::string& dataset_label, double p,
                 const Histogram& original, const Histogram& crr_hist,
                 const Histogram& bm2_hist, const Histogram& uds_hist) {
  TablePrinter table(dataset_label + " — fraction of vertices per degree "
                     "(zoom 1..18, Fig. 6)");
  table.SetHeader({"degree", "original", "CRR est.", "BM2 est.", "UDS est."});
  for (int64_t degree = 1; degree <= 18; ++degree) {
    table.AddRow({std::to_string(degree),
                  FormatDouble(original.FractionFor(degree), 5),
                  FormatDouble(crr_hist.FractionFor(degree), 5),
                  FormatDouble(bm2_hist.FractionFor(degree), 5),
                  FormatDouble(uds_hist.FractionFor(degree), 5)});
  }
  edgeshed::bench::PrintTableWithCsv(table);
  std::printf("KS distance vs original at p=%.1f:  CRR %.4f | BM2 %.4f | "
              "UDS %.4f\n\n",
              p, Histogram::KsDistance(original, crr_hist),
              Histogram::KsDistance(original, bm2_hist),
              Histogram::KsDistance(original, uds_hist));
}

}  // namespace

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader(
      "Fig. 5(c)-(d) + Fig. 6 — vertex degree distribution (email-Enron)",
      config);

  graph::Graph g =
      bench::LoadScaled(graph::DatasetId::kEmailEnron, config, 0.05);
  std::printf("email-Enron surrogate: %s nodes, %s edges\n\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());

  constexpr int64_t kCap = 300;  // paper: degrees > 300 aggregated
  Histogram original = analytics::DegreeDistribution(g, kCap);

  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);
  for (double p : {0.5, 0.1}) {
    auto crr_result = crr.Reduce(g, p);
    auto bm2_result = bm2.Reduce(g, p);
    auto uds_result = uds.Summarize(g, p);
    EDGESHED_CHECK(crr_result.ok());
    EDGESHED_CHECK(bm2_result.ok());
    EDGESHED_CHECK(uds_result.ok());
    Histogram crr_hist = analytics::EstimatedDegreeDistribution(
        crr_result->BuildReducedGraph(g), p, kCap);
    Histogram bm2_hist = analytics::EstimatedDegreeDistribution(
        bm2_result->BuildReducedGraph(g), p, kCap);
    Histogram uds_hist =
        baseline::UdsEstimatedDegreeDistribution(*uds_result, kCap);
    PrintSeries("email-Enron, p = " + FormatDouble(p, 1), p, original,
                crr_hist, bm2_hist, uds_hist);
  }
  std::printf("expected shape (paper Figs. 5c-d, 6): CRR/BM2 estimates "
              "track the original degree curve closely; UDS deviates.\n");
  return 0;
}
