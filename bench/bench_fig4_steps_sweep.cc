// Reproduces Fig. 4: CRR reduction quality (average delta) and running time
// as the Phase-2 iteration budget steps = x·P varies, on ca-GrQc and
// ca-HepPh surrogates at p = 0.5.
//
// Paper shape to reproduce: average delta falls sharply once x > 4 and
// flattens past x ~ 10; running time grows roughly linearly in x. This is
// what justifies the paper's default steps = 10·P.

#include "bench/bench_util.h"
#include "common/stopwatch.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  const double p = flags.GetDouble("p", 0.5);
  bench::PrintBenchHeader("Fig. 4 — CRR steps sweep (steps = x * P)", config);

  struct Target {
    graph::DatasetId id;
    double scale;
  };
  for (const Target& target :
       {Target{graph::DatasetId::kCaGrQc, 0.5},
        Target{graph::DatasetId::kCaHepPh, 0.1}}) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    std::printf("\n%s surrogate: %s nodes, %s edges, p = %.1f\n",
                spec.name.c_str(), FormatWithCommas(g.NumNodes()).c_str(),
                FormatWithCommas(g.NumEdges()).c_str(), p);

    TablePrinter table;
    table.SetHeader({"x", "steps", "avg delta", "time (s)"});
    for (int x = 0; x <= 14; x += 2) {
      core::CrrOptions options;
      options.betweenness = bench::BenchBetweenness(config.full);
      options.steps_multiplier = static_cast<double>(x);
      core::Crr crr(options);
      Stopwatch watch;
      auto result = crr.Reduce(g, p);
      EDGESHED_CHECK(result.ok()) << result.status().ToString();
      table.AddRow({std::to_string(x),
                    FormatWithCommas(crr.StepsFor(g, p)),
                    FormatDouble(result->average_delta, 4),
                    bench::Seconds(watch.ElapsedSeconds())});
    }
    bench::PrintTableWithCsv(table);
  }
  std::printf("expected shape (paper Fig. 4): avg delta drops sharply for "
              "x > 4, flattens past x ~ 10; time grows with x.\n");
  return 0;
}
