// Serving-QoS load-test bench (ISSUE 8, DESIGN.md §13).
//
// Closed-loop load against one in-process RpcServer + JobScheduler wired
// exactly like `edgeshed serve --tenants=gold:4,bronze:1 --degrade`, in
// three phases:
//
//   1. Fairness: N client threads per tenant (gold weight 4, bronze weight
//      1) each run a closed loop of Shed-with-wait RPCs over a persistent
//      Channel for a fixed wall-clock window against a saturated 2-worker
//      scheduler. Reported: per-tenant throughput and the achieved
//      gold/bronze ratio (target: the 4.0 weight ratio).
//   2. Overload + degradation: 2x max_inflight concurrent CRR requests hit
//      a degrade-enabled server with one scheduler worker. Reported: OK /
//      rejected / degraded counts and the median latency. The acceptance
//      bar is zero client-visible ResourceExhausted — pressure is answered
//      with a recorded cheaper tier, not an error.
//   3. No-pressure latency: one client, sequential Shed-with-wait requests
//      against an idle server; p50/p95/p99 from the server's
//      `net.rpc_seconds` log2 histogram (obs::LatencyQuantileSeconds).
//
// Emits machine-readable rows to BENCH_serving.json (schema
// edgeshed-bench-serving-v1, same row shape as BENCH_hotpath.json) so
// tools/compare_bench.py can diff two runs and gate the latency
// percentiles.
//
// Usage:
//   bench_serving_qos [--out=BENCH_serving.json] [--smoke] [--seconds=3]
//                     [--clients=4] [--latency_jobs=60] [--method=crr]
//                     [--rev=<git sha>]
//
// --smoke shrinks the graph and the windows so CI finishes in seconds;
// --rev defaults to $EDGESHED_GIT_REV, then "unknown".

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "eval/flags.h"
#include "graph/generators/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"

namespace edgeshed::bench {
namespace {

double Median(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

struct ServingResult {
  std::string graph;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  std::string op;
  double median_seconds = 0.0;
  // Phase-specific extras; negative = absent from the JSON row.
  double jobs_per_sec = -1.0;
  int64_t ok = -1;
  int64_t rejected = -1;
  int64_t degraded = -1;
};

/// One in-process serving stack wired like `edgeshed serve`.
struct QosServer {
  QosServer(const graph::Graph& g,
            service::JobScheduler::Options scheduler_options,
            net::RpcServerOptions server_options) {
    store = std::make_unique<service::GraphStore>(
        service::GraphStoreOptions{}, &metrics);
    Status registered = store->Register(
        "bench", [g] { return StatusOr<graph::Graph>(g); });
    EDGESHED_CHECK(registered.ok()) << registered.ToString();
    scheduler = std::make_unique<service::JobScheduler>(
        store.get(), &metrics, scheduler_options);
    server = std::make_unique<net::RpcServer>(store.get(), scheduler.get(),
                                              &metrics, server_options);
    Status started = server->Start();
    EDGESHED_CHECK(started.ok()) << started.ToString();
  }

  obs::MetricsRegistry metrics;
  std::unique_ptr<service::GraphStore> store;
  std::unique_ptr<service::JobScheduler> scheduler;
  std::unique_ptr<net::RpcServer> server;
};

service::JobScheduler::Options TwoTenantScheduler(int workers,
                                                  bool degrade) {
  service::JobScheduler::Options options;
  options.workers = workers;
  options.tenants["gold"] = {/*weight=*/4, /*max_running=*/0};
  options.tenants["bronze"] = {/*weight=*/1, /*max_running=*/0};
  options.degrade.enabled = degrade;
  return options;
}

net::RpcClientOptions ClientOptions(int port) {
  net::RpcClientOptions options;
  options.port = port;
  options.max_attempts = 1;  // the bench counts raw outcomes, no retries
  return options;
}

/// Per-thread closed-loop worker state for the fairness phase.
struct LoopCounters {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> rejected{0};
  std::atomic<int64_t> failed{0};
};

int Main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_serving.json");
  const bool smoke = flags.GetBool("smoke", false);
  // The fairness window needs enough completed jobs for the DRR ratio to
  // wash out the FCFS warmup while the queues first fill; on the full-size
  // graph a CRR job costs ~0.5s of worker time, so 10s ~= 40+ completions.
  const double seconds =
      static_cast<double>(flags.GetInt("seconds", smoke ? 1 : 10));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const int latency_jobs =
      static_cast<int>(flags.GetInt("latency_jobs", smoke ? 20 : 60));
  const std::string method = flags.GetString("method", "crr");
  const char* rev_env = std::getenv("EDGESHED_GIT_REV");
  const std::string rev =
      flags.GetString("rev", rev_env != nullptr ? rev_env : "unknown");

  std::printf("edgeshed serving QoS bench: clients=%d/tenant window=%.0fs%s\n",
              clients, seconds, smoke ? " (smoke)" : "");

  Rng rng(1);
  const graph::Graph g = smoke ? graph::RMat(9, 8, 0.57, 0.19, 0.19, rng)
                               : graph::RMat(11, 8, 0.57, 0.19, 0.19, rng);
  const std::string graph_name = smoke ? "rmat_s9" : "rmat_s11";
  std::printf("%s: %llu nodes, %llu edges\n", graph_name.c_str(),
              static_cast<unsigned long long>(g.NumNodes()),
              static_cast<unsigned long long>(g.NumEdges()));

  std::vector<ServingResult> results;
  auto row = [&](const std::string& op) {
    ServingResult r;
    r.graph = graph_name;
    r.nodes = g.NumNodes();
    r.edges = g.NumEdges();
    r.op = op;
    return r;
  };

  // --- Phase 1: fairness under saturation. -------------------------------
  {
    net::RpcServerOptions server_options;
    server_options.max_inflight = static_cast<size_t>(4 * clients);
    server_options.dispatch_threads = 2 * clients + 2;
    service::JobScheduler::Options scheduler_options =
        TwoTenantScheduler(/*workers=*/2, /*degrade=*/false);
    // Fair-share arbitration only shows under backlog: with the rank cache
    // on, repeat CRR jobs on one dataset finish in microseconds and the
    // queues never fill. Off, every job re-ranks — service time dominates
    // the client round trip and the DRR weights become visible.
    scheduler_options.enable_rank_cache = false;
    QosServer qos(g, scheduler_options, server_options);

    const auto window =
        std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000.0));
    const auto deadline = std::chrono::steady_clock::now() + window;
    LoopCounters gold_counts, bronze_counts;
    std::vector<std::thread> threads;
    Stopwatch watch;
    for (int tenant_idx = 0; tenant_idx < 2; ++tenant_idx) {
      const std::string tenant = tenant_idx == 0 ? "gold" : "bronze";
      LoopCounters* counts = tenant_idx == 0 ? &gold_counts : &bronze_counts;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, tenant, counts, tenant_idx, c] {
          net::RpcClient client(ClientOptions(qos.server->port()));
          net::RpcClient::Channel channel(&client);
          // Seeds are disjoint per thread so neither the result cache nor
          // coalescing can answer for a repeat — every loop is real work.
          uint64_t seed =
              1000000ull * static_cast<uint64_t>(tenant_idx * clients + c);
          while (std::chrono::steady_clock::now() < deadline) {
            net::ShedRequest request;
            request.dataset = "bench";
            request.method = method;
            request.p = 0.5;
            request.seed = ++seed;
            request.wait = true;
            request.deadline_ms = 30000;
            request.tenant = tenant;
            auto response = channel.Shed(request);
            if (response.ok()) {
              counts->ok.fetch_add(1, std::memory_order_relaxed);
            } else if (response.status().code() ==
                       StatusCode::kResourceExhausted) {
              counts->rejected.fetch_add(1, std::memory_order_relaxed);
            } else {
              counts->failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    }
    for (std::thread& t : threads) t.join();
    const double elapsed = watch.ElapsedSeconds();
    EDGESHED_CHECK(gold_counts.failed.load() == 0 &&
                   bronze_counts.failed.load() == 0)
        << "fairness phase saw non-overload failures";

    const double gold_tput =
        static_cast<double>(gold_counts.ok.load()) / elapsed;
    const double bronze_tput =
        static_cast<double>(bronze_counts.ok.load()) / elapsed;
    const double total_tput = gold_tput + bronze_tput;
    for (const auto& [name, tput, counts] :
         {std::tuple<std::string, double, LoopCounters*>{"gold", gold_tput,
                                                         &gold_counts},
          {"bronze", bronze_tput, &bronze_counts}}) {
      ServingResult r = row("fair_share_" + name + "_" + method);
      r.median_seconds = tput > 0.0 ? 1.0 / tput : 0.0;  // secs per job
      r.jobs_per_sec = tput;
      r.ok = counts->ok.load();
      r.rejected = counts->rejected.load();
      results.push_back(r);
      std::printf("  %-34s %.1f jobs/s (ok=%lld rejected=%lld)\n",
                  r.op.c_str(), tput, static_cast<long long>(r.ok),
                  static_cast<long long>(r.rejected));
    }
    // The DRR is work-conserving: a backlogged tenant is *guaranteed* its
    // weighted share, and capacity its closed-loop clients leave idle
    // (round-trip turnaround) is redistributed — so judge gold against its
    // 4/5 entitlement, not the raw gold/bronze ratio.
    const double gold_share = total_tput > 0.0 ? gold_tput / total_tput : 0.0;
    std::printf(
        "  fairness: gold share=%.0f%% (entitled 80%%), "
        "gold/bronze ratio=%.2f (weights 4:1)\n",
        100.0 * gold_share,
        bronze_tput > 0.0 ? gold_tput / bronze_tput : 0.0);
  }

  // --- Phase 2: overload answered by degradation, not rejection. ---------
  {
    net::RpcServerOptions server_options;
    server_options.max_inflight = 2;
    server_options.dispatch_threads = 2 * clients + 2;
    server_options.degrade_enabled = true;
    QosServer qos(g, TwoTenantScheduler(/*workers=*/1, /*degrade=*/true),
                  server_options);

    // 2x max_inflight concurrent requests per tenant pair: every one past
    // the soft cap is admitted under pressure instead of rejected.
    const int burst = static_cast<int>(2 * server_options.max_inflight);
    std::atomic<int64_t> ok{0}, rejected{0}, degraded{0};
    std::vector<double> latencies(static_cast<size_t>(2 * burst), 0.0);
    std::vector<std::thread> threads;
    for (int i = 0; i < 2 * burst; ++i) {
      threads.emplace_back([&, i] {
        net::RpcClient client(ClientOptions(qos.server->port()));
        net::ShedRequest request;
        request.dataset = "bench";
        request.method = method;
        request.p = 0.5;
        request.seed = 7000 + static_cast<uint64_t>(i);
        request.wait = true;
        request.deadline_ms = 30000;
        request.tenant = i % 2 == 0 ? "gold" : "bronze";
        Stopwatch watch;
        auto response = client.Shed(request);
        latencies[static_cast<size_t>(i)] = watch.ElapsedSeconds();
        if (response.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          if (response->result.degrade_kind != 0) {
            degraded.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (response.status().code() ==
                   StatusCode::kResourceExhausted) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : threads) t.join();

    ServingResult r = row("overload_2x_" + method);
    r.median_seconds = Median(latencies);
    r.ok = ok.load();
    r.rejected = rejected.load();
    r.degraded = degraded.load();
    results.push_back(r);
    std::printf(
        "  %-34s median=%.4fs ok=%lld rejected=%lld degraded=%lld\n",
        r.op.c_str(), r.median_seconds, static_cast<long long>(r.ok),
        static_cast<long long>(r.rejected),
        static_cast<long long>(r.degraded));
    EDGESHED_CHECK(rejected.load() == 0)
        << "degrade-enabled server rejected " << rejected.load()
        << " in-quota requests at 2x max_inflight";
    std::printf("  net.degraded_admitted=%llu net.degraded_applied=%llu\n",
                static_cast<unsigned long long>(
                    qos.metrics.CounterValue("net.degraded_admitted")),
                static_cast<unsigned long long>(
                    qos.metrics.CounterValue("net.degraded_applied")));
  }

  // --- Phase 3: single-tenant no-pressure latency percentiles. -----------
  {
    net::RpcServerOptions server_options;
    QosServer qos(g, TwoTenantScheduler(/*workers=*/2, /*degrade=*/false),
                  server_options);
    net::RpcClient client(ClientOptions(qos.server->port()));
    net::RpcClient::Channel channel(&client);
    for (int i = 0; i < latency_jobs; ++i) {
      net::ShedRequest request;
      request.dataset = "bench";
      request.method = method;
      request.p = 0.5;
      request.seed = 90000 + static_cast<uint64_t>(i);
      request.wait = true;
      request.deadline_ms = 30000;
      auto response = channel.Shed(request);
      EDGESHED_CHECK(response.ok()) << response.status().ToString();
    }
    const std::vector<uint64_t> buckets =
        qos.metrics.GetLatency("net.rpc_seconds")->BucketCounts();
    for (const auto& [tag, q] :
         {std::pair<std::string, double>{"p50", 0.50},
          {"p95", 0.95},
          {"p99", 0.99}}) {
      ServingResult r = row("shed_wait_" + tag + "_" + method);
      r.median_seconds = obs::LatencyQuantileSeconds(buckets, q);
      results.push_back(r);
      std::printf("  %-34s %.4fs\n", r.op.c_str(), r.median_seconds);
    }
  }

  std::FILE* json = std::fopen(out.c_str(), "w");
  EDGESHED_CHECK(json != nullptr) << "cannot write " << out;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"schema\": \"edgeshed-bench-serving-v1\",\n");
  std::fprintf(json, "  \"git_rev\": \"%s\",\n", rev.c_str());
  std::fprintf(json, "  \"clients\": %d,\n", clients);
  std::fprintf(json, "  \"window_seconds\": %.0f,\n", seconds);
  std::fprintf(json, "  \"method\": \"%s\",\n", method.c_str());
  std::fprintf(json, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ServingResult& r = results[i];
    std::fprintf(json,
                 "    {\"graph\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
                 "\"op\": \"%s\", \"median_seconds\": %.6f",
                 r.graph.c_str(), static_cast<unsigned long long>(r.nodes),
                 static_cast<unsigned long long>(r.edges), r.op.c_str(),
                 r.median_seconds);
    if (r.jobs_per_sec >= 0.0) {
      std::fprintf(json, ", \"jobs_per_sec\": %.3f", r.jobs_per_sec);
    }
    if (r.ok >= 0) {
      std::fprintf(json, ", \"ok\": %lld", static_cast<long long>(r.ok));
    }
    if (r.rejected >= 0) {
      std::fprintf(json, ", \"rejected\": %lld",
                   static_cast<long long>(r.rejected));
    }
    if (r.degraded >= 0) {
      std::fprintf(json, ", \"degraded\": %lld",
                   static_cast<long long>(r.degraded));
    }
    std::fprintf(json, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s (%zu series, rev=%s)\n", out.c_str(), results.size(),
              rev.c_str());
  return 0;
}

}  // namespace
}  // namespace edgeshed::bench

int main(int argc, char** argv) { return edgeshed::bench::Main(argc, argv); }
