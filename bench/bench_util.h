#ifndef EDGESHED_BENCH_BENCH_UTIL_H_
#define EDGESHED_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "analytics/betweenness.h"
#include "baseline/uds.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "eval/experiment.h"
#include "eval/flags.h"
#include "eval/task_runner.h"
#include "graph/datasets.h"

namespace edgeshed::bench {

/// Betweenness settings used across the harness on a laptop-class budget:
/// exact Brandes below 4096 vertices, 256 sampled pivots above
/// (DESIGN.md §3). --full raises the exact threshold to the paper's small
/// datasets.
inline analytics::BetweennessOptions BenchBetweenness(bool full) {
  analytics::BetweennessOptions options;
  options.exact_node_threshold = full ? (uint64_t{1} << 14) : 4096;
  options.sample_sources = 256;
  return options;
}

/// Task options trimmed for single-core default runs; --full restores
/// heavier settings (more walks, larger embeddings, more BFS sources).
inline eval::TaskOptions BenchTaskOptions(bool full) {
  eval::TaskOptions options;
  options.betweenness = BenchBetweenness(full);
  options.distances.exact_node_threshold = full ? (uint64_t{1} << 15) : 8192;
  options.distances.sample_sources = full ? 1024 : 384;
  options.link_prediction.walks.walks_per_node = full ? 10 : 4;
  options.link_prediction.walks.walk_length = full ? 40 : 16;
  options.link_prediction.skipgram.dimensions = full ? 64 : 32;
  options.link_prediction.skipgram.epochs = full ? 2 : 1;
  options.link_prediction.kmeans.clusters = 5;  // paper: n_clusters = 5
  return options;
}

/// Configured shedders for the method columns of the paper's tables.
inline core::Crr BenchCrr(bool full, uint64_t seed = 42) {
  core::CrrOptions options;
  options.betweenness = BenchBetweenness(full);
  options.seed = seed;
  return core::Crr(options);
}

inline core::Bm2 BenchBm2(uint64_t seed = 42) {
  core::Bm2Options options;
  options.seed = seed;
  return core::Bm2(options);
}

inline baseline::Uds BenchUds(bool full, uint64_t seed = 42) {
  baseline::UdsOptions options;
  options.importance = BenchBetweenness(full);
  options.seed = seed;
  return baseline::Uds(options);
}

/// Default per-dataset scale for a bench binary. UDS-bearing benches pass
/// their own (smaller) defaults; --full always restores 1.0 (and the paper's
/// LiveJournal size).
inline double BenchScale(const eval::BenchConfig& config,
                         graph::DatasetId id, double uds_friendly_scale) {
  if (config.full) return config.scale;
  (void)id;
  return uds_friendly_scale * config.scale;
}

inline graph::Graph LoadScaled(graph::DatasetId id,
                               const eval::BenchConfig& config,
                               double uds_friendly_scale) {
  graph::DatasetOptions options;
  options.seed = config.seed;
  options.scale = config.full
                      ? eval::DefaultDatasetScale(id, true) * config.scale
                      : eval::DefaultDatasetScale(id, false) *
                            BenchScale(config, id, uds_friendly_scale);
  std::string path;
  if (!config.data_dir.empty()) {
    path = config.data_dir + "/" + graph::GetDatasetSpec(id).name + ".txt";
  }
  return graph::MakeDatasetOrLoad(id, path, options);
}

/// Prints a bench header with graph provenance.
inline void PrintBenchHeader(const std::string& title,
                             const eval::BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("mode: %s (use --full for paper-scale surrogates; --scale=X "
              "to rescale)\n",
              config.full ? "FULL" : "default (downscaled for laptop runs)");
  std::printf("==============================================================\n");
}

inline void PrintTableWithCsv(const TablePrinter& table) {
  std::printf("%s\n", table.ToString().c_str());
  std::printf("--- CSV ---\n%s\n", table.ToCsv().c_str());
}

inline std::string Seconds(double s) { return FormatDouble(s, 3); }

}  // namespace edgeshed::bench

#endif  // EDGESHED_BENCH_BENCH_UTIL_H_
