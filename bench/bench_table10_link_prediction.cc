// Reproduces Table X: utility of link prediction within community
// (|L_s ∩ L| / |L|) via node2vec (p=q=1) + k-means (k=5) over 2-hop pairs,
// for p in {0.9 ... 0.1} on the three small datasets.
//
// Paper shape to reproduce: on ca-GrQc all three methods are comparable;
// on ca-HepPh and email-Enron UDS's utility falls off much faster than
// CRR's and BM2's.

#include "bench/bench_util.h"
#include "embedding/link_prediction.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader(
      "Table X — utility of link prediction within community", config);
  embedding::LinkPredictionOptions lp_options =
      bench::BenchTaskOptions(config.full).link_prediction;
  // Full 2-hop enumeration at bench scales kills sampling mismatch between
  // the G and G' pair sets (the cap stays on for --full runs).
  if (!config.full) lp_options.max_pairs_per_node = 0;

  struct Target {
    graph::DatasetId id;
    double scale;
  };
  const Target targets[] = {
      {graph::DatasetId::kCaGrQc, 0.35},
      {graph::DatasetId::kCaHepPh, 0.08},
      {graph::DatasetId::kEmailEnron, 0.05},
  };
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);

  for (const Target& target : targets) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    std::printf("\n%s surrogate: %s nodes, %s edges\n", spec.name.c_str(),
                FormatWithCommas(g.NumNodes()).c_str(),
                FormatWithCommas(g.NumEdges()).c_str());

    // L: prediction set on the original graph, computed once.
    auto original_communities =
        embedding::CommunityAssignments(g, lp_options);
    embedding::PairSet original_pairs = embedding::PredictSameCommunityPairs(
        g, original_communities, lp_options);

    // Two readings of the paper's "|L_s ∩ L| / L": precision (divide by
    // |L_s|) and recall (divide by |L|). The paper's reported levels —
    // ~0.4-0.5 even at p = 0.1, where almost no 2-hop pair of G survives in
    // G' — are only reachable under the precision reading, so that is the
    // headline table; recall follows for completeness.
    struct PrecisionRecall {
      double precision = 0.0;
      double recall = 0.0;
    };
    auto score = [&](const embedding::PairSet& pairs) {
      PrecisionRecall pr;
      if (pairs.empty() || original_pairs.empty()) return pr;
      uint64_t shared = 0;
      for (uint64_t packed : pairs) {
        if (original_pairs.contains(packed)) ++shared;
      }
      pr.precision = static_cast<double>(shared) /
                     static_cast<double>(pairs.size());
      pr.recall = static_cast<double>(shared) /
                  static_cast<double>(original_pairs.size());
      return pr;
    };
    auto evaluate = [&](const graph::Graph& reduced) {
      auto communities = embedding::CommunityAssignments(reduced, lp_options);
      return score(embedding::PredictSameCommunityPairs(reduced, communities,
                                                        lp_options));
    };

    TablePrinter precision_table("precision |L_s ∩ L| / |L_s|");
    precision_table.SetHeader({"p", "UDS", "CRR", "BM2"});
    TablePrinter recall_table("recall |L_s ∩ L| / |L|");
    recall_table.SetHeader({"p", "UDS", "CRR", "BM2"});
    for (double p : eval::PaperPreservationRatios()) {
      auto crr_result = crr.Reduce(g, p);
      auto bm2_result = bm2.Reduce(g, p);
      auto uds_result = uds.Summarize(g, p);
      EDGESHED_CHECK(crr_result.ok());
      EDGESHED_CHECK(bm2_result.ok());
      EDGESHED_CHECK(uds_result.ok());
      // UDS through its supernode graph: L_s^UDS contains every member
      // pair (u, v) whose supernodes are distinct, at distance exactly 2
      // in the summary, and share a community learned on the summary.
      auto uds_communities = embedding::CommunityAssignments(
          uds_result->summary_graph, lp_options);
      PrecisionRecall uds_pr;
      {
        const graph::Graph& sg = uds_result->summary_graph;
        double ls_size = 0.0;
        for (graph::NodeId sa = 0; sa < sg.NumNodes(); ++sa) {
          for (graph::NodeId sb = sa + 1; sb < sg.NumNodes(); ++sb) {
            if (uds_communities[sa] != uds_communities[sb]) continue;
            if (!embedding::AreTwoHop(sg, sa, sb)) continue;
            ls_size += static_cast<double>(
                           uds_result->members[sa].size()) *
                       static_cast<double>(uds_result->members[sb].size());
          }
        }
        uint64_t shared = 0;
        for (uint64_t packed : original_pairs) {
          const auto a = static_cast<graph::NodeId>(packed >> 32);
          const auto b = static_cast<graph::NodeId>(packed & 0xffffffffu);
          const uint32_t sa = uds_result->supernode_of[a];
          const uint32_t sb = uds_result->supernode_of[b];
          if (sa != sb && uds_communities[sa] == uds_communities[sb] &&
              embedding::AreTwoHop(sg, sa, sb)) {
            ++shared;
          }
        }
        if (ls_size > 0) {
          uds_pr.precision = static_cast<double>(shared) / ls_size;
        }
        if (!original_pairs.empty()) {
          uds_pr.recall = static_cast<double>(shared) /
                          static_cast<double>(original_pairs.size());
        }
      }
      PrecisionRecall crr_pr = evaluate(crr_result->BuildReducedGraph(g));
      PrecisionRecall bm2_pr = evaluate(bm2_result->BuildReducedGraph(g));
      precision_table.AddRow({FormatDouble(p, 1),
                              FormatDouble(uds_pr.precision, 3),
                              FormatDouble(crr_pr.precision, 3),
                              FormatDouble(bm2_pr.precision, 3)});
      recall_table.AddRow({FormatDouble(p, 1),
                           FormatDouble(uds_pr.recall, 3),
                           FormatDouble(crr_pr.recall, 3),
                           FormatDouble(bm2_pr.recall, 3)});
    }
    bench::PrintTableWithCsv(precision_table);
    bench::PrintTableWithCsv(recall_table);
  }
  std::printf("expected shape (paper Table X): methods comparable on "
              "ca-GrQc; UDS falls off faster on the denser datasets.\n");
  return 0;
}
