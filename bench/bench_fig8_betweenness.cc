// Reproduces Fig. 8: node betweenness centrality versus vertex degree,
// original vs reduced graphs at p = 0.5. For each original-degree bucket we
// report the mean betweenness of its vertices (reduced-graph betweenness
// rescaled by 1/p^2 for CRR/BM2, since both path endpoints survive with
// probability ~p; UDS maps each vertex to its supernode's betweenness).
//
// Paper shape to reproduce: CRR/BM2 estimate low-degree vertices well and
// get noisier at high degrees, but beat UDS across the board.

#include <cmath>
#include <map>

#include "bench/bench_util.h"

using namespace edgeshed;

namespace {

/// Geometric degree buckets: 1-1, 2-3, 4-7, 8-15, ...
int64_t Bucket(uint64_t degree) {
  int64_t bucket = 0;
  while (degree > 1) {
    degree >>= 1;
    ++bucket;
  }
  return bucket;
}

std::map<int64_t, double> MeanByDegreeBucket(
    const graph::Graph& original, const std::vector<double>& value_per_node) {
  std::map<int64_t, std::pair<double, uint64_t>> sums;
  for (graph::NodeId u = 0; u < original.NumNodes(); ++u) {
    if (original.Degree(u) == 0) continue;
    auto& [sum, count] = sums[Bucket(original.Degree(u))];
    sum += value_per_node[u];
    ++count;
  }
  std::map<int64_t, double> means;
  for (const auto& [bucket, entry] : sums) {
    means[bucket] = entry.first / static_cast<double>(entry.second);
  }
  return means;
}

}  // namespace

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  const double p = flags.GetDouble("p", 0.5);
  bench::PrintBenchHeader("Fig. 8 — betweenness centrality vs vertex degree",
                          config);
  analytics::BetweennessOptions betweenness =
      bench::BenchBetweenness(config.full);

  struct Target {
    graph::DatasetId id;
    double scale;
  };
  const Target targets[] = {
      {graph::DatasetId::kCaGrQc, 0.5},
      {graph::DatasetId::kCaHepPh, 0.1},
      {graph::DatasetId::kEmailEnron, 0.05},
  };
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);

  for (const Target& target : targets) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    auto original_scores = analytics::Betweenness(g, betweenness).node;

    auto crr_result = crr.Reduce(g, p);
    auto bm2_result = bm2.Reduce(g, p);
    auto uds_result = uds.Summarize(g, p);
    EDGESHED_CHECK(crr_result.ok());
    EDGESHED_CHECK(bm2_result.ok());
    EDGESHED_CHECK(uds_result.ok());

    const double rescale = 1.0 / (p * p);
    auto scale_scores = [&](const graph::Graph& reduced) {
      auto scores = analytics::Betweenness(reduced, betweenness).node;
      for (double& s : scores) s *= rescale;
      return scores;
    };
    auto crr_scores = scale_scores(crr_result->BuildReducedGraph(g));
    auto bm2_scores = scale_scores(bm2_result->BuildReducedGraph(g));
    // UDS: each vertex inherits its supernode's betweenness.
    auto summary_scores =
        analytics::Betweenness(uds_result->summary_graph, betweenness).node;
    std::vector<double> uds_scores(g.NumNodes());
    for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
      uds_scores[u] = summary_scores[uds_result->supernode_of[u]];
    }

    auto original_mean = MeanByDegreeBucket(g, original_scores);
    auto crr_mean = MeanByDegreeBucket(g, crr_scores);
    auto bm2_mean = MeanByDegreeBucket(g, bm2_scores);
    auto uds_mean = MeanByDegreeBucket(g, uds_scores);

    TablePrinter table(spec.name + ", p = " + FormatDouble(p, 1) +
                       " — mean betweenness by original-degree bucket");
    table.SetHeader({"degree bucket", "original", "CRR est.", "BM2 est.",
                     "UDS est."});
    for (const auto& [bucket, value] : original_mean) {
      const int64_t lo = int64_t{1} << bucket;
      const int64_t hi = (int64_t{1} << (bucket + 1)) - 1;
      table.AddRow({std::to_string(lo) + "-" + std::to_string(hi),
                    FormatDouble(value, 1),
                    FormatDouble(crr_mean.contains(bucket) ? crr_mean[bucket]
                                                           : 0.0, 1),
                    FormatDouble(bm2_mean.contains(bucket) ? bm2_mean[bucket]
                                                           : 0.0, 1),
                    FormatDouble(uds_mean.contains(bucket) ? uds_mean[bucket]
                                                           : 0.0, 1)});
    }
    bench::PrintTableWithCsv(table);
  }
  std::printf("expected shape (paper Fig. 8): CRR/BM2 track low-degree "
              "betweenness accurately, noisier at high degrees; UDS "
              "deviates everywhere due to supernode aggregation.\n");
  return 0;
}
