// Reproduces Tables VI-VII: graph analysis time on reduced graphs for the
// seven tasks on email-Enron, p in {0.9, 0.5, 0.1}, with the "T" row giving
// the task time on the original graph.
//
// Paper shape to reproduce: all three reduction methods cut analysis time,
// more so as p shrinks; UDS's summary graphs are smallest (aggressive
// aggregation) so its *analysis* time is lowest — the accuracy tables are
// where it loses.

#include "bench/bench_util.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader(
      "Tables VI-VII — analysis time on reduced email-Enron graphs (sec)",
      config);

  graph::Graph g =
      bench::LoadScaled(graph::DatasetId::kEmailEnron, config, 0.05);
  std::printf("email-Enron surrogate: %s nodes, %s edges\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());
  eval::TaskOptions task_options = bench::BenchTaskOptions(config.full);
  const std::vector<double> ratios = {0.9, 0.5, 0.1};

  std::map<std::pair<std::string, double>, graph::Graph> reduced;
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);
  for (double p : ratios) {
    auto crr_result = crr.Reduce(g, p);
    auto bm2_result = bm2.Reduce(g, p);
    auto uds_result = uds.Summarize(g, p);
    EDGESHED_CHECK(crr_result.ok());
    EDGESHED_CHECK(bm2_result.ok());
    EDGESHED_CHECK(uds_result.ok());
    reduced[{"CRR", p}] = crr_result->BuildReducedGraph(g);
    reduced[{"BM2", p}] = bm2_result->BuildReducedGraph(g);
    reduced[{"UDS", p}] = uds_result->summary_graph;
  }

  for (eval::Task task : eval::AllTasks()) {
    const double original_seconds = eval::RunTaskTimed(g, task, task_options);
    TablePrinter table(TaskName(task));
    table.SetHeader({"p", "UDS", "CRR", "BM2"});
    table.AddRow({"T (original)", bench::Seconds(original_seconds), "", ""});
    table.AddSeparator();
    for (double p : ratios) {
      std::vector<std::string> row{FormatDouble(p, 1)};
      for (const std::string method : {"UDS", "CRR", "BM2"}) {
        row.push_back(bench::Seconds(
            eval::RunTaskTimed(reduced.at({method, p}), task, task_options)));
      }
      table.AddRow(std::move(row));
    }
    bench::PrintTableWithCsv(table);
  }
  std::printf("expected shape (paper Tables VI-VII): analysis time drops "
              "with p for every method; UDS summaries are smallest and "
              "hence fastest to analyze.\n");
  return 0;
}
