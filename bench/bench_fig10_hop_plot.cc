// Reproduces Fig. 10: hop-plot — the fraction of reachable vertex pairs
// within distance k — original vs reduced graphs at p = 0.7 and p = 0.3.
//
// Paper shape to reproduce: all three methods approximate the original
// hop-plot reasonably well across datasets, with small regional deviations.

#include "bench/bench_util.h"
#include "analytics/shortest_paths.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader("Fig. 10 — hop-plot", config);
  eval::TaskOptions task_options = bench::BenchTaskOptions(config.full);

  struct Target {
    graph::DatasetId id;
    double scale;
  };
  const Target targets[] = {
      {graph::DatasetId::kCaGrQc, 0.5},
      {graph::DatasetId::kCaHepPh, 0.1},
      {graph::DatasetId::kEmailEnron, 0.05},
  };
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);

  for (const Target& target : targets) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    Histogram original = analytics::DistanceProfile(g, task_options.distances);

    for (double p : {0.7, 0.3}) {
      auto crr_result = crr.Reduce(g, p);
      auto bm2_result = bm2.Reduce(g, p);
      auto uds_result = uds.Summarize(g, p);
      EDGESHED_CHECK(crr_result.ok());
      EDGESHED_CHECK(bm2_result.ok());
      EDGESHED_CHECK(uds_result.ok());
      Histogram crr_hist = analytics::DistanceProfile(
          crr_result->BuildReducedGraph(g), task_options.distances);
      Histogram bm2_hist = analytics::DistanceProfile(
          bm2_result->BuildReducedGraph(g), task_options.distances);
      Histogram uds_hist = baseline::UdsDistanceProfile(*uds_result);

      TablePrinter table(spec.name + ", p = " + FormatDouble(p, 1) +
                         " — fraction of reachable pairs within k hops");
      table.SetHeader({"hops k", "original", "CRR", "BM2", "UDS"});
      for (int64_t k = 1; k <= 10; ++k) {
        table.AddRow({std::to_string(k),
                      FormatDouble(analytics::HopPlotFraction(original, k), 4),
                      FormatDouble(analytics::HopPlotFraction(crr_hist, k), 4),
                      FormatDouble(analytics::HopPlotFraction(bm2_hist, k), 4),
                      FormatDouble(analytics::HopPlotFraction(uds_hist, k),
                                   4)});
      }
      bench::PrintTableWithCsv(table);
    }
  }
  std::printf("expected shape (paper Fig. 10): every method's hop-plot "
              "rises close to the original's, with small regional "
              "deviations.\n");
  return 0;
}
