// Sharded shed fleet bench (ISSUE 6, DESIGN.md §11).
//
// Measures the coordinated path against single-node shedding on one skewed
// R-MAT graph: for each streaming partitioner (hash, dbh, hdrf) and fleet
// width K in {2, 4}, K in-process RpcServer workers share a snapshot
// directory and a ShedCoordinator runs the full partition → snapshot →
// remote shed → merge pipeline. Reported per configuration:
//
//   - partition quality (balance factor, replication factor, cut vertices)
//   - end-to-end wall clock (median of --repeats) and speedup vs the
//     single-node reduction of the same method/p/seed
//   - kept-edge overlap |kept_dist ∩ kept_single| / target — the price the
//     fleet pays for shedding shards independently
//
// Emits machine-readable medians to BENCH_dist.json in the same shape as
// BENCH_hotpath.json so tools/compare_bench.py can diff two runs.
//
// Usage:
//   bench_dist_fleet [--out=BENCH_dist.json] [--repeats=3] [--smoke]
//                    [--rev=<git sha>] [--p=0.5,0.8] [--method=crr]
//
// --p takes a comma-separated list of preservation ratios; each produces a
// full table (op names carry a `_p50`-style suffix). Overlap is a function
// of p — tighter budgets amplify the cost of shard-local ranking — so the
// default sweeps a tight and a loose budget. --smoke shrinks the graph so
// CI finishes in seconds; --rev defaults to $EDGESHED_GIT_REV, then
// "unknown".

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/shedder_factory.h"
#include "dist/coordinator.h"
#include "dist/partitioner.h"
#include "eval/flags.h"
#include "graph/generators/generators.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/dataset_registry.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"

namespace edgeshed::bench {
namespace {

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  return n % 2 == 1 ? samples[n / 2]
                    : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

struct DistResult {
  std::string graph;
  uint64_t nodes = 0;
  uint64_t edges = 0;
  std::string op;
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  // Partition quality and fidelity, absent (negative) for the single-node
  // baseline rows.
  double balance = -1.0;
  double replication = -1.0;
  double overlap = -1.0;
  double speedup = -1.0;
};

/// One in-process fleet worker wired like `edgeshed serve --shard_dir=DIR`.
struct Worker {
  explicit Worker(const std::string& shard_dir) {
    store = std::make_unique<service::GraphStore>(
        service::GraphStoreOptions{}, &metrics);
    service::InstallShardDirFallback(*store, shard_dir);
    service::JobScheduler::Options scheduler_options;
    scheduler_options.workers = 2;
    scheduler = std::make_unique<service::JobScheduler>(
        store.get(), &metrics, scheduler_options);
    net::RpcServerOptions server_options;
    server_options.output_dir = shard_dir;
    server = std::make_unique<net::RpcServer>(store.get(), scheduler.get(),
                                              &metrics, server_options);
    Status started = server->Start();
    EDGESHED_CHECK(started.ok()) << started.ToString();
  }

  obs::MetricsRegistry metrics;
  std::unique_ptr<service::GraphStore> store;
  std::unique_ptr<service::JobScheduler> scheduler;
  std::unique_ptr<net::RpcServer> server;
};

double Overlap(const std::vector<graph::EdgeId>& dist_kept,
               const std::vector<graph::EdgeId>& single_kept,
               uint64_t target) {
  std::vector<graph::EdgeId> sorted_single = single_kept;
  std::sort(sorted_single.begin(), sorted_single.end());
  std::vector<graph::EdgeId> common;
  std::set_intersection(dist_kept.begin(), dist_kept.end(),
                        sorted_single.begin(), sorted_single.end(),
                        std::back_inserter(common));
  return target == 0 ? 1.0
                     : static_cast<double>(common.size()) /
                           static_cast<double>(target);
}

int Main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_dist.json");
  const int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  const bool smoke = flags.GetBool("smoke", false);
  const std::string p_csv = flags.GetString("p", "0.5,0.8");
  std::vector<double> p_values;
  for (std::string_view token : StrSplit(p_csv, ',')) {
    const std::string entry(token);
    const double value = std::atof(entry.c_str());
    EDGESHED_CHECK(value > 0.0 && value < 1.0)
        << "--p entry '" << entry << "' must be in (0, 1)";
    p_values.push_back(value);
  }
  const std::string method = flags.GetString("method", "crr");
  const char* rev_env = std::getenv("EDGESHED_GIT_REV");
  const std::string rev =
      flags.GetString("rev", rev_env != nullptr ? rev_env : "unknown");

  std::printf("edgeshed dist fleet bench: threads=%d repeats=%d%s\n",
              DefaultThreadCount(), repeats, smoke ? " (smoke)" : "");

  Rng rng(1);
  const graph::Graph g = smoke
                             ? graph::RMat(11, 8, 0.57, 0.19, 0.19, rng)
                             : graph::RMat(13, 12, 0.57, 0.19, 0.19, rng);
  const std::string graph_name = smoke ? "rmat_s11" : "rmat_s13";
  std::printf("%s: %llu nodes, %llu edges\n", graph_name.c_str(),
              static_cast<unsigned long long>(g.NumNodes()),
              static_cast<unsigned long long>(g.NumEdges()));

  std::vector<DistResult> results;

  const char* tmpdir_env = std::getenv("TMPDIR");
  const std::string shard_dir =
      std::string(tmpdir_env != nullptr ? tmpdir_env : "/tmp") +
      "/edgeshed_bench_fleet";
  std::filesystem::create_directories(shard_dir);

  // Two method columns per table: the full stochastic method (timings, and
  // the raw overlap it can actually reach) and CRR's deterministic Phase-1
  // core `crr-rank` (the fidelity yardstick — any overlap lost there is the
  // partitioner's doing, not the method's rewiring randomness).
  const std::vector<std::string> methods =
      method == "crr" ? std::vector<std::string>{"crr", "crr-rank"}
                      : std::vector<std::string>{method};

  struct Config {
    double p;
    std::string m;
  };
  std::vector<Config> configs;
  for (const double p : p_values) {
    for (const std::string& m : methods) configs.push_back({p, m});
  }

  for (const auto& [p, m] : configs) {
    const std::string p_tag =
        StrFormat("p%02d", static_cast<int>(p * 100.0 + 0.5));
    // --- Single-node baseline: the same method/p/seed in one process. ---
    auto shedder = core::MakeShedderByName(m, /*seed=*/42);
    EDGESHED_CHECK(shedder.ok()) << shedder.status().ToString();
    std::vector<graph::EdgeId> single_kept;
    std::vector<double> single_samples;
    for (int r = 0; r < repeats; ++r) {
      Stopwatch watch;
      auto reduced = (*shedder)->Reduce(g, p);
      EDGESHED_CHECK(reduced.ok()) << reduced.status().ToString();
      single_samples.push_back(watch.ElapsedSeconds());
      single_kept = std::move(reduced->kept_edges);
    }
    DistResult baseline;
    baseline.graph = graph_name;
    baseline.nodes = g.NumNodes();
    baseline.edges = g.NumEdges();
    baseline.op = "single_node_" + m + "_" + p_tag;
    baseline.median_seconds = Median(single_samples);
    baseline.min_seconds =
        *std::min_element(single_samples.begin(), single_samples.end());
    baseline.max_seconds =
        *std::max_element(single_samples.begin(), single_samples.end());
    results.push_back(baseline);
    std::printf("  %-34s median=%.4fs\n", baseline.op.c_str(),
                baseline.median_seconds);

    // --- Self-overlap ceiling: the same method at a different seed. Any
    // distributed overlap number can only be judged against this — a
    // stochastic method cannot overlap a differently-randomized run of
    // itself by more. ---
    {
      auto other = core::MakeShedderByName(m, /*seed=*/43);
      EDGESHED_CHECK(other.ok());
      auto reduced = (*other)->Reduce(g, p);
      EDGESHED_CHECK(reduced.ok()) << reduced.status().ToString();
      std::sort(reduced->kept_edges.begin(), reduced->kept_edges.end());
      DistResult ceiling;
      ceiling.graph = graph_name;
      ceiling.nodes = g.NumNodes();
      ceiling.edges = g.NumEdges();
      ceiling.op = "self_overlap_" + m + "_" + p_tag;
      ceiling.balance = 0.0;  // marks the extended fields as present
      ceiling.replication = 0.0;
      ceiling.speedup = 0.0;
      ceiling.overlap = Overlap(reduced->kept_edges, single_kept,
                                reduced->kept_edges.size());
      results.push_back(ceiling);
      std::printf("  %-34s overlap=%.4f (seed 42 vs 43)\n",
                  ceiling.op.c_str(), ceiling.overlap);
    }

    for (const dist::PartitionerKind kind :
         {dist::PartitionerKind::kHash, dist::PartitionerKind::kDbh,
          dist::PartitionerKind::kHdrf}) {
      const std::string kind_name(dist::PartitionerKindToString(kind));
      for (const int shards : {2, 4}) {
        // A fresh fleet per configuration so worker-side caches never
        // carry timings across rows.
        std::vector<std::unique_ptr<Worker>> workers;
        std::vector<dist::WorkerAddress> addresses;
        for (int i = 0; i < shards; ++i) {
          workers.push_back(std::make_unique<Worker>(shard_dir));
          addresses.push_back({"127.0.0.1", workers.back()->server->port()});
        }

        dist::CoordinatorOptions options;
        options.workers = addresses;
        options.partition.kind = kind;
        options.partition.shards = shards;
        options.method = m;
        options.p = p;
        options.seed = 42;
        options.shard_dir = shard_dir;
        options.poll_interval = std::chrono::milliseconds(5);

        std::vector<double> samples;
        dist::DistShedResult last;
        for (int r = 0; r < repeats; ++r) {
          // Vary the job tag per repeat so the scheduler's result cache
          // never answers for a repeat (timings stay honest).
          dist::CoordinatorOptions run_options = options;
          run_options.job_tag =
              StrFormat("bench_%s_%s_k%d_%s_r%d", m.c_str(),
                        kind_name.c_str(), shards, p_tag.c_str(), r);
          dist::ShedCoordinator coordinator(run_options);
          Stopwatch watch;
          auto result = coordinator.Run(g);
          EDGESHED_CHECK(result.ok()) << result.status().ToString();
          samples.push_back(watch.ElapsedSeconds());
          for (const dist::ShardOutcome& shard : result->shards) {
            EDGESHED_CHECK(shard.remote_ok) << "shard fell back in bench";
          }
          last = std::move(*result);
        }

        DistResult row;
        row.graph = graph_name;
        row.nodes = g.NumNodes();
        row.edges = g.NumEdges();
        row.op = StrFormat("coordinate_%s_%s_k%d_%s", m.c_str(),
                           kind_name.c_str(), shards, p_tag.c_str());
        row.median_seconds = Median(samples);
        row.min_seconds = *std::min_element(samples.begin(), samples.end());
        row.max_seconds = *std::max_element(samples.begin(), samples.end());
        row.balance = last.partition_stats.balance_factor;
        row.replication = last.partition_stats.replication_factor;
        row.overlap =
            Overlap(last.kept_edges, single_kept, last.target_edges);
        row.speedup = baseline.median_seconds / row.median_seconds;
        results.push_back(row);
        std::printf(
            "  %-34s median=%.4fs speedup=%.2fx overlap=%.4f "
            "balance=%.4f replication=%.4f\n",
            row.op.c_str(), row.median_seconds, row.speedup, row.overlap,
            row.balance, row.replication);
      }
    }
  }

  std::FILE* json = std::fopen(out.c_str(), "w");
  EDGESHED_CHECK(json != nullptr) << "cannot write " << out;
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"schema\": \"edgeshed-bench-dist-v1\",\n");
  std::fprintf(json, "  \"git_rev\": \"%s\",\n", rev.c_str());
  std::fprintf(json, "  \"threads\": %d,\n", DefaultThreadCount());
  std::fprintf(json, "  \"repeats\": %d,\n", repeats);
  std::fprintf(json, "  \"method\": \"%s\",\n", method.c_str());
  std::fprintf(json, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const DistResult& r = results[i];
    std::fprintf(json,
                 "    {\"graph\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
                 "\"op\": \"%s\", \"median_seconds\": %.6f, "
                 "\"min_seconds\": %.6f, \"max_seconds\": %.6f",
                 r.graph.c_str(), static_cast<unsigned long long>(r.nodes),
                 static_cast<unsigned long long>(r.edges), r.op.c_str(),
                 r.median_seconds, r.min_seconds, r.max_seconds);
    if (r.balance >= 0.0) {
      std::fprintf(json,
                   ", \"balance_factor\": %.6f, \"replication_factor\": "
                   "%.6f, \"kept_overlap\": %.6f, \"speedup\": %.6f",
                   r.balance, r.replication, r.overlap, r.speedup);
    }
    std::fprintf(json, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s (%zu series, rev=%s)\n", out.c_str(), results.size(),
              rev.c_str());
  std::error_code ec;
  std::filesystem::remove_all(shard_dir, ec);
  return 0;
}

}  // namespace
}  // namespace edgeshed::bench

int main(int argc, char** argv) { return edgeshed::bench::Main(argc, argv); }
