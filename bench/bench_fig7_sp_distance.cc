// Reproduces Fig. 7: distribution of shortest-path distances over reachable
// pairs, original vs reduced graphs, on the three small datasets at
// p = 0.7 and p = 0.3.
//
// Paper shape to reproduce: at large p all methods track the original; at
// p = 0.3 CRR/BM2 still follow the curve's trend while UDS deviates
// significantly (its supernode graph compresses distances).

#include "bench/bench_util.h"
#include "analytics/shortest_paths.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader("Fig. 7 — shortest-path distance distribution",
                          config);
  eval::TaskOptions task_options = bench::BenchTaskOptions(config.full);

  struct Target {
    graph::DatasetId id;
    double scale;
  };
  const Target targets[] = {
      {graph::DatasetId::kCaGrQc, 0.5},
      {graph::DatasetId::kCaHepPh, 0.1},
      {graph::DatasetId::kEmailEnron, 0.05},
  };
  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  baseline::Uds uds = bench::BenchUds(config.full);

  for (const Target& target : targets) {
    graph::Graph g = bench::LoadScaled(target.id, config, target.scale);
    const auto& spec = graph::GetDatasetSpec(target.id);
    Histogram original = analytics::DistanceProfile(g, task_options.distances);

    for (double p : {0.7, 0.3}) {
      auto crr_result = crr.Reduce(g, p);
      auto bm2_result = bm2.Reduce(g, p);
      auto uds_result = uds.Summarize(g, p);
      EDGESHED_CHECK(crr_result.ok());
      EDGESHED_CHECK(bm2_result.ok());
      EDGESHED_CHECK(uds_result.ok());
      Histogram crr_hist = analytics::DistanceProfile(
          crr_result->BuildReducedGraph(g), task_options.distances);
      Histogram bm2_hist = analytics::DistanceProfile(
          bm2_result->BuildReducedGraph(g), task_options.distances);
      Histogram uds_hist = baseline::UdsDistanceProfile(*uds_result);

      TablePrinter table(spec.name + ", p = " + FormatDouble(p, 1) +
                         " — fraction of reachable pairs per distance");
      table.SetHeader({"distance", "original", "CRR", "BM2", "UDS"});
      int64_t max_key = 0;
      for (const Histogram* h : {&original, &crr_hist, &bm2_hist, &uds_hist}) {
        if (!h->Keys().empty()) max_key = std::max(max_key, h->Keys().back());
      }
      for (int64_t d = 1; d <= std::min<int64_t>(max_key, 14); ++d) {
        table.AddRow({std::to_string(d),
                      FormatDouble(original.FractionFor(d), 4),
                      FormatDouble(crr_hist.FractionFor(d), 4),
                      FormatDouble(bm2_hist.FractionFor(d), 4),
                      FormatDouble(uds_hist.FractionFor(d), 4)});
      }
      bench::PrintTableWithCsv(table);
      std::printf("L1 distance vs original: CRR %.3f | BM2 %.3f | UDS %.3f\n\n",
                  Histogram::L1Distance(original, crr_hist),
                  Histogram::L1Distance(original, bm2_hist),
                  Histogram::L1Distance(original, uds_hist));
    }
  }
  std::printf("expected shape (paper Fig. 7): at p=0.7 every method tracks "
              "the original; at p=0.3 CRR/BM2 keep the trend while UDS "
              "deviates significantly.\n");
  return 0;
}
