// Component microbenchmarks (google-benchmark): the building blocks every
// experiment above is assembled from. Not a paper table — used to track
// regressions in the substrate.

#include <benchmark/benchmark.h>

#include "analytics/betweenness.h"
#include "analytics/bfs.h"
#include "analytics/clustering.h"
#include "analytics/pagerank.h"
#include "analytics/shortest_paths.h"
#include "core/b_matching.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "core/discrepancy.h"
#include "embedding/kmeans.h"
#include "embedding/random_walks.h"
#include "graph/generators/generators.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace {

using namespace edgeshed;

graph::Graph MakeBaGraph(int64_t nodes) {
  Rng rng(7);
  return graph::BarabasiAlbert(static_cast<graph::NodeId>(nodes), 4, rng);
}

void BM_GraphConstruction(benchmark::State& state) {
  Rng rng(7);
  graph::Graph source = MakeBaGraph(state.range(0));
  std::vector<graph::Edge> edges(source.edges().begin(),
                                 source.edges().end());
  for (auto _ : state) {
    auto g = graph::Graph::FromEdges(
        static_cast<graph::NodeId>(source.NumNodes()), edges);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_GraphConstruction)->Arg(1 << 10)->Arg(1 << 13);

void BM_Bfs(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  std::vector<int32_t> distances;
  std::vector<graph::NodeId> queue;
  for (auto _ : state) {
    analytics::BfsDistancesInto(g, 0, &distances, &queue);
    benchmark::DoNotOptimize(distances);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_Bfs)->Arg(1 << 12)->Arg(1 << 15);

void BM_BetweennessExact(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  auto options = analytics::BetweennessOptions::Exact();
  options.threads = 1;
  for (auto _ : state) {
    auto scores = analytics::Betweenness(g, options);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_BetweennessExact)->Arg(1 << 9)->Arg(1 << 11)
    ->Unit(benchmark::kMillisecond);

void BM_BetweennessSampled(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  analytics::BetweennessOptions options;
  options.exact_node_threshold = 1;
  options.sample_sources = 128;
  options.threads = 1;
  for (auto _ : state) {
    auto scores = analytics::Betweenness(g, options);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_BetweennessSampled)->Arg(1 << 13)->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

void BM_PageRank(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  analytics::PageRankOptions options;
  options.threads = 1;
  for (auto _ : state) {
    auto scores = analytics::PageRank(g, options);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_PageRank)->Arg(1 << 12)->Arg(1 << 15)
    ->Unit(benchmark::kMillisecond);

void BM_ClusteringCoefficients(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  for (auto _ : state) {
    auto coefficients = analytics::LocalClusteringCoefficients(g, 1);
    benchmark::DoNotOptimize(coefficients);
  }
}
BENCHMARK(BM_ClusteringCoefficients)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyBMatching(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  auto capacities = core::Bm2::Capacities(g, 0.5);
  for (auto _ : state) {
    auto matched = core::GreedyMaximalBMatching(g, capacities);
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_GreedyBMatching)->Arg(1 << 13)->Arg(1 << 16);

void BM_Bm2EndToEnd(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  core::Bm2 bm2;
  for (auto _ : state) {
    auto result = bm2.Reduce(g, 0.5);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_Bm2EndToEnd)->Arg(1 << 13)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_CrrRewiringOnly(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  core::CrrOptions options;
  options.init_mode = core::CrrOptions::InitMode::kRandom;  // skip Brandes
  core::Crr crr(options);
  for (auto _ : state) {
    auto result = crr.Reduce(g, 0.5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CrrRewiringOnly)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

void BM_DiscrepancySwaps(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(1 << 12);
  core::DegreeDiscrepancy d(g, 0.5);
  const auto& edges = g.edges();
  size_t i = 0;
  for (auto _ : state) {
    const graph::Edge& e = edges[i++ % edges.size()];
    d.AddEdge(e.u, e.v);
    d.RemoveEdge(e.u, e.v);
    benchmark::DoNotOptimize(d.TotalDelta());
  }
}
BENCHMARK(BM_DiscrepancySwaps);

void BM_Node2VecWalks(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  embedding::WalkOptions options;
  options.walks_per_node = 2;
  options.walk_length = 20;
  options.threads = 1;
  for (auto _ : state) {
    auto corpus = embedding::GenerateWalks(g, options);
    benchmark::DoNotOptimize(corpus);
  }
}
BENCHMARK(BM_Node2VecWalks)->Arg(1 << 12)->Unit(benchmark::kMillisecond);

void BM_KMeans(benchmark::State& state) {
  Rng rng(3);
  const uint64_t rows = 4096;
  const uint32_t dim = 32;
  std::vector<float> data(rows * dim);
  for (float& v : data) v = static_cast<float>(rng.UniformDouble());
  embedding::KMeansOptions options;
  options.clusters = 5;
  for (auto _ : state) {
    auto result = embedding::KMeans(data, rows, dim, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeans)->Unit(benchmark::kMillisecond);

// Observability substrate: the typed-handle path (resolve once, bump an
// atomic) versus the string-keyed shim (map lookup under the registry mutex
// per event). The gap is the reason hot loops hold Counter*/LatencySeries*.
void BM_MetricsCounterHandle(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench.events");
  for (auto _ : state) {
    counter->Increment();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterHandle)->ThreadRange(1, 8);

void BM_MetricsCounterStringKey(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (auto _ : state) {
    registry.IncrementCounter("bench.events");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterStringKey)->ThreadRange(1, 8);

void BM_MetricsLatencyHandle(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::LatencySeries* series = registry.GetLatency("bench.seconds");
  double v = 1e-6;
  for (auto _ : state) {
    series->Record(v);
    v += 1e-9;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsLatencyHandle)->ThreadRange(1, 8);

void BM_TracerSpan(benchmark::State& state) {
  static obs::Tracer tracer;
  for (auto _ : state) {
    obs::Span span = obs::Tracer::StartSpan(&tracer, "bench");
    span.End();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerSpan)->ThreadRange(1, 8);

void BM_TracerSpanDetached(benchmark::State& state) {
  // Null tracer: the cost the service layer pays when no exporter is
  // attached — should be a handful of instructions.
  for (auto _ : state) {
    obs::Span span = obs::Tracer::StartSpan(nullptr, "bench");
    span.End();
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerSpanDetached)->ThreadRange(1, 8);

void BM_DistanceProfileSampled(benchmark::State& state) {
  graph::Graph g = MakeBaGraph(state.range(0));
  analytics::DistanceProfileOptions options;
  options.exact_node_threshold = 1;
  options.sample_sources = 64;
  options.threads = 1;
  for (auto _ : state) {
    auto profile = analytics::DistanceProfile(g, options);
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_DistanceProfileSampled)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
