// Extension bench (not in the paper): one-pass streaming shedding versus
// the offline algorithms on the same graph. Quantifies the price of the
// semi-streaming constraint (shed edges are unrecoverable) across p.

#include <cmath>

#include "bench/bench_util.h"
#include "core/random_shedding.h"
#include "stream/streaming_shedder.h"
#include "stream/tcm_sketch.h"

using namespace edgeshed;

int main(int argc, char** argv) {
  eval::Flags flags(argc, argv);
  eval::BenchConfig config = eval::ParseBenchConfig(flags);
  bench::PrintBenchHeader(
      "Extension — streaming vs offline shedding (avg delta)", config);

  graph::Graph g = bench::LoadScaled(graph::DatasetId::kCaGrQc, config, 1.0);
  std::printf("ca-GrQc surrogate: %s nodes, %s edges\n\n",
              FormatWithCommas(g.NumNodes()).c_str(),
              FormatWithCommas(g.NumEdges()).c_str());

  // Randomized arrival order (same for every p).
  Rng rng(31);
  std::vector<graph::Edge> arrivals(g.edges().begin(), g.edges().end());
  rng.Shuffle(&arrivals);

  core::Crr crr = bench::BenchCrr(config.full);
  core::Bm2 bm2 = bench::BenchBm2();
  core::RandomShedding random_shedding(7);

  TablePrinter table;
  table.SetHeader({"p", "stream(k=1)", "stream(k=8)", "stream(k=32)",
                   "offline random", "offline BM2", "offline CRR"});
  for (double p : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    auto stream_delta = [&](uint32_t samples) {
      stream::StreamingShedderOptions options;
      options.eviction_samples = samples;
      stream::StreamingShedder shedder(p, options);
      for (const graph::Edge& e : arrivals) shedder.AddEdge(e.u, e.v);
      return shedder.AverageDelta();
    };
    auto crr_result = crr.Reduce(g, p);
    auto bm2_result = bm2.Reduce(g, p);
    auto random_result = random_shedding.Reduce(g, p);
    EDGESHED_CHECK(crr_result.ok());
    EDGESHED_CHECK(bm2_result.ok());
    EDGESHED_CHECK(random_result.ok());
    table.AddRow({FormatDouble(p, 1), FormatDouble(stream_delta(1), 4),
                  FormatDouble(stream_delta(8), 4),
                  FormatDouble(stream_delta(32), 4),
                  FormatDouble(random_result->average_delta, 4),
                  FormatDouble(bm2_result->average_delta, 4),
                  FormatDouble(crr_result->average_delta, 4)});
  }
  bench::PrintTableWithCsv(table);

  {
    // TCM-style sketching (the related-work alternative for streams):
    // compare degree-estimation error and memory against the streaming
    // shedder at matched budgets. The sketch answers weight queries only —
    // no graph comes out — which is the paper's core argument for shedding.
    const double p = 0.3;
    stream::StreamingShedder shedder(p);
    for (const graph::Edge& e : arrivals) shedder.AddEdge(e.u, e.v);
    graph::Graph snapshot = shedder.SnapshotGraph();

    TablePrinter table2("Degree estimation: TCM sketch vs streaming shedder"
                        " (p = 0.3)");
    table2.SetHeader({"structure", "memory (64-bit cells)",
                      "mean |deg est - deg| / avg deg", "graph out?"});
    auto degree_error = [&](auto&& estimate) {
      double error = 0.0;
      for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
        error += std::abs(estimate(u) - static_cast<double>(g.Degree(u)));
      }
      return error / static_cast<double>(g.NumNodes()) / g.AverageDegree();
    };
    for (uint32_t width : {64u, 256u, 1024u}) {
      stream::TcmSketch sketch({width, 3, 17});
      for (const graph::Edge& e : arrivals) sketch.AddEdge(e.u, e.v);
      table2.AddRow(
          {"TCM " + std::to_string(width) + "x" + std::to_string(width) +
               "x3",
           FormatWithCommas(sketch.Cells()),
           FormatDouble(degree_error([&](graph::NodeId u) {
             return sketch.NodeWeight(u);
           }),
                        3),
           "no (weight queries only)"});
    }
    table2.AddRow(
        {"streaming shedder",
         FormatWithCommas(shedder.kept_edges().size() * 2 + g.NumNodes()),
         FormatDouble(degree_error([&](graph::NodeId u) {
           return static_cast<double>(snapshot.Degree(u)) / p;
         }),
                      3),
         "yes (run any algorithm)"});
    bench::PrintTableWithCsv(table2);
  }

  std::printf("reading: more eviction samples close most of the gap to "
              "offline BM2; offline CRR (with global rewiring) stays "
              "ahead.\nThe sketch matches degree accuracy only when its "
              "fixed memory rivals the shedder's — and still yields no "
              "graph to analyze.\n");
  return 0;
}
